//! # gitcite — umbrella crate for the GitCite reproduction
//!
//! Re-exports the whole system. See README.md and DESIGN.md.

#![forbid(unsafe_code)]

pub use bibformat;
pub use citekit;
pub use extension;
pub use gitlite;
pub use hub;
pub use sjson;
