#!/usr/bin/env bash
# Measures what the hub's telemetry layer costs on the read path — the
# per-dispatch overhead of call counters, sampled latency histograms and
# error tallies, instrumented vs `set_metrics_enabled(false)` — and
# writes the result to BENCH_obs.json at the repository root. The
# acceptance budget is <2% on the read-path mix.
#
# The bench reports a median-of-paired-deltas estimate per run; box
# noise still moves single runs by around a percent, so this script runs
# the bench three times and records the median run.
#
# Usage: scripts/bench_obs.sh [output.json]
set -euo pipefail

cd "$(dirname "$0")/.."
out="${1:-BENCH_obs.json}"

runs=3
raw=""
for i in $(seq "$runs"); do
    echo "run $i/$runs"
    raw+="$(cargo bench --bench hub_obs 2>&1)"$'\n'
done
echo "$raw" | grep "^hub_obs_"

# Each run emits data lines:
#   hub_obs_dispatch iters=400000 instrumented_ns=2354 uninstrumented_ns=2323 delta_ns=42 overhead_pct=1.83
#   hub_obs_recorded calls=40005
echo "$raw" | awk '
$1 == "hub_obs_dispatch" {
    n++
    for (i = 2; i <= NF; i++) {
        split($i, kv, "=")
        v[n "." kv[1]] = kv[2]
        pct[n] = v[n ".overhead_pct"]
    }
}
$1 == "hub_obs_recorded" { split($2, kv, "="); recorded = kv[2] }
END {
    # Median run by overhead_pct (n is odd).
    for (m = 1; m <= n; m++) {
        below = 0
        for (j = 1; j <= n; j++) if (pct[j] < pct[m] || (pct[j] == pct[m] && j < m)) below++
        if (below == int(n / 2)) break
    }
    printf "{\n  \"benchmark\": \"hub_obs\",\n"
    printf "  \"workload\": \"read-path dispatch mix (read_file/log/list_repos), %d timed dispatches per run, median of %d runs\",\n", \
        v[m ".iters"], n
    printf "  \"dispatch_ns\": {\"instrumented\": %d, \"uninstrumented\": %d, \"delta\": %d},\n", \
        v[m ".instrumented_ns"], v[m ".uninstrumented_ns"], v[m ".delta_ns"]
    printf "  \"overhead_pct\": %.2f,\n", v[m ".overhead_pct"]
    printf "  \"overhead_budget_pct\": 2.0,\n"
    printf "  \"calls_recorded\": %d\n", recorded
    printf "}\n"
}' > "$out"

echo
echo "wrote $out:"
cat "$out"
