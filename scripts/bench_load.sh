#!/usr/bin/env bash
# Runs the socket-server load benchmark — 10,000 concurrent loopback
# connections of mixed v1/v2 read and v3 push traffic against one hub
# process, plus the overload scenario (2x-capacity offered load against
# a capped server, measuring shed rate and served p99) — and writes the
# headline numbers (connection count, latency percentiles, throughput,
# the v2-hex vs v3-binary bundle byte ratio, and the overload shed
# numbers) to BENCH_load.json at the repository root, so the server's
# capacity is tracked PR over PR.
#
# Usage: scripts/bench_load.sh [output.json]
# Env:   GITCITE_LOAD_CONNS=<n> overrides the 10k connection target.
set -euo pipefail

cd "$(dirname "$0")/.."
out="${1:-BENCH_load.json}"

# Each side of the loopback needs one fd per connection; raise the soft
# limit as far as this shell may.
ulimit -n "$(ulimit -Hn)" 2>/dev/null || true

raw="$(cargo bench --bench hub_load 2>&1)"
echo "$raw"

# The bench emits data lines:
#   hub_load_conns target=10000 achieved=10000
#   hub_load_latency p50_us=20968 p99_us=57256 mean_us=23024
#   hub_load_throughput requests=30040 wall_ms=14535 req_per_s=2067
#   hub_load_pushes writers=8 pushes=40
#   hub_load_bundle_bytes commits=5000 line=3311256 binary=854558 ratio=3.87
#   hub_load_overload capacity=256 offered=512 served=256 shed=256 shed_rate=0.50 p99_uncontended_us=900 p99_served_us=1100
echo "$raw" | awk '
$1 ~ /^hub_load_/ {
    section = substr($1, 10)
    for (i = 2; i <= NF; i++) {
        split($i, kv, "=")
        v[section "." kv[1]] = kv[2]
    }
}
END {
    printf "{\n  \"benchmark\": \"hub_load\",\n"
    printf "  \"workload\": \"%d concurrent loopback connections, %d mixed read/push requests\",\n", \
        v["conns.target"], v["throughput.requests"]
    printf "  \"connections\": {\"target\": %d, \"achieved\": %d},\n", \
        v["conns.target"], v["conns.achieved"]
    printf "  \"latency_us\": {\"p50\": %d, \"p99\": %d, \"mean\": %d},\n", \
        v["latency.p50_us"], v["latency.p99_us"], v["latency.mean_us"]
    printf "  \"throughput\": {\"requests\": %d, \"wall_ms\": %d, \"req_per_s\": %d},\n", \
        v["throughput.requests"], v["throughput.wall_ms"], v["throughput.req_per_s"]
    printf "  \"pushes\": {\"writers\": %d, \"completed\": %d},\n", \
        v["pushes.writers"], v["pushes.pushes"]
    printf "  \"bundle_bytes\": {\"commits\": %d, \"v2_line\": %d, \"v3_binary\": %d, \"ratio\": %.2f},\n", \
        v["bundle_bytes.commits"], v["bundle_bytes.line"], v["bundle_bytes.binary"], v["bundle_bytes.ratio"]
    printf "  \"overload\": {\"capacity\": %d, \"offered\": %d, \"served\": %d, \"shed\": %d, \"shed_rate\": %.2f, \"p99_uncontended_us\": %d, \"p99_served_us\": %d}\n", \
        v["overload.capacity"], v["overload.offered"], v["overload.served"], v["overload.shed"], \
        v["overload.shed_rate"], v["overload.p99_uncontended_us"], v["overload.p99_served_us"]
    printf "}\n"
}' > "$out"

echo
echo "wrote $out:"
cat "$out"
