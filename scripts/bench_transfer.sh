#!/usr/bin/env bash
# Runs the transfer benchmark (full-closure vs negotiated push of 10 new
# commits onto a 5k-commit hosted repository) and writes the headline
# numbers — bytes on the wire, object counts and wall times — to
# BENCH_transfer.json at the repository root, so the transport trajectory
# is tracked PR over PR.
#
# Usage: scripts/bench_transfer.sh [output.json]
set -euo pipefail

cd "$(dirname "$0")/.."
out="${1:-BENCH_transfer.json}"

raw="$(cargo bench --bench transfer 2>&1)"
echo "$raw"

# The bench emits two kinds of lines:
#   transfer_bytes full=3318018 negotiated=9522 ratio=348.5
#   transfer_objects full=15031 negotiated=30
#   transfer/push_full      48.06 ms/iter  (29 iters)
echo "$raw" | awk '
function ns(value, unit) {
    if (unit == "ns") return value
    if (unit == "µs") return value * 1e3
    if (unit == "ms") return value * 1e6
    if (unit == "s")  return value * 1e9
    return -1
}
$1 == "transfer_bytes" {
    for (i = 2; i <= NF; i++) {
        split($i, kv, "=")
        bytes[kv[1]] = kv[2]
    }
}
$1 == "transfer_objects" {
    for (i = 2; i <= NF; i++) {
        split($i, kv, "=")
        objects[kv[1]] = kv[2]
    }
}
$1 ~ /^transfer\// {
    split($1, parts, "/")
    name = parts[2]
    unit = $3; sub("/iter.*", "", unit)
    mean[name] = ns($2 + 0, unit)
    order[++n] = name
}
END {
    printf "{\n  \"benchmark\": \"transfer\",\n"
    printf "  \"workload\": \"10 new commits onto a 5000-commit repository\",\n"
    printf "  \"wire_bytes\": {\"full\": %d, \"negotiated\": %d, \"ratio\": %.1f},\n", \
        bytes["full"], bytes["negotiated"], bytes["ratio"]
    printf "  \"objects\": {\"full\": %d, \"negotiated\": %d},\n", \
        objects["full"], objects["negotiated"]
    printf "  \"wall_ns_per_iter\": {\n"
    for (i = 1; i <= n; i++) {
        name = order[i]
        printf "    \"%s\": %.1f%s\n", name, mean[name], (i < n ? "," : "")
    }
    printf "  }"
    if (mean["push_negotiated"] > 0) {
        printf ",\n  \"speedup_negotiated_over_full\": %.2f\n", \
            mean["push_full"] / mean["push_negotiated"]
    } else {
        printf "\n"
    }
    printf "}\n"
}' > "$out"

echo
echo "wrote $out:"
cat "$out"
