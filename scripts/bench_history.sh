#!/usr/bin/env bash
# Runs the history-walk benchmark (commit-graph vs decode walk for `log`
# and `merge_base`) and writes the headline numbers to BENCH_history.json
# at the repository root, so the perf trajectory is tracked PR over PR.
#
# Usage: scripts/bench_history.sh [output.json]
set -euo pipefail

cd "$(dirname "$0")/.."
out="${1:-BENCH_history.json}"

raw="$(cargo bench --bench history_walk 2>&1)"
echo "$raw"

# Bench lines look like:
#   history_walk/log_graph/10000     468.61 µs/iter  (1921 iters)
# Normalize every mean to nanoseconds, emit one JSON object per line,
# and derive decode/graph speedups for each paired benchmark.
echo "$raw" | awk '
function ns(value, unit) {
    if (unit == "ns") return value
    if (unit == "µs") return value * 1e3
    if (unit == "ms") return value * 1e6
    if (unit == "s")  return value * 1e9
    return -1
}
$1 ~ /^history_walk\// {
    split($1, parts, "/")
    name = parts[2] "/" parts[3]
    unit = $3; sub("/iter.*", "", unit)
    mean[name] = ns($2 + 0, unit)
    order[++n] = name
}
END {
    printf "{\n  \"benchmark\": \"history_walk\",\n  \"unit\": \"ns/iter\",\n  \"results\": {\n"
    for (i = 1; i <= n; i++) {
        name = order[i]
        printf "    \"%s\": %.1f%s\n", name, mean[name], (i < n ? "," : "")
    }
    printf "  },\n  \"speedup_graph_over_decode\": {\n"
    m = 0
    for (i = 1; i <= n; i++) {
        name = order[i]
        if (name !~ /_graph\//) continue
        twin = name; sub("_graph/", "_decode/", twin)
        if (!(twin in mean) || mean[name] <= 0) continue
        pair[++m] = name
        ratio[name] = mean[twin] / mean[name]
    }
    for (i = 1; i <= m; i++) {
        name = pair[i]
        label = name; sub("_graph/", "/", label)
        printf "    \"%s\": %.2f%s\n", label, ratio[name], (i < m ? "," : "")
    }
    printf "  }\n}\n"
}' > "$out"

echo
echo "wrote $out:"
cat "$out"
