#!/usr/bin/env bash
# Runs the pack-size benchmark (full-record vs delta-compressed GLPK
# packs) and writes the headline numbers to BENCH_pack.json at the
# repository root, so the compression trajectory is tracked PR over PR.
#
# Usage: scripts/bench_pack.sh [output.json]
set -euo pipefail

cd "$(dirname "$0")/.."
out="${1:-BENCH_pack.json}"

raw="$(cargo bench --bench pack_size 2>&1)"
echo "$raw"

# Size lines look like:
#   pack_size/full_bytes/10000: 22960494
# Criterion lines look like:
#   pack_size/encode_full/1000     12.34 ms/iter  (81 iters)
echo "$raw" | awk '
function ns(value, unit) {
    if (unit == "ns") return value
    if (unit == "µs") return value * 1e3
    if (unit == "ms") return value * 1e6
    if (unit == "s")  return value * 1e9
    return -1
}
$1 ~ /^pack_size\/.*:$/ {
    name = $1; sub("^pack_size/", "", name); sub(":$", "", name)
    size[name] = $2 + 0
    sorder[++sn] = name
}
$1 ~ /^pack_size\/[^:]*$/ && $3 ~ /\/iter/ {
    split($1, parts, "/")
    name = parts[2] "/" parts[3]
    unit = $3; sub("/iter.*", "", unit)
    mean[name] = ns($2 + 0, unit)
    torder[++tn] = name
}
END {
    printf "{\n  \"benchmark\": \"pack_size\",\n  \"sizes\": {\n"
    for (i = 1; i <= sn; i++) {
        name = sorder[i]
        printf "    \"%s\": %s%s\n", name, size[name], (i < sn ? "," : "")
    }
    printf "  },\n  \"timings_ns_per_iter\": {\n"
    for (i = 1; i <= tn; i++) {
        name = torder[i]
        printf "    \"%s\": %.1f%s\n", name, mean[name], (i < tn ? "," : "")
    }
    printf "  }\n}\n"
}' > "$out"

echo
echo "wrote $out:"
cat "$out"
