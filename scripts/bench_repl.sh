#!/usr/bin/env bash
# Runs the multi-hub replication read-scaling benchmark — a primary hub
# process absorbing sustained push traffic while fleets of 0, 1, 2 and 4
# follower hub processes (each running a live replication engine over
# the v3 wire) serve log_page reads of the churned repository — and
# writes the headline numbers (reads/s per fleet size, pushes landed
# during each window, and the speedup of each fleet over the lone
# primary) to BENCH_repl.json at the repository root, so read scaling is
# tracked PR over PR.
#
# Usage: scripts/bench_repl.sh [output.json]
set -euo pipefail

cd "$(dirname "$0")/.."
out="${1:-BENCH_repl.json}"

raw="$(cargo bench --bench hub_repl 2>&1)"
echo "$raw"

# The bench emits one data line per fleet configuration:
#   hub_repl_scaling followers=0 read_nodes=1 readers=4 reads_per_s=3824 pushes=1319 speedup=1.00
#   hub_repl_scaling followers=4 read_nodes=4 readers=16 reads_per_s=25334 pushes=573 speedup=6.63
echo "$raw" | awk '
$1 == "hub_repl_scaling" {
    n += 1
    for (i = 2; i <= NF; i++) {
        split($i, kv, "=")
        row[n "." kv[1]] = kv[2]
    }
}
END {
    printf "{\n  \"benchmark\": \"hub_repl\",\n"
    printf "  \"workload\": \"log_page reads of a repository under sustained concurrent pushes, served by follower fleets\",\n"
    printf "  \"fleets\": [\n"
    for (i = 1; i <= n; i++) {
        printf "    {\"followers\": %d, \"read_nodes\": %d, \"readers\": %d, \"reads_per_s\": %d, \"pushes\": %d, \"speedup_vs_primary\": %.2f}%s\n", \
            row[i ".followers"], row[i ".read_nodes"], row[i ".readers"], \
            row[i ".reads_per_s"], row[i ".pushes"], row[i ".speedup"], (i < n ? "," : "")
    }
    printf "  ],\n"
    printf "  \"four_follower_speedup\": %.2f,\n", row[n ".speedup"]
    printf "  \"acceptance\": \"4 followers >= 2.5x lone-primary read throughput (asserted by the bench itself)\"\n"
    printf "}\n"
}' > "$out"

echo
echo "wrote $out:"
cat "$out"
