//! Workload generators shared by the GitCite benchmark harness.
//!
//! Every experiment in EXPERIMENTS.md builds its inputs here so the
//! parameters (tree shapes, active-domain densities, conflict rates,
//! history lengths) are defined once and reported consistently.

use citekit::{Citation, CitationFunction, CitedRepo};
use gitlite::{RepoPath, Repository, Signature, WorkTree};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministic RNG for reproducible workloads.
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// A throwaway citation whose identity encodes `tag`.
pub fn citation(tag: &str) -> Citation {
    Citation::builder(format!("repo-{tag}"), format!("owner-{tag}"))
        .url(format!("https://hub.example/{tag}"))
        .commit("abc1234", "2020-01-01T00:00:00Z")
        .author(format!("author-{tag}"))
        .build()
}

/// Signature helper with a logical timestamp.
pub fn sig(name: &str, t: i64) -> Signature {
    Signature::new(name, format!("{name}@bench"), t)
}

/// Builds a balanced directory tree with `files` files spread `fanout`
/// wide and `depth` deep. Returns the worktree and the file paths.
pub fn synthetic_tree(files: usize, depth: usize, fanout: usize) -> (WorkTree, Vec<RepoPath>) {
    let mut wt = WorkTree::new();
    let mut paths = Vec::with_capacity(files);
    for i in 0..files {
        let mut components = Vec::with_capacity(depth + 1);
        let mut v = i;
        for d in 0..depth {
            components.push(format!("d{d}_{}", v % fanout));
            v /= fanout;
        }
        components.push(format!("file{i}.txt"));
        let path = RepoPath::parse(&components.join("/")).expect("valid");
        wt.write(
            &path,
            format!("contents of file {i}\nline 2\nline 3\n").into_bytes(),
        )
        .expect("no collisions in synthetic tree");
        paths.push(path);
    }
    (wt, paths)
}

/// A chain path `d0/d1/.../d{depth-1}/leaf.txt`.
pub fn chain_path(depth: usize) -> RepoPath {
    let mut components: Vec<String> = (0..depth).map(|d| format!("d{d}")).collect();
    components.push("leaf.txt".to_owned());
    RepoPath::parse(&components.join("/")).expect("valid")
}

/// A citation function over a single deep chain: `density_pct` percent of
/// the chain's directories are cited. Returns the function and the deepest
/// query path (worst case for ancestor walks).
pub fn chain_function(depth: usize, density_pct: usize) -> (CitationFunction, RepoPath) {
    let mut func = CitationFunction::new(citation("root"));
    let query = chain_path(depth);
    let mut prefix = RepoPath::root();
    for d in 0..depth {
        prefix = prefix.child(&format!("d{d}"));
        // Cite evenly spaced levels; density 100 cites every level.
        if density_pct > 0 && (d * density_pct) / 100 != ((d + 1) * density_pct) / 100 {
            func.set(prefix.clone(), citation(&format!("level{d}")), true);
        }
    }
    (func, query)
}

/// A citation function over the synthetic tree with `cited` random
/// directories/files in the active domain. Returns the function and all
/// file paths (the query set).
pub fn tree_function(files: usize, cited: usize, seed: u64) -> (CitationFunction, Vec<RepoPath>) {
    let (wt, paths) = synthetic_tree(files, 4, 4);
    let mut func = CitationFunction::new(citation("root"));
    let mut r = rng(seed);
    for i in 0..cited {
        let p = &paths[r.gen_range(0..paths.len())];
        // Cite the file or one of its ancestor dirs, at random.
        let anc: Vec<RepoPath> = p.ancestors().collect();
        let target = if r.gen_bool(0.5) || anc.len() <= 1 {
            p.clone()
        } else {
            anc[r.gen_range(0..anc.len() - 1)].clone()
        };
        let is_dir = wt.is_dir(&target);
        func.set(target, citation(&format!("c{i}")), is_dir);
    }
    (func, paths)
}

/// A citation-enabled repository containing `files` committed files.
pub fn cited_repo(files: usize) -> (CitedRepo, Vec<RepoPath>) {
    let (wt, paths) = synthetic_tree(files, 3, 4);
    let mut repo = CitedRepo::init("bench", "Bench Owner", "https://hub.example/bench");
    for (p, data) in wt.iter() {
        repo.write_file(p, data.clone()).expect("fresh paths");
    }
    repo.commit(sig("bench", 1), "seed").expect("commit");
    (repo, paths)
}

/// Two citation functions that agree on `entries - conflicts` keys and
/// disagree on `conflicts` keys, plus their common base — the MergeCite
/// workload (E6/E8).
pub fn merge_functions_workload(
    entries: usize,
    conflicts: usize,
) -> (CitationFunction, CitationFunction, CitationFunction) {
    assert!(conflicts <= entries);
    let base = {
        let mut f = CitationFunction::new(citation("root"));
        for i in 0..entries {
            f.set(
                RepoPath::parse(&format!("dir{}/f{i}.txt", i % 16)).unwrap(),
                citation(&format!("base{i}")),
                false,
            );
        }
        f
    };
    let mut ours = base.clone();
    let mut theirs = base.clone();
    for i in 0..conflicts {
        let key = RepoPath::parse(&format!("dir{}/f{i}.txt", i % 16)).unwrap();
        ours.set(key.clone(), citation(&format!("ours{i}")), false);
        theirs.set(key, citation(&format!("theirs{i}")), false);
    }
    // Disjoint additions on both sides (merge must union them).
    for i in 0..entries / 4 {
        ours.set(
            RepoPath::parse(&format!("ours-only/f{i}.txt")).unwrap(),
            citation("o"),
            false,
        );
        theirs.set(
            RepoPath::parse(&format!("theirs-only/f{i}.txt")).unwrap(),
            citation("t"),
            false,
        );
    }
    (base, ours, theirs)
}

/// A plain (uncited) repository with `commits` commits by `authors`
/// rotating authors, each touching one of `dirs` top-level directories —
/// the retrofit workload (E12).
pub fn legacy_history(commits: usize, authors: usize, dirs: usize) -> Repository {
    let mut repo = Repository::init("legacy-bench");
    for i in 0..commits {
        let author = format!("author{}", i % authors);
        let dir = format!("dir{}", i % dirs);
        repo.worktree_mut()
            .write(
                &RepoPath::parse(&format!("{dir}/file{i}.txt")).unwrap(),
                format!("content {i}\n").into_bytes(),
            )
            .expect("fresh path");
        repo.commit(sig(&author, i as i64 + 1), format!("commit {i}"))
            .expect("commit");
    }
    repo
}

/// A repository pair for the CopyCite benchmark: the source holds a
/// subtree of `subtree_files` files with citations sprinkled every 8th
/// file; the destination is small.
pub fn copy_workload(subtree_files: usize) -> (CitedRepo, gitlite::ObjectId, CitedRepo) {
    let mut src = CitedRepo::init("src", "Src Owner", "https://hub.example/src");
    for i in 0..subtree_files {
        let p = RepoPath::parse(&format!("lib/m{}/f{i}.txt", i % 8)).unwrap();
        src.write_file(&p, format!("file {i}\n").into_bytes())
            .unwrap();
        if i % 8 == 0 {
            src.add_cite(&p, citation(&format!("s{i}"))).unwrap();
        }
    }
    let v = src.commit(sig("src", 1), "source").unwrap().commit;
    let mut dst = CitedRepo::init("dst", "Dst Owner", "https://hub.example/dst");
    dst.write_file(&gitlite::path("own.txt"), &b"own\n"[..])
        .unwrap();
    dst.commit(sig("dst", 1), "dest").unwrap();
    (src, v, dst)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_tree_shapes() {
        let (wt, paths) = synthetic_tree(100, 3, 4);
        assert_eq!(wt.len(), 100);
        assert_eq!(paths.len(), 100);
        assert!(paths.iter().all(|p| p.depth() == 4));
    }

    #[test]
    fn chain_function_density() {
        let (f0, _) = chain_function(64, 0);
        assert_eq!(f0.len(), 1); // root only
        let (f100, q) = chain_function(64, 100);
        assert_eq!(f100.len(), 65); // root + every level
        let (fp, c) = f100.resolve(&q);
        assert_eq!(fp.depth(), 64);
        assert!(c.repo_name.contains("level63"));
        let (f50, _) = chain_function(64, 50);
        assert_eq!(f50.len(), 33);
    }

    #[test]
    fn merge_workload_counts() {
        let (base, ours, theirs) = merge_functions_workload(100, 10);
        assert_eq!(base.len(), 101);
        assert_eq!(ours.len(), 101 + 25);
        assert_eq!(theirs.len(), 101 + 25);
        let mut diff = 0;
        for p in base.paths() {
            if ours.get(p) != theirs.get(p) {
                diff += 1;
            }
        }
        assert_eq!(diff, 10);
    }

    #[test]
    fn legacy_history_builds() {
        let repo = legacy_history(20, 3, 4);
        assert_eq!(repo.log_head().unwrap().len(), 20);
    }

    #[test]
    fn copy_workload_builds() {
        let (src, v, dst) = copy_workload(32);
        assert!(src.repo().path_exists_at(v, &gitlite::path("lib")).unwrap());
        assert_eq!(dst.function().len(), 1);
    }
}
