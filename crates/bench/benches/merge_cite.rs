//! E6/E8 bench — MergeCite scaling and the conflict-strategy ablation:
//! citation-function merging vs entry count, conflict rate, and strategy
//! (the paper's union vs the future-work three-way).

use citekit::merge::merge_functions;
use citekit::{MergeStrategy, PreferOurs};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gitcite_bench::merge_functions_workload;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("merge_cite");

    // Entry-count sweep, no conflicts.
    for entries in [10usize, 100, 1_000, 10_000] {
        let (base, ours, theirs) = merge_functions_workload(entries, 0);
        g.bench_with_input(
            BenchmarkId::new("entries_union", entries),
            &entries,
            |b, _| {
                b.iter(|| {
                    merge_functions(
                        &ours,
                        &theirs,
                        Some(&base),
                        MergeStrategy::Union,
                        &mut PreferOurs,
                        |_, _| true,
                    )
                    .unwrap()
                })
            },
        );
    }

    // Conflict-rate sweep at 1000 entries, under union (resolver pays per
    // conflict) and three-way (double edits only; here every conflict is a
    // double edit, so the strategies differ in recording, not skipping).
    for conflict_pct in [0usize, 1, 10, 50] {
        let entries = 1_000;
        let conflicts = entries * conflict_pct / 100;
        let (base, ours, theirs) = merge_functions_workload(entries, conflicts);
        g.bench_with_input(
            BenchmarkId::new("conflict_pct_union", conflict_pct),
            &conflict_pct,
            |b, _| {
                b.iter(|| {
                    merge_functions(
                        &ours,
                        &theirs,
                        Some(&base),
                        MergeStrategy::Union,
                        &mut PreferOurs,
                        |_, _| true,
                    )
                    .unwrap()
                })
            },
        );
        g.bench_with_input(
            BenchmarkId::new("conflict_pct_three_way", conflict_pct),
            &conflict_pct,
            |b, _| {
                b.iter(|| {
                    merge_functions(
                        &ours,
                        &theirs,
                        Some(&base),
                        MergeStrategy::ThreeWay,
                        &mut PreferOurs,
                        |_, _| true,
                    )
                    .unwrap()
                })
            },
        );
    }

    // Strategy ablation on one-sided edits: three-way auto-resolves where
    // union must call the resolver — measure with theirs-only edits.
    {
        let entries = 1_000;
        let (base, _, theirs) = merge_functions_workload(entries, 200);
        let ours = base.clone(); // ours unchanged since base: one-sided
        for (name, strategy) in [
            ("union", MergeStrategy::Union),
            ("three_way", MergeStrategy::ThreeWay),
        ] {
            g.bench_function(BenchmarkId::new("one_sided_edits", name), |b| {
                b.iter(|| {
                    merge_functions(
                        &ours,
                        &theirs,
                        Some(&base),
                        strategy,
                        &mut PreferOurs,
                        |_, _| true,
                    )
                    .unwrap()
                })
            });
        }
    }

    g.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900))
}

criterion_group! { name = benches; config = config(); targets = bench }
criterion_main!(benches);
