//! E11 bench — the VCS substrate itself: commit snapshotting, tree diff
//! (with and without rename detection), three-way merge and diff3, and
//! clone/push.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gitcite_bench::{sig, synthetic_tree};
use gitlite::{
    clone_repository, diff3_merge, diff_trees, push, write_tree, MergeLabels, Odb, Repository,
};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("gitlite");

    // Commit throughput vs worktree size.
    for files in [100usize, 1_000, 5_000] {
        let (wt, _) = synthetic_tree(files, 3, 8);
        g.bench_with_input(BenchmarkId::new("commit_files", files), &files, |b, _| {
            b.iter_batched(
                || {
                    let mut r = Repository::init("bench");
                    *r.worktree_mut() = wt.clone();
                    r
                },
                |mut r| r.commit(sig("a", 1), "snapshot").unwrap(),
                criterion::BatchSize::LargeInput,
            )
        });
    }

    // Tree diff: 1000 files, 50 modified, 20 renamed.
    {
        let (wt, paths) = synthetic_tree(1_000, 3, 8);
        let mut odb = Odb::new();
        let t1 = write_tree(&mut odb, &wt);
        let mut wt2 = wt.clone();
        for p in paths.iter().take(50) {
            wt2.write(p, b"modified contents\nline\n".to_vec()).unwrap();
        }
        for (i, p) in paths.iter().skip(900).take(20).enumerate() {
            wt2.rename(p, &gitlite::path(&format!("renamed/r{i}.txt")))
                .unwrap();
        }
        let t2 = write_tree(&mut odb, &wt2);
        g.bench_function("diff_1000_files_no_renames", |b| {
            b.iter(|| diff_trees(&odb, t1, t2, false).unwrap())
        });
        g.bench_function("diff_1000_files_with_renames", |b| {
            b.iter(|| diff_trees(&odb, t1, t2, true).unwrap())
        });
    }

    // diff3 on a 400-line file with two disjoint 10-line edits.
    {
        let base: String = (0..400).map(|i| format!("line {i}\n")).collect();
        let mut ours_lines: Vec<String> = (0..400).map(|i| format!("line {i}")).collect();
        let mut theirs_lines = ours_lines.clone();
        for (i, line) in ours_lines.iter_mut().enumerate().take(20).skip(10) {
            *line = format!("ours {i}");
        }
        for (i, line) in theirs_lines.iter_mut().enumerate().take(310).skip(300) {
            *line = format!("theirs {i}");
        }
        let ours = ours_lines.join("\n") + "\n";
        let theirs = theirs_lines.join("\n") + "\n";
        g.bench_function("diff3_400_lines", |b| {
            b.iter(|| diff3_merge(&base, &ours, &theirs, MergeLabels::default()))
        });
    }

    // Repository-level merge of two branches with disjoint edits.
    {
        let (wt, paths) = synthetic_tree(500, 3, 8);
        let mut repo = Repository::init("merge-bench");
        *repo.worktree_mut() = wt;
        repo.commit(sig("a", 1), "base").unwrap();
        repo.create_branch("dev").unwrap();
        repo.checkout_branch("dev").unwrap();
        repo.worktree_mut()
            .write(&paths[0], b"dev change\n".to_vec())
            .unwrap();
        repo.commit(sig("b", 2), "dev").unwrap();
        repo.checkout_branch("main").unwrap();
        repo.worktree_mut()
            .write(&paths[499], b"main change\n".to_vec())
            .unwrap();
        repo.commit(sig("a", 3), "main").unwrap();
        g.bench_function("merge_branch_500_files", |b| {
            b.iter_batched(
                || repo.clone(),
                |mut r| {
                    r.merge_branch(
                        "dev",
                        sig("a", 4),
                        "merge",
                        &gitlite::MergeOptions::default(),
                    )
                    .unwrap()
                },
                criterion::BatchSize::LargeInput,
            )
        });
        g.bench_function("clone_500_files", |b| {
            b.iter(|| clone_repository(&repo, "clone").unwrap())
        });
        g.bench_function("push_incremental", |b| {
            let mut local = clone_repository(&repo, "local").unwrap();
            local
                .worktree_mut()
                .write(&paths[10], b"pushed\n".to_vec())
                .unwrap();
            local.commit(sig("a", 9), "to push").unwrap();
            b.iter_batched(
                || clone_repository(&repo, "remote").unwrap(),
                |mut remote| push(&local, &mut remote, "main", "main", false).unwrap(),
                criterion::BatchSize::LargeInput,
            )
        });
    }

    g.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900))
}

criterion_group! { name = benches; config = config(); targets = bench }
criterion_main!(benches);
