//! E5 bench — AddCite / ModifyCite / DelCite / GenCite throughput on
//! repositories of growing size (the cost is dominated by rewriting the
//! citation file, which grows with the active domain).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gitcite_bench::{citation, cited_repo};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("cite_ops");
    for files in [100usize, 1_000, 10_000] {
        let (repo, paths) = cited_repo(files);
        let target = paths[files / 2].clone();

        g.bench_with_input(BenchmarkId::new("add_cite", files), &files, |b, _| {
            b.iter_batched(
                || repo.clone(),
                |mut r| r.add_cite(&target, citation("x")).unwrap(),
                criterion::BatchSize::LargeInput,
            )
        });

        let mut cited = repo.clone();
        cited.add_cite(&target, citation("x")).unwrap();
        g.bench_with_input(BenchmarkId::new("modify_cite", files), &files, |b, _| {
            b.iter_batched(
                || cited.clone(),
                |mut r| r.modify_cite(&target, citation("y")).unwrap(),
                criterion::BatchSize::LargeInput,
            )
        });
        g.bench_with_input(BenchmarkId::new("del_cite", files), &files, |b, _| {
            b.iter_batched(
                || cited.clone(),
                |mut r| r.del_cite(&target).unwrap(),
                criterion::BatchSize::LargeInput,
            )
        });
        g.bench_with_input(BenchmarkId::new("gen_cite", files), &files, |b, _| {
            b.iter(|| cited.cite(std::hint::black_box(&target)).unwrap())
        });
    }
    g.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900))
}

criterion_group! { name = benches; config = config(); targets = bench }
criterion_main!(benches);
