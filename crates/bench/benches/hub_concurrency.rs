//! Hub concurrency bench: read-heavy traffic against the sharded hub
//! (per-repo `RwLock`s, PR 3) versus the pre-redesign locking shape
//! (every operation serialized behind one global mutex).
//!
//! Two experiments, both pure-read on the measured side (the Software
//! Citation Station observation: citation lookup traffic is
//! overwhelmingly read-heavy):
//!
//! * **Throughput** — N threads hammer reads, each on its own repository
//!   and then all on one repository. Under sharding the distinct-repo
//!   threads share no lock at all; under a global mutex everything
//!   serializes. (On a single-core runner the wall-clock gap compresses
//!   to scheduling noise — the latency experiment below is the
//!   conclusive one there.)
//! * **Read latency under a writer** — a writer loops multi-millisecond
//!   citation commits on repository A while a reader times individual
//!   reads on repository B. Sharded: the reader never touches the
//!   writer's lock, so its latency stays at the cost of the read itself.
//!   Global mutex: every read queues behind the in-flight write, so
//!   read latency inflates toward the write duration. This shows the
//!   lock structure directly, independent of core count.
//!
//! Besides the criterion timings, each experiment prints reads/second or
//! per-read latency for the two locking shapes side by side.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gitlite::{path, RepoPath, Signature};
use hub::{Hub, Token};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

const THREADS: usize = 4;
const OPS_PER_THREAD: usize = 60;
const FILES_PER_REPO: usize = 8;
/// File count of the repository the latency experiment's writer churns —
/// big enough that one citation commit costs milliseconds.
const BIG_REPO_FILES: usize = 600;

/// The pre-redesign locking shape: the same hub, but every call funneled
/// through one global mutex — exactly what `Mutex<HubState>` used to do
/// to concurrent readers.
struct GlobalLockHub {
    hub: Hub,
    lock: Mutex<()>,
}

impl GlobalLockHub {
    fn read_file(&self, repo_id: &str, branch: &str, p: &RepoPath) -> Vec<u8> {
        let _g = self.lock.lock().unwrap();
        self.hub.read_file(repo_id, branch, p).unwrap()
    }

    fn log_len(&self, repo_id: &str) -> usize {
        let _g = self.lock.lock().unwrap();
        self.hub.log(repo_id, "main").unwrap().len()
    }

    fn modify_root_note(&self, token: &Token, repo_id: &str, note: &str) {
        let _g = self.lock.lock().unwrap();
        modify_root_note(&self.hub, token, repo_id, note);
    }
}

fn modify_root_note(hub: &Hub, token: &Token, repo_id: &str, note: &str) {
    let mut c = hub
        .generate_citation(repo_id, "main", &RepoPath::root())
        .unwrap();
    c.note = Some(note.to_owned());
    hub.modify_cite(token, repo_id, "main", &RepoPath::root(), c)
        .unwrap();
}

/// Builds a hub with `repos` small repositories plus one big one, each
/// holding cited files; returns the hub, the small repo ids, the big
/// repo id, and an owner token.
fn populate(repos: usize) -> (Hub, Vec<String>, String, Token) {
    let hub = Hub::new("https://bench.example");
    hub.register_user("owner", "The Owner").unwrap();
    let token = hub.login("owner").unwrap();
    let mut ids = Vec::new();
    for r in 0..repos {
        let repo_id = hub.create_repo(&token, &format!("r{r}")).unwrap();
        seed_files(&hub, &token, &repo_id, FILES_PER_REPO);
        ids.push(repo_id);
    }
    let big = hub.create_repo(&token, "big").unwrap();
    seed_files(&hub, &token, &big, BIG_REPO_FILES);
    (hub, ids, big, token)
}

fn seed_files(hub: &Hub, token: &Token, repo_id: &str, files: usize) {
    let mut local = hub.clone_repo(repo_id).unwrap();
    for f in 0..files {
        local
            .worktree_mut()
            .write(
                &path(&format!("src/d{}/f{f}.txt", f % 16)),
                format!("contents {repo_id}/{f}\n").into_bytes(),
            )
            .unwrap();
    }
    local
        .commit(Signature::new("The Owner", "o@x", 100), "seed")
        .unwrap();
    hub.push(token, repo_id, "main", &local, "main", false)
        .unwrap();
}

/// One thread's worth of read traffic against `repo_id` through the
/// sharded surface.
fn reader_sharded(hub: &Hub, repo_id: &str) {
    for i in 0..OPS_PER_THREAD {
        let f = i % FILES_PER_REPO;
        criterion::black_box(
            hub.read_file(repo_id, "main", &path(&format!("src/d{f}/f{f}.txt")))
                .unwrap(),
        );
        if i % 16 == 0 {
            criterion::black_box(hub.log(repo_id, "main").unwrap());
        }
    }
}

/// The same traffic through the global-mutex shape.
fn reader_global(hub: &GlobalLockHub, repo_id: &str) {
    for i in 0..OPS_PER_THREAD {
        let f = i % FILES_PER_REPO;
        criterion::black_box(hub.read_file(repo_id, "main", &path(&format!("src/d{f}/f{f}.txt"))));
        if i % 16 == 0 {
            criterion::black_box(hub.log_len(repo_id));
        }
    }
}

/// Runs `THREADS` reader threads; each gets its thread index.
fn run_threads(f: impl Fn(usize) + Sync) {
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let f = &f;
            scope.spawn(move || f(t));
        }
    });
}

fn throughput(label: &str, runs: usize, work: impl Fn()) {
    work(); // warm-up
    let start = Instant::now();
    for _ in 0..runs {
        work();
    }
    let elapsed = start.elapsed().as_secs_f64();
    let total_ops = (runs * THREADS * OPS_PER_THREAD) as f64;
    eprintln!(
        "hub_concurrency {label}: {:.0} reads/s ({THREADS} threads x {OPS_PER_THREAD} ops x {runs} runs in {:.3}s)",
        total_ops / elapsed,
        elapsed
    );
}

/// Times individual reads on `read` while `write` loops in a background
/// thread; returns (mean, max) read latency.
fn latency_under_writer(
    write: impl Fn(usize) + Send,
    read: impl Fn(),
    samples: usize,
) -> (Duration, Duration) {
    let stop = AtomicBool::new(false);
    let mut latencies = Vec::with_capacity(samples);
    std::thread::scope(|scope| {
        let stop_ref = &stop;
        scope.spawn(move || {
            let mut i = 0;
            while !stop_ref.load(Ordering::Relaxed) {
                write(i);
                i += 1;
            }
        });
        // Let the writer get in flight, then probe.
        std::thread::sleep(Duration::from_millis(20));
        for _ in 0..samples {
            let t = Instant::now();
            read();
            latencies.push(t.elapsed());
            std::thread::sleep(Duration::from_millis(1));
        }
        stop.store(true, Ordering::Relaxed);
    });
    let total: Duration = latencies.iter().sum();
    let max = latencies.iter().copied().max().unwrap_or_default();
    (total / latencies.len() as u32, max)
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("hub_concurrency");

    // --- throughput: distinct repos then one shared repo --------------------
    let (hub, ids, big, token) = populate(THREADS);
    g.bench_with_input(
        BenchmarkId::new("distinct_repos", "sharded"),
        &(),
        |b, _| {
            b.iter(|| {
                run_threads(|t| reader_sharded(&hub, &ids[t]));
            })
        },
    );
    let (ghub, gids, gbig, gtoken) = populate(THREADS);
    let global = GlobalLockHub {
        hub: ghub,
        lock: Mutex::new(()),
    };
    g.bench_with_input(
        BenchmarkId::new("distinct_repos", "global_mutex"),
        &(),
        |b, _| {
            b.iter(|| {
                run_threads(|t| reader_global(&global, &gids[t]));
            })
        },
    );
    g.bench_with_input(BenchmarkId::new("same_repo", "sharded"), &(), |b, _| {
        b.iter(|| {
            run_threads(|_| reader_sharded(&hub, &ids[0]));
        })
    });
    g.bench_with_input(
        BenchmarkId::new("same_repo", "global_mutex"),
        &(),
        |b, _| {
            b.iter(|| {
                run_threads(|_| reader_global(&global, &gids[0]));
            })
        },
    );
    throughput("distinct_repos/sharded", 8, || {
        run_threads(|t| reader_sharded(&hub, &ids[t]))
    });
    throughput("distinct_repos/global_mutex", 8, || {
        run_threads(|t| reader_global(&global, &gids[t]))
    });
    throughput("same_repo/sharded", 8, || {
        run_threads(|_| reader_sharded(&hub, &ids[0]))
    });
    throughput("same_repo/global_mutex", 8, || {
        run_threads(|_| reader_global(&global, &gids[0]))
    });
    g.finish();

    // --- read latency on repo B while a writer churns repo A ----------------
    // The decisive experiment for "reads no longer contend on a global
    // lock": the sharded reader's latency is the read cost alone, while
    // the global-mutex reader queues behind multi-ms citation commits.
    let (sharded_mean, sharded_max) = latency_under_writer(
        |i| modify_root_note(&hub, &token, &big, &format!("rev {i}")),
        || {
            criterion::black_box(
                hub.read_file(&ids[0], "main", &path("src/d0/f0.txt"))
                    .unwrap(),
            );
        },
        100,
    );
    let (global_mean, global_max) = latency_under_writer(
        |i| global.modify_root_note(&gtoken, &gbig, &format!("rev {i}")),
        || {
            criterion::black_box(global.read_file(&gids[0], "main", &path("src/d0/f0.txt")));
        },
        100,
    );
    eprintln!(
        "hub_concurrency read_latency_under_writer/sharded:      mean {:>9.1?}  max {:>9.1?}",
        sharded_mean, sharded_max
    );
    eprintln!(
        "hub_concurrency read_latency_under_writer/global_mutex: mean {:>9.1?}  max {:>9.1?}",
        global_mean, global_max
    );
    eprintln!(
        "hub_concurrency: sharding keeps cross-repo read latency {}x lower under write load",
        (global_mean.as_nanos().max(1) / sharded_mean.as_nanos().max(1)).max(1)
    );
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900))
}

criterion_group! { name = benches; config = config(); targets = bench }
criterion_main!(benches);
