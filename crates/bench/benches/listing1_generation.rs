//! E3 bench — regenerating Listing 1: the CiteDB demo scenario end to end
//! (CopyCite + branch + MergeCite + publish) and the citation-file
//! rendering of the final version.

use citekit::{file, parse_iso8601, Citation, CitedRepo, FailOnConflict, MergeStrategy};
use criterion::{criterion_group, criterion_main, Criterion};
use gitlite::{path, Signature};
use std::time::Duration;

fn ts(iso: &str) -> i64 {
    parse_iso8601(iso).unwrap()
}

fn scenario() -> (CitedRepo, gitlite::ObjectId) {
    let mut corecover = CitedRepo::init_with_root(
        "alu01-corecover",
        Citation::builder("alu01-corecover", "Chen Li")
            .url("https://github.com/chenlica/alu01-corecover")
            .author("Chen Li")
            .build(),
    );
    corecover
        .write_file(&path("CoreCover/CoreCover.java"), &b"// algo\n"[..])
        .unwrap();
    corecover
        .commit(
            Signature::new("Chen Li", "c@x", ts("2018-03-24T00:29:45Z")),
            "CoreCover",
        )
        .unwrap();
    let v_cc = corecover.repo().head_commit().unwrap();

    let mut demo = CitedRepo::init_with_root(
        "Data_citation_demo",
        Citation::builder("Data_citation_demo", "Yinjun Wu")
            .url("https://github.com/thuwuyinjun/Data_citation_demo")
            .author("Yinjun Wu")
            .build(),
    );
    demo.write_file(&path("citation/engine.py"), &b"# engine\n"[..])
        .unwrap();
    demo.commit(
        Signature::new("Yinjun Wu", "w@x", ts("2017-05-01T00:00:00Z")),
        "init",
    )
    .unwrap();
    demo.create_branch("gui").unwrap();
    demo.checkout_branch("gui").unwrap();
    demo.write_file(&path("citation/GUI/app.js"), &b"// gui\n"[..])
        .unwrap();
    demo.add_cite(
        &path("citation/GUI"),
        Citation::builder("Data_citation_demo", "Yinjun Wu")
            .author("Yanssie")
            .commit("", "2017-06-16T20:57:06Z")
            .build(),
    )
    .unwrap();
    demo.commit(
        Signature::new("Yanssie", "y@x", ts("2017-06-16T20:57:06Z")),
        "GUI",
    )
    .unwrap();
    demo.checkout_branch("main").unwrap();
    demo.copy_cite(
        &path("CoreCover"),
        corecover.repo(),
        v_cc,
        &path("CoreCover"),
    )
    .unwrap();
    demo.commit(
        Signature::new("Yinjun Wu", "w@x", ts("2018-03-24T00:29:45Z") + 3600),
        "import CoreCover",
    )
    .unwrap();
    demo.merge_cite(
        "gui",
        Signature::new("Yinjun Wu", "w@x", ts("2018-08-01T00:00:00Z")),
        "Merge branch 'gui'",
        MergeStrategy::Union,
        &mut FailOnConflict,
    )
    .unwrap();
    let out = demo
        .publish(
            Signature::new("Yinjun Wu", "w@x", ts("2018-09-04T02:35:20Z")),
            None,
            None,
        )
        .unwrap();
    (demo, out.commit)
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("listing1");
    g.bench_function("full_scenario", |b| b.iter(scenario));

    let (demo, released) = scenario();
    let func = demo.function_at(released).unwrap();
    g.bench_function("render_citation_file", |b| b.iter(|| file::to_text(&func)));
    let text = file::to_text(&func);
    g.bench_function("parse_citation_file", |b| {
        b.iter(|| file::parse(&text).unwrap())
    });
    g.bench_function("resolve_all_three_entries", |b| {
        b.iter(|| {
            (
                demo.cite_at(released, &path("CoreCover/CoreCover.java"))
                    .unwrap(),
                demo.cite_at(released, &path("citation/GUI/app.js"))
                    .unwrap(),
                demo.cite_at(released, &path("citation/engine.py")).unwrap(),
            )
        })
    });
    g.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
}

criterion_group! { name = benches; config = config(); targets = bench }
criterion_main!(benches);
