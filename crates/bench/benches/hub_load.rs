//! Load bench for the event-driven socket server: can one hub process
//! hold 10,000 concurrent loopback connections and keep answering mixed
//! read/push traffic? The old thread-per-connection server would need
//! 10,000 OS threads for this; the reactor holds them on one poller.
//!
//! Shape: the bench re-executes itself as a **server child process**
//! (`HUB_LOAD_ROLE=server`) so each side stays under the per-process fd
//! limit, then
//!
//! 1. opens N connections (default 10,000; `GITCITE_LOAD_CONNS`
//!    overrides) from a small pool of driver threads,
//! 2. drives request waves across every open connection — each wave
//!    writes one line-framed read request per connection, then collects
//!    every reply, timing each round trip — while v3 binary writer
//!    clients push fresh commits concurrently,
//! 3. reports client-observed latency percentiles and throughput,
//! 4. measures the v3 framing win: the same 5k-commit bundle encoded as
//!    a v2 hex envelope vs the v3 compressed binary side channel, and
//! 5. runs the **overload scenario**: a second server child capped at
//!    256 open connections takes offered load at 2× its capacity, and
//!    the bench checks the overflow is shed with typed `server_busy`
//!    replies while the served requests' p99 stays within 2× of the
//!    uncontended p99.
//!
//! Results go to stderr as `hub_load_*` data lines, which
//! `scripts/bench_load.sh` folds into `BENCH_load.json`.

use gitlite::{path, Repository, Signature};
use hub::transport::frame;
use hub::{ApiResponse, Hub, HubClient, RepoBundle, SocketServer};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};

const DEFAULT_CONNS: usize = 10_000;
const DRIVERS: usize = 8;
const WAVES: usize = 3;
const WRITERS: usize = 8;
const PUSHES_PER_WRITER: usize = 5;
const BUNDLE_COMMITS: usize = 5_000;

fn sig(t: i64) -> Signature {
    Signature::new("bench", "b@x", t)
}

/// `commits` edits of one churn file next to a stable README.
fn deep_repo(name: &str, commits: usize) -> Repository {
    let mut repo = Repository::init(name);
    repo.worktree_mut()
        .write(&path("README.md"), &b"# load\n"[..])
        .unwrap();
    for i in 0..commits {
        repo.worktree_mut()
            .write(&path("churn.txt"), format!("rev {i}\n").into_bytes())
            .unwrap();
        repo.commit(sig(1 + i as i64), format!("c{i}")).unwrap();
    }
    repo
}

// ---------------------------------------------------------------------
// Server child
// ---------------------------------------------------------------------

/// The re-executed child: seed a hub, serve it, print the bound address,
/// block until the parent hangs up our stdin. `GITCITE_MAX_CONNS` caps
/// `max_open_conns` — the overload scenario serves from a deliberately
/// small box so the parent can offer 2× its capacity.
fn run_server() -> ! {
    let hub = Arc::new(Hub::new("https://hub.local"));
    hub.register_user("ann", "Ann").unwrap();
    let token = hub.login("ann").unwrap();
    hub.import_repo(&token, "p", deep_repo("p", 100)).unwrap();
    let config = match std::env::var("GITCITE_MAX_CONNS")
        .ok()
        .and_then(|v| v.parse().ok())
    {
        Some(cap) => hub::ServerConfig {
            max_open_conns: cap,
            ..hub::ServerConfig::default()
        },
        None => hub::ServerConfig::default(),
    };
    let server =
        SocketServer::bind_with(Arc::clone(&hub), "127.0.0.1:0", config).expect("bind loopback");
    println!("ADDR {}", server.local_addr());
    let _ = std::io::stdout().flush();
    // Exit when the parent closes our stdin (or dies).
    std::thread::spawn(|| {
        let mut sink = Vec::new();
        let _ = std::io::stdin().read_to_end(&mut sink);
        std::process::exit(0);
    });
    server.join();
    std::process::exit(0);
}

/// Kills the server child when the bench exits, success or panic.
struct ServerChild(Child);

impl Drop for ServerChild {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

fn spawn_server(max_conns: Option<usize>) -> (ServerChild, String) {
    let exe = std::env::current_exe().expect("own binary path");
    let mut command = Command::new(exe);
    command
        .env("HUB_LOAD_ROLE", "server")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped());
    if let Some(cap) = max_conns {
        command.env("GITCITE_MAX_CONNS", cap.to_string());
    }
    let mut child = command.spawn().expect("spawn server child");
    let stdout = child.stdout.take().expect("child stdout");
    let mut line = String::new();
    BufReader::new(stdout)
        .read_line(&mut line)
        .expect("read server address");
    let addr = line
        .trim()
        .strip_prefix("ADDR ")
        .expect("address line")
        .to_owned();
    (ServerChild(child), addr)
}

// ---------------------------------------------------------------------
// Load drivers
// ---------------------------------------------------------------------

fn connect_retrying(addr: &str) -> Option<TcpStream> {
    for attempt in 0..5 {
        match TcpStream::connect(addr) {
            Ok(stream) => {
                let _ = stream.set_nodelay(true);
                let _ = stream.set_read_timeout(Some(Duration::from_secs(60)));
                return Some(stream);
            }
            Err(_) => std::thread::sleep(Duration::from_millis(20 << attempt)),
        }
    }
    None
}

/// Reads one `\n`-terminated reply without a per-connection BufReader
/// (10k of those would cost 80 MB of idle buffers).
fn read_reply(stream: &mut TcpStream, scratch: &mut Vec<u8>) -> bool {
    scratch.clear();
    let mut byte = [0u8; 256];
    loop {
        match stream.read(&mut byte) {
            Ok(0) => return false,
            Ok(n) => {
                scratch.extend_from_slice(&byte[..n]);
                if scratch.contains(&b'\n') {
                    return true;
                }
            }
            Err(_) => return false,
        }
    }
}

/// One driver thread's slice of the fleet: open `count` connections,
/// then run `WAVES` request waves, returning per-request latencies in
/// microseconds.
fn drive(addr: String, count: usize, parity: usize) -> (usize, Vec<u64>) {
    let mut conns: Vec<TcpStream> = Vec::with_capacity(count);
    for _ in 0..count {
        match connect_retrying(&addr) {
            Some(stream) => conns.push(stream),
            None => break,
        }
    }
    let achieved = conns.len();
    // Mixed read traffic: v1 and v2 envelopes alternate across the fleet
    // (the server sniffs framing per connection, so this also pins 10k
    // simultaneous line-framed peers).
    let v1 = b"{\"v\":1,\"method\":\"branches\",\"params\":{\"repo_id\":\"ann/p\"}}\n";
    let v2 =
        b"{\"v\":2,\"method\":\"log_page\",\"params\":{\"repo_id\":\"ann/p\",\"branch\":\"main\",\"limit\":1}}\n";
    let mut latencies = Vec::with_capacity(achieved * WAVES);
    let mut scratch = Vec::with_capacity(512);
    let mut sent_at: Vec<Instant> = Vec::with_capacity(achieved);
    for _wave in 0..WAVES {
        sent_at.clear();
        let mut alive = vec![true; conns.len()];
        for (i, conn) in conns.iter_mut().enumerate() {
            let req: &[u8] = if (i + parity).is_multiple_of(2) {
                v1
            } else {
                v2
            };
            alive[i] = conn.write_all(req).is_ok();
            sent_at.push(Instant::now());
        }
        for (i, conn) in conns.iter_mut().enumerate() {
            if alive[i] && read_reply(conn, &mut scratch) {
                latencies.push(sent_at[i].elapsed().as_micros() as u64);
            }
        }
    }
    (achieved, latencies)
}

/// A v3 binary writer: push traffic concurrent with the read waves.
fn write_load(addr: String, id: usize) -> usize {
    let client = match HubClient::connect(&addr) {
        Ok(c) => c,
        Err(_) => return 0,
    };
    let user = format!("writer{id}");
    if client.register_user(&user, &user).is_err() {
        return 0;
    }
    let Ok(token) = client.login(&user) else {
        return 0;
    };
    let mut local = deep_repo(&format!("w{id}"), 20);
    let Ok(repo_id) = client.import_repo(&token, &format!("w{id}"), &local) else {
        return 0;
    };
    let mut pushed = 0;
    for i in 0..PUSHES_PER_WRITER {
        local
            .worktree_mut()
            .write(&path("churn.txt"), format!("w{id} new {i}\n").into_bytes())
            .unwrap();
        local
            .commit(sig(10_000 + i as i64), format!("n{i}"))
            .unwrap();
        if client
            .push(&token, &repo_id, "main", &local, "main", false)
            .is_ok()
        {
            pushed += 1;
        }
    }
    pushed
}

// ---------------------------------------------------------------------
// Overload: 2× capacity offered load against a capped server
// ---------------------------------------------------------------------

/// The capped server's `max_open_conns` for the overload scenario.
const OVERLOAD_CAPACITY: usize = 256;

/// Opens `count` connections at once, sends one v1 read on each, and
/// classifies every reply: a `server_busy` line is a shed, anything
/// else a served request with its round-trip latency.
fn offered_wave(addr: &str, count: usize) -> (Vec<u64>, usize, usize) {
    let mut conns: Vec<TcpStream> = Vec::with_capacity(count);
    for _ in 0..count {
        match connect_retrying(addr) {
            Some(stream) => conns.push(stream),
            None => break,
        }
    }
    let request = b"{\"v\":1,\"method\":\"branches\",\"params\":{\"repo_id\":\"ann/p\"}}\n";
    let mut sent_at = Vec::with_capacity(conns.len());
    let mut alive = vec![true; conns.len()];
    for (i, conn) in conns.iter_mut().enumerate() {
        alive[i] = conn.write_all(request).is_ok();
        sent_at.push(Instant::now());
    }
    let (mut served_lat, mut served, mut shed) = (Vec::new(), 0usize, 0usize);
    let mut scratch = Vec::with_capacity(512);
    for (i, conn) in conns.iter_mut().enumerate() {
        if !alive[i] || !read_reply(conn, &mut scratch) {
            continue;
        }
        if scratch.windows(11).any(|w| w == b"server_busy") {
            shed += 1;
        } else {
            served += 1;
            served_lat.push(sent_at[i].elapsed().as_micros() as u64);
        }
    }
    (served_lat, served, shed)
}

fn p99(latencies: &[u64]) -> u64 {
    let histogram = telemetry::Histogram::new();
    for &us in latencies {
        histogram.record(us);
    }
    histogram.snapshot().p99()
}

/// Overload scenario: a server capped at [`OVERLOAD_CAPACITY`] open
/// connections takes offered load at exactly capacity (the uncontended
/// baseline), then at 2× capacity. The claim under test: the overflow
/// is *shed* with typed `server_busy` replies rather than queued, so
/// the p99 of the requests that are served stays close to the
/// uncontended p99 instead of collapsing.
fn overload() {
    let (_server, addr) = spawn_server(Some(OVERLOAD_CAPACITY));

    // Phase 1 — offered load == capacity: everything is served.
    let (base_lat, base_served, base_shed) = offered_wave(&addr, OVERLOAD_CAPACITY);
    // Let the reactor process the phase-1 hangups before re-offering.
    std::thread::sleep(Duration::from_millis(300));

    // Phase 2 — offered load == 2× capacity.
    let (over_lat, over_served, over_shed) = offered_wave(&addr, 2 * OVERLOAD_CAPACITY);

    let offered = 2 * OVERLOAD_CAPACITY;
    let shed_rate = over_shed as f64 / offered as f64;
    let p99_uncontended = p99(&base_lat);
    let p99_served = p99(&over_lat);
    eprintln!(
        "hub_load_overload capacity={OVERLOAD_CAPACITY} offered={offered} served={over_served} \
         shed={over_shed} shed_rate={shed_rate:.2} p99_uncontended_us={p99_uncontended} \
         p99_served_us={p99_served}"
    );

    assert_eq!(base_shed, 0, "at-capacity load must not shed");
    assert!(
        base_served * 10 >= OVERLOAD_CAPACITY * 9,
        "only {base_served}/{OVERLOAD_CAPACITY} served uncontended"
    );
    assert!(over_shed > 0, "2x load produced no shed replies");
    assert!(
        over_served * 10 >= OVERLOAD_CAPACITY * 9,
        "shedding starved served traffic: {over_served}/{OVERLOAD_CAPACITY}"
    );
    assert!(
        p99_served <= 2 * p99_uncontended.max(1),
        "served p99 {p99_served}us blew past 2x the uncontended {p99_uncontended}us"
    );
}

// ---------------------------------------------------------------------
// Bundle bytes: v2 hex envelope vs v3 binary side channel
// ---------------------------------------------------------------------

fn bundle_bytes() {
    let repo = deep_repo("big", BUNDLE_COMMITS);
    let bundle = RepoBundle::from_branch(&repo, "main").unwrap();
    let response = ApiResponse::Bundle(bundle);
    // The line framing: hex-in-sjson envelope plus its newline.
    let line_bytes = response.encode().len() + 1;
    // The v3 binary framing: envelope with objects_ext, objects as
    // compressed raw records.
    let (envelope, objects) = response.encode_ext();
    let binary_bytes = frame::encode_message(&envelope, &objects).len();
    eprintln!(
        "hub_load_bundle_bytes commits={BUNDLE_COMMITS} line={line_bytes} binary={binary_bytes} ratio={:.2}",
        line_bytes as f64 / binary_bytes as f64
    );
}

// ---------------------------------------------------------------------
// Main
// ---------------------------------------------------------------------

fn main() {
    if std::env::var("HUB_LOAD_ROLE").as_deref() == Ok("server") {
        run_server();
    }

    let target: usize = std::env::var("GITCITE_LOAD_CONNS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_CONNS);

    let (_server, addr) = spawn_server(None);

    // Writers run through the whole wave phase.
    let started = Instant::now();
    let writers: Vec<_> = (0..WRITERS)
        .map(|id| {
            let addr = addr.clone();
            std::thread::spawn(move || write_load(addr, id))
        })
        .collect();

    let per_driver = target / DRIVERS;
    let remainder = target % DRIVERS;
    let drivers: Vec<_> = (0..DRIVERS)
        .map(|d| {
            let addr = addr.clone();
            let count = per_driver + usize::from(d < remainder);
            std::thread::spawn(move || drive(addr, count, d))
        })
        .collect();

    let mut achieved = 0;
    // Same log2-bucketed histogram the server uses for its own method
    // stats, so the client-observed quantiles here and the hub's
    // `server_metrics` quantiles are computed identically.
    let histogram = telemetry::Histogram::new();
    for driver in drivers {
        let (count, lat) = driver.join().expect("driver thread");
        achieved += count;
        for us in lat {
            histogram.record(us);
        }
    }
    let pushes: usize = writers
        .into_iter()
        .map(|w| w.join().expect("writer thread"))
        .sum();
    let wall = started.elapsed();

    let snapshot = histogram.snapshot();
    let requests = snapshot.count as usize + pushes;
    let req_per_s = requests as f64 / wall.as_secs_f64();

    eprintln!("hub_load_conns target={target} achieved={achieved}");
    eprintln!(
        "hub_load_latency p50_us={} p99_us={} mean_us={}",
        snapshot.p50(),
        snapshot.p99(),
        snapshot.mean()
    );
    eprintln!(
        "hub_load_throughput requests={requests} wall_ms={} req_per_s={req_per_s:.0}",
        wall.as_millis()
    );
    eprintln!("hub_load_pushes writers={WRITERS} pushes={pushes}");

    bundle_bytes();

    assert!(
        achieved * 10 >= target * 9,
        "only {achieved}/{target} connections held concurrently"
    );

    // Separate capped server child, separate port: the overload numbers
    // never share a reactor with the 10k-connection fleet above.
    overload();
}
