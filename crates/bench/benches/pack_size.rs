//! Pack-size bench: full-record vs delta-compressed GLPK packs on the
//! object set of a synthetic n-commit repository (8 rotating source
//! files, append-mostly edits with a bounded window — the shape version
//! history actually has). The acceptance bar from the issue: deltified
//! pack bytes ≥3× smaller than full records on the 10k-commit repo.
//!
//! Besides Criterion timings for encode and chain-resolving reads, the
//! bench prints `pack_size/<metric>/<commits>: <n>` size lines;
//! `scripts/bench_pack.sh` turns them into `BENCH_pack.json` so the
//! compression trajectory is tracked PR over PR.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gitlite::{
    encode_pack, encode_pack_deltified, Blob, Commit, EntryMode, ObjectId, Pack, Signature, Tree,
    TreeEntry,
};
use std::collections::HashSet;
use std::path::PathBuf;
use std::time::Duration;

const FILES: usize = 16;

/// The full object set (blobs, trees, commits) of an n-commit linear
/// history: each commit appends one short line to one of [`FILES`]
/// source files under `src/` — append-mostly edits, the shape version
/// history actually has. Files grow monotonically, so the delta
/// planner's size ordering within a name group is exactly version
/// order; the `src/` nesting gives every blob and the source tree a
/// path hint.
fn repo_objects(commits: usize) -> Vec<(ObjectId, Vec<u8>)> {
    let mut objects: Vec<(ObjectId, Vec<u8>)> = Vec::new();
    let mut seen = HashSet::new();
    let mut push = |id: ObjectId, bytes: Vec<u8>, objects: &mut Vec<(ObjectId, Vec<u8>)>| {
        if seen.insert(id) {
            objects.push((id, bytes));
        }
    };
    let mut files: Vec<String> = (0..FILES)
        .map(|f| format!("// module {f}: shared header for every version\n"))
        .collect();
    let mut blob_entries: Vec<TreeEntry> = files
        .iter()
        .map(|content| {
            let blob = Blob::new(content.clone().into_bytes());
            let entry = TreeEntry {
                mode: EntryMode::File,
                id: blob.id(),
            };
            push(blob.id(), blob.canonical_bytes(), &mut objects);
            entry
        })
        .collect();
    let mut parent: Option<ObjectId> = None;
    for i in 0..commits {
        let f = i % FILES;
        files[f].push_str(&format!("v{i}={};\n", i * 31));
        let blob = Blob::new(files[f].clone().into_bytes());
        blob_entries[f] = TreeEntry {
            mode: EntryMode::File,
            id: blob.id(),
        };
        push(blob.id(), blob.canonical_bytes(), &mut objects);
        let mut src = Tree::new();
        for (j, entry) in blob_entries.iter().enumerate() {
            src.insert(format!("f{j}.rs"), *entry);
        }
        let mut root = Tree::new();
        root.insert(
            "src",
            TreeEntry {
                mode: EntryMode::Dir,
                id: src.id(),
            },
        );
        push(src.id(), src.canonical_bytes(), &mut objects);
        push(root.id(), root.canonical_bytes(), &mut objects);
        let commit = Commit {
            tree: root.id(),
            parents: parent.into_iter().collect(),
            author: Signature::new("bench", "b@x", i as i64 + 1),
            message: format!("edit f{f} at step {i}"),
        };
        let id = commit.id();
        push(id, commit.canonical_bytes(), &mut objects);
        parent = Some(id);
    }
    objects
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("pack_size");

    for commits in [1_000usize, 10_000] {
        let objects = repo_objects(commits);
        let full = encode_pack(objects.clone());
        let delta = encode_pack_deltified(objects.clone());
        let ratio = full.pack.len() as f64 / delta.pack.len() as f64;
        eprintln!("pack_size/objects/{commits}: {}", objects.len());
        eprintln!("pack_size/full_bytes/{commits}: {}", full.pack.len());
        eprintln!("pack_size/delta_bytes/{commits}: {}", delta.pack.len());
        eprintln!("pack_size/delta_records/{commits}: {}", delta.delta_objects);
        eprintln!("pack_size/ratio/{commits}: {ratio:.2}");

        // Sanity: the deltified pack serves byte-identical objects.
        let delta_pack =
            Pack::parse(delta.pack.clone(), Some(&delta.index), PathBuf::new()).unwrap();
        for (id, bytes) in objects.iter().step_by(97) {
            assert_eq!(delta_pack.raw(*id).unwrap(), &bytes[..]);
        }

        // Timings only at the smaller size — a 10k deltified encode is
        // seconds per iteration and the sizes above are the headline.
        if commits <= 1_000 {
            g.bench_with_input(
                BenchmarkId::new("encode_full", commits),
                &commits,
                |b, _| b.iter(|| criterion::black_box(encode_pack(objects.clone()).pack.len())),
            );
            g.bench_with_input(
                BenchmarkId::new("encode_delta", commits),
                &commits,
                |b, _| {
                    b.iter(|| {
                        criterion::black_box(encode_pack_deltified(objects.clone()).pack.len())
                    })
                },
            );
            let full_pack =
                Pack::parse(full.pack.clone(), Some(&full.index), PathBuf::new()).unwrap();
            g.bench_with_input(BenchmarkId::new("read_full", commits), &commits, |b, _| {
                b.iter(|| {
                    objects
                        .iter()
                        .map(|(id, _)| full_pack.raw(*id).unwrap().len())
                        .sum::<usize>()
                })
            });
            g.bench_with_input(BenchmarkId::new("read_delta", commits), &commits, |b, _| {
                b.iter(|| {
                    objects
                        .iter()
                        .map(|(id, _)| delta_pack.raw(*id).unwrap().len())
                        .sum::<usize>()
                })
            });
        }
    }

    g.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900))
}

criterion_group! { name = benches; config = config(); targets = bench }
criterion_main!(benches);
