//! E9 bench — CopyCite vs subtree size and ForkCite vs history length.

use citekit::{fork_cite, ForkOptions};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gitcite_bench::{cited_repo, copy_workload, sig};
use gitlite::path;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("copy_fork");

    for files in [10usize, 100, 1_000] {
        let (src, v, dst) = copy_workload(files);
        g.bench_with_input(
            BenchmarkId::new("copy_cite_files", files),
            &files,
            |b, _| {
                b.iter_batched(
                    || dst.clone(),
                    |mut d| {
                        d.copy_cite(&path("vendored"), src.repo(), v, &path("lib"))
                            .unwrap()
                    },
                    criterion::BatchSize::LargeInput,
                )
            },
        );
    }

    for commits in [10usize, 100, 500] {
        let mut src = cited_repo(16).0;
        for i in 0..commits {
            src.write_file(
                &path(&format!("hist/f{i}.txt")),
                format!("{i}\n").into_bytes(),
            )
            .unwrap();
            src.commit(sig("author", i as i64 + 10), format!("c{i}"))
                .unwrap();
        }
        let opts = ForkOptions::new("fork", "Forker", "https://hub.example/forker/fork");
        g.bench_with_input(
            BenchmarkId::new("fork_cite_history", commits),
            &commits,
            |b, _| b.iter(|| fork_cite(src.repo(), &opts, sig("Forker", 10_000)).unwrap()),
        );
    }

    g.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900))
}

criterion_group! { name = benches; config = config(); targets = bench }
criterion_main!(benches);
