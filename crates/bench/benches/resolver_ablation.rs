//! E7 bench — resolver ablation: the map-walk resolver
//! (`CitationFunction::resolve`, what the paper's file-based tool
//! effectively does) vs the path-trie index (`CiteIndex`), on single
//! queries and on bulk whole-tree resolution.

use citekit::CiteIndex;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gitcite_bench::{chain_function, tree_function};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("resolver_ablation");

    // Single-query latency on deep chains.
    for depth in [16usize, 64, 256] {
        let (func, query) = chain_function(depth, 10);
        let index = CiteIndex::build(&func);
        g.bench_with_input(BenchmarkId::new("map_walk", depth), &depth, |b, _| {
            b.iter(|| func.resolve(std::hint::black_box(&query)))
        });
        g.bench_with_input(BenchmarkId::new("trie", depth), &depth, |b, _| {
            b.iter(|| index.resolve(std::hint::black_box(&query)).unwrap())
        });
    }

    // Bulk: resolve every file of a 4096-file tree with 256 citations.
    let (func, queries) = tree_function(4_096, 256, 42);
    let index = CiteIndex::build(&func);
    g.bench_function("bulk_map_walk_4096", |b| {
        b.iter(|| {
            let mut n = 0usize;
            for q in &queries {
                n += func.resolve(q).1.repo_name.len();
            }
            n
        })
    });
    g.bench_function("bulk_trie_4096", |b| {
        b.iter(|| index.resolve_all(queries.iter()).len())
    });
    // Include build cost for fairness: trie amortizes over many queries.
    g.bench_function("trie_build_4096", |b| {
        b.iter(|| CiteIndex::build(&func).len())
    });

    g.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800))
}

criterion_group! { name = benches; config = config(); targets = bench }
criterion_main!(benches);
