//! Storage-backend bench: cold and warm object reads across `MemStore`,
//! `DiskStore`, `PackStore`, and their cached wrappers, over the
//! reachable closure of a synthetic repository. This is the experiment
//! behind choosing the local tool's default backend
//! (`CachedStore<PackStore>`): loose disk pays a file open + decode per
//! read, packs replace the per-object opens with one buffered file read,
//! the cache amortizes decodes on hot paths, memory is the ceiling.
//!
//! Cache effectiveness (hits/misses/evictions, per the ROADMAP's
//! capacity-planning note) is printed for the cached variants after
//! their measurement.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gitcite_bench::{sig, synthetic_tree};
use gitlite::{CachedStore, DiskStore, MemStore, ObjectId, ObjectStore, PackStore, Repository};
use std::time::Duration;

/// Builds a repository with `files` files plus a short history, on the
/// given backend, returning the repo and every reachable object id.
fn populate(store: Box<dyn ObjectStore>, files: usize) -> (Repository, Vec<ObjectId>) {
    let (wt, paths) = synthetic_tree(files, 3, 8);
    let mut repo = Repository::init_with("bench", store);
    *repo.worktree_mut() = wt;
    repo.commit(sig("bench", 1), "V1").unwrap();
    // A second commit touching one file, so history walks see two trees.
    let target = paths[files / 2].clone();
    repo.worktree_mut()
        .write(&target, &b"edited\n"[..])
        .unwrap();
    repo.commit(sig("bench", 2), "V2").unwrap();
    let head = repo.head_commit().unwrap();
    let ids = repo.odb().reachable_closure(&[head]).unwrap();
    (repo, ids)
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir =
        std::env::temp_dir().join(format!("gitcite-bench-store-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("store_backends");
    for files in [100usize, 1_000] {
        // Shared on-disk object set for the disk-backed variants.
        let disk_dir = temp_dir(&format!("d{files}"));
        let (_disk_repo, ids) = populate(Box::new(DiskStore::open(&disk_dir).unwrap()), files);
        let (mem_repo, _) = populate(Box::new(MemStore::new()), files);
        // The packed twin: same objects, consolidated into one pack.
        let pack_dir = temp_dir(&format!("p{files}"));
        let (_pack_repo, _) = populate(Box::new(PackStore::open(&pack_dir).unwrap()), files);
        PackStore::open(&pack_dir).unwrap().repack().unwrap();

        // Warm reads: repeatedly fetch the whole closure from one handle.
        g.bench_with_input(BenchmarkId::new("warm_mem", files), &files, |b, _| {
            let store = mem_repo.odb();
            b.iter(|| {
                for &id in &ids {
                    criterion::black_box(store.get(id).unwrap());
                }
            })
        });
        g.bench_with_input(BenchmarkId::new("warm_disk", files), &files, |b, _| {
            let store = DiskStore::open(&disk_dir).unwrap();
            b.iter(|| {
                for &id in &ids {
                    criterion::black_box(store.get(id).unwrap());
                }
            })
        });
        g.bench_with_input(BenchmarkId::new("warm_pack", files), &files, |b, _| {
            let store = PackStore::open(&pack_dir).unwrap();
            b.iter(|| {
                for &id in &ids {
                    criterion::black_box(store.get(id).unwrap());
                }
            })
        });
        g.bench_with_input(
            BenchmarkId::new("warm_cached_disk", files),
            &files,
            |b, _| {
                let store = CachedStore::new(DiskStore::open(&disk_dir).unwrap());
                // Prime once; the measured loop is all cache hits.
                for &id in &ids {
                    store.get(id).unwrap();
                }
                b.iter(|| {
                    for &id in &ids {
                        criterion::black_box(store.get(id).unwrap());
                    }
                });
                report_cache("warm_cached_disk", files, store.stats());
            },
        );
        g.bench_with_input(
            BenchmarkId::new("warm_cached_pack", files),
            &files,
            |b, _| {
                let store = CachedStore::new(PackStore::open(&pack_dir).unwrap());
                for &id in &ids {
                    store.get(id).unwrap();
                }
                b.iter(|| {
                    for &id in &ids {
                        criterion::black_box(store.get(id).unwrap());
                    }
                });
                report_cache("warm_cached_pack", files, store.stats());
            },
        );

        // Cold reads: a fresh handle per iteration (caches start empty;
        // the disk variants pay a file open + decode per object, the
        // pack variant one buffered file read for the whole set).
        g.bench_with_input(BenchmarkId::new("cold_disk", files), &files, |b, _| {
            b.iter_batched(
                || DiskStore::open(&disk_dir).unwrap(),
                |store| {
                    for &id in &ids {
                        criterion::black_box(store.get(id).unwrap());
                    }
                },
                criterion::BatchSize::LargeInput,
            )
        });
        g.bench_with_input(BenchmarkId::new("cold_pack", files), &files, |b, _| {
            b.iter_batched(
                || PackStore::open(&pack_dir).unwrap(),
                |store| {
                    for &id in &ids {
                        criterion::black_box(store.get(id).unwrap());
                    }
                },
                criterion::BatchSize::LargeInput,
            )
        });
        g.bench_with_input(
            BenchmarkId::new("cold_cached_disk", files),
            &files,
            |b, _| {
                b.iter_batched(
                    || CachedStore::new(DiskStore::open(&disk_dir).unwrap()),
                    |store| {
                        for &id in &ids {
                            criterion::black_box(store.get(id).unwrap());
                        }
                    },
                    criterion::BatchSize::LargeInput,
                )
            },
        );
        g.bench_with_input(
            BenchmarkId::new("cold_cached_pack", files),
            &files,
            |b, _| {
                b.iter_batched(
                    || CachedStore::new(PackStore::open(&pack_dir).unwrap()),
                    |store| {
                        for &id in &ids {
                            criterion::black_box(store.get(id).unwrap());
                        }
                    },
                    criterion::BatchSize::LargeInput,
                )
            },
        );
    }
    g.finish();
}

/// Prints cache-effectiveness counters for a cached variant (the
/// ROADMAP's capacity-planning note: hit rate vs evictions tells whether
/// the default capacity fits the working set).
fn report_cache(name: &str, files: usize, stats: gitlite::CacheStats) {
    eprintln!(
        "cache {name}/{files}: {} hits, {} misses, {} evictions ({}/{} cached, hit rate {:.1}%)",
        stats.hits,
        stats.misses,
        stats.evictions,
        stats.len,
        stats.capacity,
        stats.hit_rate() * 100.0
    );
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900))
}

criterion_group! { name = benches; config = config(); targets = bench }
criterion_main!(benches);
