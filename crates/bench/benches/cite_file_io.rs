//! E10 bench — `citation.cite` serialization and parsing vs entry count
//! (the file format layer: citekit::file over sjson).

use citekit::{file, CitationFunction};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gitcite_bench::citation;
use gitlite::RepoPath;
use std::time::Duration;

fn function_with(entries: usize) -> CitationFunction {
    let mut f = CitationFunction::new(citation("root"));
    for i in 0..entries {
        f.set(
            RepoPath::parse(&format!("dir{}/sub{}/f{i}.txt", i % 16, i % 4)).unwrap(),
            citation(&format!("e{i}")),
            false,
        );
    }
    f
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("cite_file_io");
    for entries in [10usize, 100, 1_000, 10_000] {
        let func = function_with(entries);
        let text = file::to_text(&func);
        g.throughput(Throughput::Bytes(text.len() as u64));
        g.bench_with_input(BenchmarkId::new("serialize", entries), &entries, |b, _| {
            b.iter(|| file::to_text(&func))
        });
        g.bench_with_input(BenchmarkId::new("parse", entries), &entries, |b, _| {
            b.iter(|| file::parse(&text).unwrap())
        });
        g.bench_with_input(BenchmarkId::new("round_trip", entries), &entries, |b, _| {
            b.iter(|| file::parse(&file::to_text(&func)).unwrap())
        });
    }
    g.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900))
}

criterion_group! { name = benches; config = config(); targets = bench }
criterion_main!(benches);
