//! E1 bench — the full Figure 1 running example (V1..V5: AddCite,
//! CopyCite, MergeCite) executed end to end, plus its individual phases.

use citekit::{CitedRepo, FailOnConflict, MergeStrategy};
use criterion::{criterion_group, criterion_main, Criterion};
use gitcite_bench::{citation, sig};
use gitlite::path;
use std::time::Duration;

fn build_p2() -> (CitedRepo, gitlite::ObjectId) {
    let mut p2 = CitedRepo::init("P2", "Susan", "https://hub/Susan/P2");
    p2.write_file(&path("green/inner.c"), &b"int inner;\n"[..])
        .unwrap();
    p2.write_file(&path("green/f2.txt"), &b"f2\n"[..]).unwrap();
    p2.add_cite(&path("green/inner.c"), citation("C3")).unwrap();
    let v3 = p2.commit(sig("Susan", 3_000), "V3").unwrap().commit;
    (p2, v3)
}

fn full_scenario() -> gitlite::ObjectId {
    let mut p1 = CitedRepo::init("P1", "Leshang", "https://hub/Leshang/P1");
    p1.write_file(&path("f1.txt"), &b"f1\n"[..]).unwrap();
    p1.commit(sig("Leshang", 1_000), "V1").unwrap();
    p1.create_branch("copy-arm").unwrap();
    p1.add_cite(&path("f1.txt"), citation("C2")).unwrap();
    p1.commit(sig("Leshang", 2_000), "V2").unwrap();
    let (p2, v3) = build_p2();
    p1.checkout_branch("copy-arm").unwrap();
    p1.copy_cite(&path("green"), p2.repo(), v3, &path("green"))
        .unwrap();
    p1.commit(sig("Leshang", 4_000), "V4").unwrap();
    p1.checkout_branch("main").unwrap();
    let report = p1
        .merge_cite(
            "copy-arm",
            sig("Leshang", 5_000),
            "V5",
            MergeStrategy::Union,
            &mut FailOnConflict,
        )
        .unwrap();
    match report.outcome {
        citekit::MergeCiteOutcome::Merged(v5) => v5,
        other => panic!("figure 1 merge must be clean: {other:?}"),
    }
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig1_scenario");
    g.bench_function("full_v1_to_v5", |b| b.iter(full_scenario));
    g.bench_function("addcite_commit_phase", |b| {
        b.iter_batched(
            || {
                let mut p1 = CitedRepo::init("P1", "Leshang", "https://hub/P1");
                p1.write_file(&path("f1.txt"), &b"f1\n"[..]).unwrap();
                p1.commit(sig("Leshang", 1_000), "V1").unwrap();
                p1
            },
            |mut p1| {
                p1.add_cite(&path("f1.txt"), citation("C2")).unwrap();
                p1.commit(sig("Leshang", 2_000), "V2").unwrap();
            },
            criterion::BatchSize::SmallInput,
        )
    });
    g.bench_function("copycite_phase", |b| {
        let (p2, v3) = build_p2();
        b.iter_batched(
            || {
                let mut p1 = CitedRepo::init("P1", "Leshang", "https://hub/P1");
                p1.write_file(&path("f1.txt"), &b"f1\n"[..]).unwrap();
                p1.commit(sig("Leshang", 1_000), "V1").unwrap();
                p1
            },
            |mut p1| {
                p1.copy_cite(&path("green"), p2.repo(), v3, &path("green"))
                    .unwrap();
                p1.commit(sig("Leshang", 4_000), "V4").unwrap();
            },
            criterion::BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
}

criterion_group! { name = benches; config = config(); targets = bench }
criterion_main!(benches);
