//! E4 bench — `Cite(V,P)(n)` resolution latency vs tree depth and
//! active-domain density, plus the resolution-policy variants.

use citekit::ResolvePolicy;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gitcite_bench::chain_function;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("cite_resolution");

    // Depth sweep at fixed 10% density.
    for depth in [4usize, 16, 64, 256] {
        let (func, query) = chain_function(depth, 10);
        g.bench_with_input(BenchmarkId::new("depth", depth), &depth, |b, _| {
            b.iter(|| func.resolve(std::hint::black_box(&query)))
        });
    }

    // Density sweep at fixed depth 64.
    for density in [0usize, 1, 10, 50, 100] {
        let (func, query) = chain_function(64, density);
        g.bench_with_input(
            BenchmarkId::new("density_pct", density),
            &density,
            |b, _| b.iter(|| func.resolve(std::hint::black_box(&query))),
        );
    }

    // Policy comparison at depth 64, 50% density.
    let (func, query) = chain_function(64, 50);
    for (name, policy) in [
        ("closest", ResolvePolicy::ClosestAncestor),
        ("path_union", ResolvePolicy::PathUnion),
        ("root_only", ResolvePolicy::RootOnly),
    ] {
        g.bench_function(BenchmarkId::new("policy", name), |b| {
            b.iter(|| func.resolve_policy(std::hint::black_box(&query), policy))
        });
    }

    g.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(30)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(700))
}

criterion_group! { name = benches; config = config(); targets = bench }
criterion_main!(benches);
