//! E12 bench — retroactive citation synthesis (future work #2): tip-only
//! retrofit and full-history rewriting vs history length and author count.

use citekit::{retrofit, retrofit_history, RetrofitOptions};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gitcite_bench::{legacy_history, sig};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("retro_backfill");
    let opts = RetrofitOptions::new("maintainer", "https://hub.example/lab/legacy");

    for commits in [10usize, 100, 300] {
        let repo = legacy_history(commits, 4, 6);
        g.bench_with_input(
            BenchmarkId::new("retrofit_tip", commits),
            &commits,
            |b, _| {
                b.iter_batched(
                    || repo.clone(),
                    |r| retrofit(r, &opts, sig("maintainer", 1_000_000)).unwrap(),
                    criterion::BatchSize::LargeInput,
                )
            },
        );
        g.bench_with_input(
            BenchmarkId::new("retrofit_history", commits),
            &commits,
            |b, _| b.iter(|| retrofit_history(&repo, &opts).unwrap()),
        );
    }

    for authors in [1usize, 8, 32] {
        let repo = legacy_history(100, authors, 6);
        g.bench_with_input(
            BenchmarkId::new("retrofit_tip_authors", authors),
            &authors,
            |b, _| {
                b.iter_batched(
                    || repo.clone(),
                    |r| retrofit(r, &opts, sig("maintainer", 1_000_000)).unwrap(),
                    criterion::BatchSize::LargeInput,
                )
            },
        );
    }

    g.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900))
}

criterion_group! { name = benches; config = config(); targets = bench }
criterion_main!(benches);
