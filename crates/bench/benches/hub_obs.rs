//! Observability overhead bench: the telemetry layer (per-method call
//! counters, log2 latency histograms, error tallies) sits on every
//! `Hub::dispatch`. This bench measures what that instrumentation costs
//! on the read path by dispatching the same requests twice — once with
//! metrics recording on (the default) and once with it switched off via
//! `Hub::set_metrics_enabled(false)` — and reporting the delta.
//!
//! The acceptance target is <2% overhead on the read path. Results go
//! to stderr as `hub_obs_*` data lines, which `scripts/bench_obs.sh`
//! folds into `BENCH_obs.json`; the criterion groups track the absolute
//! timings PR over PR.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gitlite::{path, Signature};
use hub::{ApiRequest, ApiResponse, Hub, Token};
use std::time::Instant;

const FILES: usize = 32;
const COMMITS: usize = 24;
/// Iterations per timed pass of the data-line measurement. The per-call
/// instrumentation cost is tens of nanoseconds against a read that costs
/// microseconds, so the pass has to be long enough to resolve it.
const PASS_ITERS: usize = 8_000;
/// Measurement pairs. Each pair times one instrumented and one
/// uninstrumented pass back to back (order alternating pair to pair to
/// cancel ordering bias) and contributes one *paired delta*; the
/// reported overhead is the median delta. Temporally-adjacent passes
/// share their drift (CPU frequency, allocator state, neighbors on the
/// box), so the subtraction removes it — a plain min-vs-min or
/// median-vs-median across the whole run still wobbled by several
/// percent, swamping a sub-100ns effect.
const PAIRS: usize = 25;

fn populate(hub: &Hub) -> (String, Token) {
    hub.register_user("owner", "The Owner").unwrap();
    let token = hub.login("owner").unwrap();
    let repo_id = hub.create_repo(&token, "obs").unwrap();
    let mut local = hub.clone_repo(&repo_id).unwrap();
    for f in 0..FILES {
        local
            .worktree_mut()
            .write(
                &path(&format!("src/d{}/f{f}.txt", f % 8)),
                format!("contents {f}\n").into_bytes(),
            )
            .unwrap();
    }
    local
        .commit(Signature::new("The Owner", "o@x", 100), "seed")
        .unwrap();
    for c in 0..COMMITS {
        local
            .worktree_mut()
            .write(&path("src/churn.txt"), format!("rev {c}\n").into_bytes())
            .unwrap();
        local
            .commit(
                Signature::new("The Owner", "o@x", 101 + c as i64),
                format!("c{c}"),
            )
            .unwrap();
    }
    hub.push(&token, &repo_id, "main", &local, "main", false)
        .unwrap();
    (repo_id, token)
}

/// The measured read-path mix: a file read, a log walk, and the cheap
/// listing — the same shape the load bench drives over the socket.
fn read_mix(hub: &Hub, repo_id: &str, i: usize) {
    let f = i % FILES;
    let req = match i % 3 {
        0 => ApiRequest::ReadFile {
            repo_id: repo_id.to_owned(),
            branch: "main".into(),
            path: path(&format!("src/d{}/f{f}.txt", f % 8)),
        },
        1 => ApiRequest::Log {
            repo_id: repo_id.to_owned(),
            branch: "main".into(),
        },
        _ => ApiRequest::ListRepos,
    };
    if let ApiResponse::Error(e) = criterion::black_box(hub.dispatch(req)) {
        panic!("read path errored: {e:?}")
    }
}

/// One timed pass of `PASS_ITERS` dispatches; returns mean ns/dispatch.
fn timed_pass(hub: &Hub, repo_id: &str) -> f64 {
    let started = Instant::now();
    for i in 0..PASS_ITERS {
        read_mix(hub, repo_id, i);
    }
    started.elapsed().as_nanos() as f64 / PASS_ITERS as f64
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

fn bench_dispatch_overhead(c: &mut Criterion) {
    let hub = Hub::new("https://bench.example");
    let (repo_id, _token) = populate(&hub);

    // Warm both shapes before any measurement.
    for i in 0..PASS_ITERS {
        read_mix(&hub, &repo_id, i);
    }

    // Paired back-to-back passes, order alternating; the median paired
    // delta is the overhead estimate.
    let mut deltas = Vec::with_capacity(PAIRS);
    let mut on = Vec::with_capacity(PAIRS);
    let mut off = Vec::with_capacity(PAIRS);
    for pair in 0..PAIRS {
        let (on_ns, off_ns) = if pair % 2 == 0 {
            hub.set_metrics_enabled(true);
            let a = timed_pass(&hub, &repo_id);
            hub.set_metrics_enabled(false);
            (a, timed_pass(&hub, &repo_id))
        } else {
            hub.set_metrics_enabled(false);
            let b = timed_pass(&hub, &repo_id);
            hub.set_metrics_enabled(true);
            (timed_pass(&hub, &repo_id), b)
        };
        deltas.push(on_ns - off_ns);
        on.push(on_ns);
        off.push(off_ns);
    }
    let delta_ns = median(&mut deltas);
    let off_ns = median(&mut off);
    let on_ns = median(&mut on);
    let overhead_pct = delta_ns / off_ns * 100.0;
    eprintln!(
        "hub_obs_dispatch iters={} instrumented_ns={:.0} uninstrumented_ns={:.0} delta_ns={:.0} overhead_pct={:.2}",
        PASS_ITERS * PAIRS * 2,
        on_ns,
        off_ns,
        delta_ns,
        overhead_pct
    );
    // Sanity: the instrumented passes actually recorded.
    hub.set_metrics_enabled(true);
    let calls: u64 = hub
        .server_metrics(None)
        .unwrap()
        .methods
        .iter()
        .map(|m| m.calls)
        .sum();
    eprintln!("hub_obs_recorded calls={calls}");

    // Criterion groups pin the absolute read-path cost PR over PR.
    let mut group = c.benchmark_group("hub_obs_dispatch");
    for (label, enabled) in [("instrumented", true), ("uninstrumented", false)] {
        hub.set_metrics_enabled(enabled);
        let mut i = 0usize;
        group.bench_function(BenchmarkId::new("read_mix", label), |b| {
            b.iter(|| {
                read_mix(&hub, &repo_id, i);
                i = i.wrapping_add(1);
            })
        });
    }
    group.finish();
    hub.set_metrics_enabled(true);
}

criterion_group!(benches, bench_dispatch_overhead);
criterion_main!(benches);
