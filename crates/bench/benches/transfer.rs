//! Transfer bench: full-closure vs negotiated push over the wire
//! protocol. The workload is the ROADMAP's incremental-sync story — 10
//! new commits landing on a 5k-commit hosted repository — measured two
//! ways on the same hub build:
//!
//! * `push_full` — the v1 path: `RepoBundle::from_branch` ships the
//!   entire branch closure every time.
//! * `push_negotiated` — the v2 path: `negotiate` finds the common
//!   frontier, the delta bundle ships only the objects past it.
//!
//! Bytes on the wire are counted by a transport wrapper and printed as
//! `transfer_bytes ...` / `transfer_objects ...` lines (stderr), which
//! `scripts/bench_transfer.sh` folds together with the Criterion times
//! into `BENCH_transfer.json`. Expectation: the negotiated push moves
//! orders of magnitude fewer bytes, and its wall time stops scaling with
//! history depth.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use gitlite::{path, Repository, Signature};
use hub::{Hub, HubClient, InProcess, Token, Transport};
use std::cell::Cell;
use std::time::Duration;

const BASE_COMMITS: usize = 5_000;
const NEW_COMMITS: usize = 10;

/// Counts request/response bytes crossing the transport.
struct Counting<'h> {
    inner: InProcess<'h>,
    sent: Cell<u64>,
    received: Cell<u64>,
}

impl<'h> Counting<'h> {
    fn new(hub: &'h Hub) -> Self {
        Counting {
            inner: InProcess::new(hub),
            sent: Cell::new(0),
            received: Cell::new(0),
        }
    }

    fn reset(&self) -> (u64, u64) {
        (self.sent.replace(0), self.received.replace(0))
    }
}

impl Transport for Counting<'_> {
    fn send(&self, request: &str) -> String {
        self.sent.set(self.sent.get() + request.len() as u64 + 1);
        let reply = self.inner.send(request);
        self.received
            .set(self.received.get() + reply.len() as u64 + 1);
        reply
    }
}

fn sig(t: i64) -> Signature {
    Signature::new("bench", "b@x", t)
}

/// A repository whose history is `commits` edits of one churn file next
/// to a stable README — each commit contributes a commit, a root tree
/// and one new blob.
fn deep_repo(commits: usize) -> Repository {
    let mut repo = Repository::init("big");
    repo.worktree_mut()
        .write(&path("README.md"), &b"# big\n"[..])
        .unwrap();
    for i in 0..commits {
        repo.worktree_mut()
            .write(&path("churn.txt"), format!("rev {i}\n").into_bytes())
            .unwrap();
        repo.commit(sig(1 + i as i64), format!("c{i}")).unwrap();
    }
    repo
}

struct Setup<'h> {
    client: HubClient<Counting<'h>>,
    token: Token,
    repo_id: String,
    base: Repository,
    advanced: Repository,
}

fn setup(hub: &Hub) -> Setup<'_> {
    hub.register_user("bench", "Bench").unwrap();
    let token = hub.login("bench").unwrap();
    let base = deep_repo(BASE_COMMITS);
    let repo_id = hub.import_repo(&token, "big", base.clone()).unwrap();
    let mut advanced = base.clone();
    for i in 0..NEW_COMMITS {
        advanced
            .worktree_mut()
            .write(&path("churn.txt"), format!("new {i}\n").into_bytes())
            .unwrap();
        advanced
            .commit(sig(100_000 + i as i64), format!("n{i}"))
            .unwrap();
    }
    Setup {
        client: HubClient::new(Counting::new(hub)),
        token,
        repo_id,
        base,
        advanced,
    }
}

/// Force the hosted branch back to the base tip (negotiated: this ships
/// nothing, it only moves the ref) so the next push re-transfers the
/// increment.
fn rewind(s: &Setup<'_>) {
    s.client
        .push(&s.token, &s.repo_id, "main", &s.base, "main", true)
        .unwrap();
}

fn bench(c: &mut Criterion) {
    let hub_full = Hub::new("https://h");
    let hub_neg = Hub::new("https://h");
    let full = setup(&hub_full);
    let neg = setup(&hub_neg);

    // ----- bytes on the wire (one measured push each) -------------------
    rewind(&full);
    full.client.transport().reset();
    full.client
        .push_full(
            &full.token,
            &full.repo_id,
            "main",
            &full.advanced,
            "main",
            false,
        )
        .unwrap();
    let (full_sent, full_recv) = full.client.transport().reset();

    rewind(&neg);
    neg.client.transport().reset();
    neg.client
        .push_negotiated(
            &neg.token,
            &neg.repo_id,
            "main",
            &neg.advanced,
            "main",
            false,
        )
        .unwrap();
    let (neg_sent, neg_recv) = neg.client.transport().reset();

    let full_objects = hub::RepoBundle::from_branch(&full.advanced, "main")
        .unwrap()
        .objects
        .len();
    // 3 objects per new commit: commit + root tree + churn blob.
    let delta_objects = NEW_COMMITS * 3;
    eprintln!(
        "transfer_bytes full={} negotiated={} ratio={:.1}",
        full_sent + full_recv,
        neg_sent + neg_recv,
        (full_sent + full_recv) as f64 / (neg_sent + neg_recv) as f64
    );
    eprintln!("transfer_objects full={full_objects} negotiated={delta_objects}");

    // ----- wall time ----------------------------------------------------
    let mut g = c.benchmark_group("transfer");
    g.bench_function("push_full", |b| {
        b.iter_batched(
            || rewind(&full),
            |()| {
                full.client
                    .push_full(
                        &full.token,
                        &full.repo_id,
                        "main",
                        &full.advanced,
                        "main",
                        false,
                    )
                    .unwrap()
            },
            BatchSize::LargeInput,
        )
    });
    g.bench_function("push_negotiated", |b| {
        b.iter_batched(
            || rewind(&neg),
            |()| {
                neg.client
                    .push(
                        &neg.token,
                        &neg.repo_id,
                        "main",
                        &neg.advanced,
                        "main",
                        false,
                    )
                    .unwrap()
            },
            BatchSize::LargeInput,
        )
    });
    // The steady-state no-op: everything already on the server, sync
    // detects it in one negotiate round.
    g.bench_function("sync_noop", |b| {
        neg.client
            .push(
                &neg.token,
                &neg.repo_id,
                "main",
                &neg.advanced,
                "main",
                false,
            )
            .unwrap();
        b.iter(|| {
            neg.client
                .sync(&neg.token, &neg.repo_id, "main", &neg.advanced, "main")
                .unwrap()
        })
    });
    g.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1_500))
}

criterion_group! { name = benches; config = config(); targets = bench }
criterion_main!(benches);
