//! History-walk bench: commit-graph vs decode walk for `log` and
//! `merge_base`, on the two shapes that stress them — a deep linear
//! history (10k commits: the retrofit/audit workload) and a wide
//! merge-heavy history (parallel branches merged repeatedly: the hub's
//! collaboration workload).
//!
//! Both variants read the *same* pack bytes; the only difference is the
//! `commit-graph.glcg` sidecar. `graph` stores carry it (written by
//! `repack()`), `decode` stores had it deleted, so `Repository::log` /
//! `merge_base` take their always-correct decode fallback. The
//! acceptance bar from the issue: graph ≥10× faster on the 10k-commit
//! history, warm. `scripts/bench_history.sh` turns this bench's output
//! into `BENCH_history.json` so the numbers are tracked PR over PR.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gitlite::{
    merge_base, Commit, Object, ObjectId, ObjectStore, PackStore, Repository, Signature, Tree,
    GRAPH_FILE, PACK_DIR,
};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "gitcite-bench-history-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Builds commits in memory (one shared empty tree — history shape is
/// what matters here), returning the object set and the ids in creation
/// order.
struct HistoryBuilder {
    objects: Vec<(ObjectId, Arc<Object>)>,
    clock: i64,
}

impl HistoryBuilder {
    fn new() -> Self {
        let tree = Tree::new();
        let objects = vec![(tree.id(), Arc::new(Object::Tree(tree)))];
        HistoryBuilder { objects, clock: 0 }
    }

    fn commit(&mut self, msg: String, parents: Vec<ObjectId>) -> ObjectId {
        self.clock += 1;
        let c = Commit {
            tree: self.objects[0].0,
            parents,
            author: Signature::new("bench", "b@x", self.clock),
            message: msg,
        };
        let id = c.id();
        self.objects.push((id, Arc::new(Object::Commit(c))));
        id
    }
}

/// `commits` in one straight line; returns (tip, root).
fn linear(commits: usize) -> (HistoryBuilder, ObjectId, ObjectId) {
    let mut h = HistoryBuilder::new();
    let root = h.commit("c0".into(), vec![]);
    let mut tip = root;
    for i in 1..commits {
        tip = h.commit(format!("c{i}"), vec![tip]);
    }
    (h, tip, root)
}

/// A merge-heavy DAG: `rounds` iterations of {branch 4 ways off the
/// mainline, advance each branch, merge them back pairwise}. Returns the
/// two final diverged tips (never merged with each other) whose base is
/// `rounds` merges deep.
fn merge_heavy(rounds: usize) -> (HistoryBuilder, ObjectId, ObjectId) {
    let mut h = HistoryBuilder::new();
    let mut mainline = h.commit("root".into(), vec![]);
    for r in 0..rounds {
        let branches: Vec<ObjectId> = (0..4)
            .map(|b| {
                let side = h.commit(format!("b{r}-{b}"), vec![mainline]);
                h.commit(format!("b{r}-{b}+",), vec![side])
            })
            .collect();
        let left = h.commit(format!("m{r}-l"), vec![branches[0], branches[1]]);
        let right = h.commit(format!("m{r}-r"), vec![branches[2], branches[3]]);
        mainline = h.commit(format!("m{r}"), vec![left, right]);
    }
    let tip_a = h.commit("final-a".into(), vec![mainline]);
    let tip_b = h.commit("final-b".into(), vec![mainline]);
    (h, tip_a, tip_b)
}

/// Materializes a history into two identical pack stores — one with the
/// commit-graph sidecar, one without — and returns (graph, decode)
/// handles.
fn packed_pair(tag: &str, builder: &HistoryBuilder) -> (PackStore, PackStore) {
    let graph_dir = temp_dir(&format!("{tag}-graph"));
    let decode_dir = temp_dir(&format!("{tag}-decode"));
    for dir in [&graph_dir, &decode_dir] {
        let mut store = PackStore::open(dir).unwrap();
        store.put_many(builder.objects.clone());
        store.repack().unwrap();
    }
    strip_graph(&decode_dir);
    let graph = PackStore::open(&graph_dir).unwrap();
    let decode = PackStore::open(&decode_dir).unwrap();
    assert!(graph.commit_graph().is_some());
    assert!(decode.commit_graph().is_none());
    (graph, decode)
}

fn strip_graph(dir: &Path) {
    std::fs::remove_file(dir.join(PACK_DIR).join(GRAPH_FILE)).unwrap();
}

fn repo_on(store: PackStore, tip: ObjectId) -> Repository {
    let mut repo = Repository::init_with("bench", Box::new(store));
    repo.set_branch("main", tip).unwrap();
    repo
}

/// Builds an n-commit cited history on a pack store: every commit edits
/// one of 8 rotating source files, every 25th also changes the tracked
/// file's citation — so a path-limited audit scan has real skips to win
/// on. Maintenance runs at the end (packs + commit-graph + changed-path
/// Bloom filters). Returns the repo, its directory and its tip.
fn cited_history(tag: &str, commits: usize) -> (citekit::CitedRepo, PathBuf, ObjectId) {
    let dir = temp_dir(tag);
    let store = PackStore::open(&dir).unwrap();
    let mut cited =
        citekit::CitedRepo::init_with_store("bench", "Owner", "https://x/bench", Box::new(store));
    let tracked = gitlite::path("src/f0.rs");
    for i in 0..commits {
        let f = gitlite::path(&format!("src/f{}.rs", i % 8));
        cited
            .write_file(&f, format!("content {i}\n").into_bytes())
            .unwrap();
        if i % 25 == 0 {
            let c = citekit::Citation::builder(format!("c{i}"), "Owner").build();
            if i == 0 {
                cited.add_cite(&tracked, c).unwrap();
            } else {
                cited.modify_cite(&tracked, c).unwrap();
            }
        }
        cited
            .commit(
                Signature::new("bench", "b@x", i as i64 + 1),
                format!("c{i}"),
            )
            .unwrap();
    }
    let tip = cited.repo().head_commit().unwrap();
    let roots: Vec<ObjectId> = cited.repo().branches().map(|(_, t)| t).collect();
    cited
        .repo_mut()
        .odb_mut()
        .maintain(&roots)
        .expect("pack store supports maintenance")
        .expect("gc succeeds");
    (cited, dir, tip)
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("history_walk");

    // ----- deep linear history: log ------------------------------------
    for commits in [1_000usize, 10_000] {
        let (builder, tip, root) = linear(commits);
        let (graph_store, decode_store) = packed_pair(&format!("lin{commits}"), &builder);
        let graph_repo = repo_on(graph_store, tip);
        let decode_repo = repo_on(decode_store, tip);
        // Sanity: identical answers before measuring.
        assert_eq!(graph_repo.log(tip).unwrap(), decode_repo.log(tip).unwrap());

        g.bench_with_input(BenchmarkId::new("log_graph", commits), &commits, |b, _| {
            b.iter(|| criterion::black_box(graph_repo.log(tip).unwrap()))
        });
        g.bench_with_input(BenchmarkId::new("log_decode", commits), &commits, |b, _| {
            b.iter(|| criterion::black_box(decode_repo.log(tip).unwrap()))
        });

        // merge_base across the full depth: tip vs root on the linear
        // chain (the ancestor-containment fast path for decode, a
        // two-lookup pop for the graph).
        g.bench_with_input(
            BenchmarkId::new("merge_base_linear_graph", commits),
            &commits,
            |b, _| {
                b.iter(|| criterion::black_box(merge_base(graph_repo.odb(), tip, root).unwrap()))
            },
        );
        g.bench_with_input(
            BenchmarkId::new("merge_base_linear_decode", commits),
            &commits,
            |b, _| {
                b.iter(|| criterion::black_box(merge_base(decode_repo.odb(), tip, root).unwrap()))
            },
        );
    }

    // ----- wide merge-heavy history: merge_base ------------------------
    for rounds in [100usize, 1_000] {
        let (builder, tip_a, tip_b) = merge_heavy(rounds);
        let commits = builder.objects.len() - 1;
        let (graph_store, decode_store) = packed_pair(&format!("mh{rounds}"), &builder);
        assert_eq!(
            merge_base(&graph_store, tip_a, tip_b).unwrap(),
            merge_base(&decode_store, tip_a, tip_b).unwrap()
        );
        eprintln!("merge_heavy/{rounds}: {commits} commits");

        g.bench_with_input(
            BenchmarkId::new("merge_base_graph", rounds),
            &rounds,
            |b, _| b.iter(|| criterion::black_box(merge_base(&graph_store, tip_a, tip_b).unwrap())),
        );
        g.bench_with_input(
            BenchmarkId::new("merge_base_decode", rounds),
            &rounds,
            |b, _| {
                b.iter(|| criterion::black_box(merge_base(&decode_store, tip_a, tip_b).unwrap()))
            },
        );
    }

    // ----- path-limited citation_log: Bloom filters vs exact diffs -----
    // Both repos hold identical history (2000 commits, the citation
    // changing every 25th); `graph` keeps the Bloom-carrying sidecar,
    // `decode` had it deleted, so every version pays an exact tree diff.
    {
        let commits = 2_000usize;
        let tracked = gitlite::path("src/f0.rs");
        let (bloom_repo, _bloom_dir, _tip) = cited_history("cl-graph", commits);

        let (built, decode_dir, decode_tip) = cited_history("cl-decode", commits);
        drop(built);
        strip_graph(&decode_dir);
        let store = PackStore::open(&decode_dir).unwrap();
        assert!(store.commit_graph().is_none());
        let mut decode_repo = citekit::CitedRepo::init_with_store(
            "bench",
            "Owner",
            "https://x/bench",
            Box::new(store),
        );
        decode_repo
            .repo_mut()
            .set_branch("main", decode_tip)
            .unwrap();
        decode_repo.repo_mut().checkout_branch("main").unwrap();

        // The filtered walk must be event-identical to the exact one.
        let events = bloom_repo.citation_log(&tracked).unwrap();
        assert_eq!(events, decode_repo.citation_log(&tracked).unwrap());
        eprintln!("citation_log/{commits}: {} events", events.len());

        g.bench_with_input(
            BenchmarkId::new("citation_log_graph", commits),
            &commits,
            |b, _| b.iter(|| criterion::black_box(bloom_repo.citation_log(&tracked).unwrap())),
        );
        g.bench_with_input(
            BenchmarkId::new("citation_log_decode", commits),
            &commits,
            |b, _| b.iter(|| criterion::black_box(decode_repo.citation_log(&tracked).unwrap())),
        );
    }

    g.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900))
}

criterion_group! { name = benches; config = config(); targets = bench }
criterion_main!(benches);
