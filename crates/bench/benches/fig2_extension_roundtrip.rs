//! E2 bench — browser-extension popup round trips against the hub:
//! anonymous GenCite, member select, and a full add/modify/delete cycle.

use citekit::CitedRepo;
use criterion::{criterion_group, criterion_main, Criterion};
use extension::Popup;
use gitcite_bench::{citation, sig};
use gitlite::path;
use hub::{Hub, Role, Token};
use std::time::Duration;

fn platform() -> (Hub, Token, String) {
    let hub = Hub::new("https://hub.example");
    hub.register_user("owner", "The Owner").unwrap();
    hub.register_user("member", "A Member").unwrap();
    let owner = hub.login("owner").unwrap();
    let repo_id = hub.create_repo(&owner, "demo").unwrap();
    hub.add_member(&owner, &repo_id, "member", Role::Member)
        .unwrap();
    let mut local = CitedRepo::open(hub.clone_repo(&repo_id).unwrap()).unwrap();
    for i in 0..32 {
        local
            .write_file(
                &path(&format!("src/m{}/f{i}.rs", i % 4)),
                format!("// {i}\n").into_bytes(),
            )
            .unwrap();
    }
    local.add_cite(&path("src"), citation("core")).unwrap();
    local.commit(sig("owner", 100), "seed").unwrap();
    hub.push(&owner, &repo_id, "main", local.repo(), "main", false)
        .unwrap();
    let member = hub.login("member").unwrap();
    (hub, member, repo_id)
}

fn bench(c: &mut Criterion) {
    let (hub, member, repo_id) = platform();
    let mut g = c.benchmark_group("fig2_extension");

    g.bench_function("anonymous_select_generate", |b| {
        b.iter(|| {
            let mut popup = Popup::open(&hub, &repo_id, "main").unwrap();
            popup.select(&path("src/m1/f1.rs")).unwrap();
            popup.view().text_box.len()
        })
    });

    g.bench_function("gencite_api_only", |b| {
        b.iter(|| {
            hub.generate_citation(&repo_id, "main", &path("src/m2/f2.rs"))
                .unwrap()
        })
    });

    g.bench_function("member_sign_in_and_select", |b| {
        b.iter(|| {
            let mut popup = Popup::open(&hub, &repo_id, "main").unwrap();
            popup.sign_in(member.clone()).unwrap();
            popup.select(&path("src/m3/f3.rs")).unwrap();
            popup.view().buttons
        })
    });

    g.bench_function("member_add_modify_delete_cycle", |b| {
        b.iter(|| {
            let mut popup = Popup::open(&hub, &repo_id, "main").unwrap();
            popup.sign_in(member.clone()).unwrap();
            popup.select(&path("src/m0/f0.rs")).unwrap();
            popup.edit_text(citation("cycle").to_value().to_string_pretty());
            popup.add().unwrap();
            popup.edit_text(citation("cycle2").to_value().to_string_pretty());
            popup.modify().unwrap();
            popup.delete().unwrap();
        })
    });

    g.bench_function("export_bibtex", |b| {
        let mut popup = Popup::open(&hub, &repo_id, "main").unwrap();
        popup.select(&path("src/m1/f5.rs")).unwrap();
        b.iter(|| popup.export(bibformat::Format::Bibtex).unwrap())
    });

    g.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
}

criterion_group! { name = benches; config = config(); targets = bench }
criterion_main!(benches);
