//! Read-scaling bench for multi-hub replication ([`hub::repl`]): how
//! much read throughput does a fleet of follower hubs add while the
//! primary absorbs sustained write traffic?
//!
//! Shape: the bench re-executes itself as hub child processes — one
//! primary (`HUB_REPL_ROLE=primary`) and N followers
//! (`HUB_REPL_ROLE=follower`, each running a live replication engine
//! against the primary) — then, for fleets of 0, 1, 2 and 4 followers:
//!
//! 1. keeps writer clients pushing commits to the primary for the whole
//!    measurement window (every config measures *under writes*),
//! 2. points a fixed number of reader connections per serving node at
//!    the fleet's read nodes — the primary alone for fleet 0, the
//!    followers otherwise — each looping `log_page` reads of the very
//!    repository the writers are churning,
//! 3. reports aggregate served reads/s and the speedup over the lone
//!    primary.
//!
//! The contention story this measures: on the lone primary every read
//! of the churned repository queues behind the write lock each push
//! apply holds, while a follower batches many pushes into one delta
//! apply per sync round — so its readers run nearly uncontended even
//! though the same write stream lands on both sides.
//!
//! Results go to stderr as `hub_repl_*` data lines, which
//! `scripts/bench_repl.sh` folds into `BENCH_repl.json`.

use gitlite::{path, Signature};
use hub::{Follower, HubClient, SocketServer, TcpTransport};
use std::io::{BufRead, BufReader, Read, Write};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Follower counts measured, in order. The first entry is the lone
/// primary baseline.
const FLEETS: [usize; 4] = [0, 1, 2, 4];
const READERS_PER_NODE: usize = 4;
const WRITERS: usize = 2;
/// Measurement window per fleet configuration.
const WINDOW: Duration = Duration::from_millis(1500);
/// Commits per push; each rewrites a blob of [`BLOB_BYTES`].
const COMMITS_PER_PUSH: usize = 3;
const BLOB_BYTES: usize = 4096;
/// The replicated repository everyone reads and writes.
const REPO_ID: &str = "ann/churn";

fn sig(t: i64) -> Signature {
    Signature::new("bench", "b@x", t)
}

// ---------------------------------------------------------------------
// Hub children
// ---------------------------------------------------------------------

/// The primary child: seed one user and one repository, serve, print
/// the bound address, exit when the parent hangs up stdin.
fn run_primary() -> ! {
    let hub = Arc::new(hub::Hub::new("https://primary.local"));
    hub.register_user("ann", "Ann").unwrap();
    let token = hub.login("ann").unwrap();
    let repo_id = hub.create_repo(&token, "churn").unwrap();
    assert_eq!(repo_id, REPO_ID);
    let server = SocketServer::bind(Arc::clone(&hub), "127.0.0.1:0").expect("bind primary");
    println!("ADDR {}", server.local_addr());
    let _ = std::io::stdout().flush();
    std::thread::spawn(|| {
        let mut sink = Vec::new();
        let _ = std::io::stdin().read_to_end(&mut sink);
        std::process::exit(0);
    });
    server.join();
    std::process::exit(0);
}

/// A follower child: replicate `GITCITE_REPL_PRIMARY` continuously,
/// serve reads, print the bound address, exit on stdin hang-up.
fn run_follower() -> ! {
    let primary = std::env::var("GITCITE_REPL_PRIMARY").expect("primary address");
    let hub = Arc::new(hub::Hub::new("https://follower.local"));
    let transport = TcpTransport::connect(&*primary).expect("dial primary");
    let engine = Follower::new(Arc::clone(&hub), transport, primary, 30)
        .with_interval(Duration::from_millis(100))
        .spawn();
    let server = SocketServer::bind(Arc::clone(&hub), "127.0.0.1:0").expect("bind follower");
    println!("ADDR {}", server.local_addr());
    let _ = std::io::stdout().flush();
    std::thread::spawn(|| {
        let mut sink = Vec::new();
        let _ = std::io::stdin().read_to_end(&mut sink);
        std::process::exit(0);
    });
    server.join();
    drop(engine);
    std::process::exit(0);
}

/// Kills the child when dropped, success or panic.
struct HubChild(Child);

impl Drop for HubChild {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

fn spawn_child(role: &str, primary_addr: Option<&str>) -> (HubChild, String) {
    let exe = std::env::current_exe().expect("own binary path");
    let mut command = Command::new(exe);
    command
        .env("HUB_REPL_ROLE", role)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped());
    if let Some(addr) = primary_addr {
        command.env("GITCITE_REPL_PRIMARY", addr);
    }
    let mut child = command.spawn().expect("spawn hub child");
    let stdout = child.stdout.take().expect("child stdout");
    let mut line = String::new();
    BufReader::new(stdout)
        .read_line(&mut line)
        .expect("read child address");
    let addr = line
        .trim()
        .strip_prefix("ADDR ")
        .expect("address line")
        .to_owned();
    (HubChild(child), addr)
}

/// Blocks until a follower has completed its first sync round (its
/// replicated reads stop redirecting).
fn await_synced(addr: &str) {
    let deadline = Instant::now() + Duration::from_secs(20);
    let client = HubClient::connect(addr).expect("dial follower");
    loop {
        if client.log_page(REPO_ID, "main", None, Some(1)).is_ok() {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "follower at {addr} never finished its first sync"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}

// ---------------------------------------------------------------------
// Load
// ---------------------------------------------------------------------

/// One writer: pushes [`COMMITS_PER_PUSH`]-commit batches to its own
/// branch of the shared repository until `stop` flips. Every push
/// applies under the repository's write lock on the primary — the
/// contention the fleet is supposed to relieve.
fn write_load(
    addr: String,
    config: usize,
    id: usize,
    stop: Arc<AtomicBool>,
    pushes: Arc<AtomicU64>,
) {
    let client = HubClient::connect(&addr).expect("dial primary");
    let token = client.login("ann").expect("login ann");
    let mut local = client.clone_repo(REPO_ID).expect("clone churn repo");
    // A branch per (configuration, writer): the first push creates it,
    // every later one fast-forwards, so the write stream never stalls
    // on a non-fast-forward refusal.
    let branch = format!("c{config}w{id}");
    let mut rev = 0u64;
    while !stop.load(Ordering::SeqCst) {
        for _ in 0..COMMITS_PER_PUSH {
            rev += 1;
            let blob = format!("writer {id} rev {rev}\n").repeat(BLOB_BYTES / 20);
            local
                .worktree_mut()
                .write(&path("churn.txt"), blob.into_bytes())
                .unwrap();
            local
                .commit(sig(1_000 + rev as i64), format!("w{id} r{rev}"))
                .unwrap();
        }
        if client
            .push(&token, REPO_ID, &branch, &local, "main", false)
            .is_ok()
        {
            pushes.fetch_add(1, Ordering::SeqCst);
        }
    }
}

/// One reader: loops `log_page` reads of the churned repository against
/// one node until `stop` flips, counting successes.
fn read_load(addr: String, stop: Arc<AtomicBool>, reads: Arc<AtomicU64>) {
    let client = HubClient::connect(&addr).expect("dial read node");
    while !stop.load(Ordering::SeqCst) {
        if client.log_page(REPO_ID, "main", None, Some(5)).is_ok() {
            reads.fetch_add(1, Ordering::SeqCst);
        }
    }
}

/// Measures one fleet configuration: aggregate reads served across
/// `read_nodes` over [`WINDOW`] while writers hammer the primary.
/// Returns (reads/s, writer pushes completed).
fn measure(primary_addr: &str, config: usize, read_nodes: &[String]) -> (f64, u64) {
    let stop = Arc::new(AtomicBool::new(false));
    let pushes = Arc::new(AtomicU64::new(0));
    let reads = Arc::new(AtomicU64::new(0));

    let writers: Vec<_> = (0..WRITERS)
        .map(|id| {
            let addr = primary_addr.to_owned();
            let (stop, pushes) = (Arc::clone(&stop), Arc::clone(&pushes));
            std::thread::spawn(move || write_load(addr, config, id, stop, pushes))
        })
        .collect();
    // Let the write stream reach steady state before measuring reads.
    std::thread::sleep(Duration::from_millis(200));

    let started = Instant::now();
    let readers: Vec<_> = read_nodes
        .iter()
        .flat_map(|node| (0..READERS_PER_NODE).map(move |_| node.clone()))
        .map(|addr| {
            let (stop, reads) = (Arc::clone(&stop), Arc::clone(&reads));
            std::thread::spawn(move || read_load(addr, stop, reads))
        })
        .collect();
    std::thread::sleep(WINDOW);
    stop.store(true, Ordering::SeqCst);
    for reader in readers {
        let _ = reader.join();
    }
    let wall = started.elapsed();
    for writer in writers {
        let _ = writer.join();
    }
    (
        reads.load(Ordering::SeqCst) as f64 / wall.as_secs_f64(),
        pushes.load(Ordering::SeqCst),
    )
}

// ---------------------------------------------------------------------
// Main
// ---------------------------------------------------------------------

fn main() {
    match std::env::var("HUB_REPL_ROLE").as_deref() {
        Ok("primary") => run_primary(),
        Ok("follower") => run_follower(),
        _ => {}
    }

    let mut baseline = None;
    for (config, followers) in FLEETS.into_iter().enumerate() {
        // A fresh primary and fresh followers per configuration, so
        // every fleet size measures the identical workload from the
        // identical starting state (nothing accumulates between runs).
        let (_primary, primary_addr) = spawn_child("primary", None);
        let fleet: Vec<(HubChild, String)> = (0..followers)
            .map(|_| spawn_child("follower", Some(&primary_addr)))
            .collect();
        for (_, addr) in &fleet {
            await_synced(addr);
        }
        let read_nodes: Vec<String> = if followers == 0 {
            vec![primary_addr.clone()]
        } else {
            fleet.iter().map(|(_, addr)| addr.clone()).collect()
        };

        let (reads_per_s, pushes) = measure(&primary_addr, config, &read_nodes);
        let speedup = match baseline {
            None => {
                baseline = Some(reads_per_s);
                1.0
            }
            Some(base) => reads_per_s / base,
        };
        assert!(pushes > 0, "no sustained writes landed during the window");
        eprintln!(
            "hub_repl_scaling followers={followers} read_nodes={} readers={} reads_per_s={reads_per_s:.0} \
             pushes={pushes} speedup={speedup:.2}",
            read_nodes.len(),
            read_nodes.len() * READERS_PER_NODE,
        );
        if followers == *FLEETS.last().unwrap() {
            assert!(
                speedup >= 2.5,
                "{followers} followers served only {speedup:.2}x the lone primary's reads"
            );
        }
    }
}
