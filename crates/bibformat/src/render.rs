//! The four output renderers: BibTeX, CFF, plain text and JSON.
//!
//! The paper's popup produces a citation "which can then be copy-pasted to
//! their local bibliography manager" (§3); these renderers produce the
//! formats such managers actually ingest. CFF follows the Citation File
//! Format the paper cites ([9, 10]).

use crate::escape::{bibtex as esc, bibtex_key, yaml};
use citekit::Citation;
use std::fmt::Write;

/// The supported output formats.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Format {
    /// A `@software{...}` BibTeX entry.
    #[default]
    Bibtex,
    /// A Citation File Format (`CITATION.cff`) document.
    Cff,
    /// A one-paragraph APA-style plain-text citation.
    Plain,
    /// The raw JSON record (Listing 1 shape), pretty-printed.
    Json,
}

impl Format {
    /// Parses a format name as used by the CLI (`--format bibtex`).
    pub fn parse(s: &str) -> Option<Format> {
        match s.to_ascii_lowercase().as_str() {
            "bibtex" | "bib" => Some(Format::Bibtex),
            "cff" => Some(Format::Cff),
            "plain" | "text" | "apa" => Some(Format::Plain),
            "json" => Some(Format::Json),
            _ => None,
        }
    }
}

/// Renders a citation in the requested format.
pub fn render(citation: &Citation, format: Format) -> String {
    match format {
        Format::Bibtex => render_bibtex(citation),
        Format::Cff => render_cff(citation),
        Format::Plain => render_plain(citation),
        Format::Json => {
            let mut s = citation.to_value().to_string_pretty();
            s.push('\n');
            s
        }
    }
}

/// The year (`"2018"`) out of an ISO date, or empty.
fn year_of(date: &str) -> &str {
    if date.len() >= 4 && date.as_bytes()[..4].iter().all(u8::is_ascii_digit) {
        &date[..4]
    } else {
        ""
    }
}

/// The month number (`"09"`) out of an ISO date, or empty.
fn month_of(date: &str) -> &str {
    if date.len() >= 7 && date.as_bytes()[5..7].iter().all(u8::is_ascii_digit) {
        &date[5..7]
    } else {
        ""
    }
}

fn render_bibtex(c: &Citation) -> String {
    let year = year_of(&c.committed_date);
    let key = bibtex_key(&c.owner, year, &c.repo_name);
    let mut out = String::new();
    let _ = writeln!(out, "@software{{{key},");
    if !c.author_list.is_empty() {
        let authors = c
            .author_list
            .iter()
            .map(|a| esc(a))
            .collect::<Vec<_>>()
            .join(" and ");
        let _ = writeln!(out, "  author  = {{{authors}}},");
    }
    let _ = writeln!(out, "  title   = {{{}}},", esc(&c.repo_name));
    if !year.is_empty() {
        let _ = writeln!(out, "  year    = {{{year}}},");
    }
    let month = month_of(&c.committed_date);
    if !month.is_empty() {
        let _ = writeln!(out, "  month   = {{{month}}},");
    }
    if let Some(v) = &c.version {
        let _ = writeln!(out, "  version = {{{}}},", esc(v));
    }
    if !c.commit_id.is_empty() {
        let _ = writeln!(out, "  note    = {{commit {}}},", esc(&c.commit_id));
    }
    if let Some(doi) = &c.doi {
        let _ = writeln!(out, "  doi     = {{{}}},", esc(doi));
    }
    if !c.url.is_empty() {
        let _ = writeln!(out, "  url     = {{{}}},", c.url);
    }
    out.push_str("}\n");
    out
}

fn render_cff(c: &Citation) -> String {
    let mut out = String::new();
    out.push_str("cff-version: 1.2.0\n");
    out.push_str("message: If you use this software, please cite it as below.\n");
    let _ = writeln!(out, "title: {}", yaml(&c.repo_name));
    if !c.author_list.is_empty() {
        out.push_str("authors:\n");
        for a in &c.author_list {
            let _ = writeln!(out, "  - name: {}", yaml(a));
        }
    }
    if let Some(v) = &c.version {
        let _ = writeln!(out, "version: {}", yaml(v));
    }
    if !c.commit_id.is_empty() {
        let _ = writeln!(out, "commit: {}", yaml(&c.commit_id));
    }
    if c.committed_date.len() >= 10 {
        let _ = writeln!(out, "date-released: {}", yaml(&c.committed_date[..10]));
    }
    if let Some(doi) = &c.doi {
        let _ = writeln!(out, "doi: {}", yaml(doi));
    }
    if !c.url.is_empty() {
        let _ = writeln!(out, "repository-code: {}", yaml(&c.url));
    }
    if let Some(license) = &c.license {
        let _ = writeln!(out, "license: {}", yaml(license));
    }
    out
}

fn render_plain(c: &Citation) -> String {
    let mut out = String::new();
    if !c.author_list.is_empty() {
        out.push_str(&c.author_list.join(", "));
    } else if !c.owner.is_empty() {
        out.push_str(&c.owner);
    }
    let year = year_of(&c.committed_date);
    if !year.is_empty() {
        let _ = write!(out, " ({year}).");
    } else if !out.is_empty() {
        out.push('.');
    }
    let _ = write!(out, " {}", c.repo_name);
    match (&c.version, c.commit_id.is_empty()) {
        (Some(v), false) => {
            let _ = write!(out, " (version {v}, commit {})", c.commit_id);
        }
        (Some(v), true) => {
            let _ = write!(out, " (version {v})");
        }
        (None, false) => {
            let _ = write!(out, " (commit {})", c.commit_id);
        }
        (None, true) => {}
    }
    out.push_str(" [Computer software].");
    if let Some(doi) = &c.doi {
        let _ = write!(out, " https://doi.org/{doi}.");
    }
    if !c.url.is_empty() {
        let _ = write!(out, " {}", c.url);
    }
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn listing1_root() -> Citation {
        Citation::builder("Data_citation_demo", "Yinjun Wu")
            .commit("bbd248a", "2018-09-04T02:35:20Z")
            .url("https://github.com/thuwuyinjun/Data_citation_demo")
            .author("Yinjun Wu")
            .build()
    }

    #[test]
    fn format_parse() {
        assert_eq!(Format::parse("bibtex"), Some(Format::Bibtex));
        assert_eq!(Format::parse("BIB"), Some(Format::Bibtex));
        assert_eq!(Format::parse("cff"), Some(Format::Cff));
        assert_eq!(Format::parse("apa"), Some(Format::Plain));
        assert_eq!(Format::parse("json"), Some(Format::Json));
        assert_eq!(Format::parse("docx"), None);
    }

    #[test]
    fn bibtex_shape() {
        let out = render(&listing1_root(), Format::Bibtex);
        assert!(
            out.starts_with("@software{wu2018datacitationdemo,\n"),
            "{out}"
        );
        assert!(out.contains("author  = {Yinjun Wu}"));
        assert!(out.contains("title   = {Data\\_citation\\_demo}"));
        assert!(out.contains("year    = {2018}"));
        assert!(out.contains("month   = {09}"));
        assert!(out.contains("note    = {commit bbd248a}"));
        assert!(out.contains("url     = {https://github.com/thuwuyinjun/Data_citation_demo}"));
        assert!(out.trim_end().ends_with('}'));
    }

    #[test]
    fn bibtex_with_doi_version_multiauthor() {
        let c = Citation::builder("proj", "Own Er")
            .commit("abc1234", "2020-01-02T00:00:00Z")
            .authors(["Alice A", "Bob B"])
            .doi("10.5281/zenodo.7")
            .version("v2.0")
            .build();
        let out = render(&c, Format::Bibtex);
        assert!(out.contains("author  = {Alice A and Bob B}"));
        assert!(out.contains("doi     = {10.5281/zenodo.7}"));
        assert!(out.contains("version = {v2.0}"));
    }

    #[test]
    fn cff_shape() {
        let c = Citation::builder("proj", "o")
            .commit("abc1234", "2020-01-02T03:04:05Z")
            .url("https://x/proj")
            .authors(["Alice A"])
            .doi("10.5281/zenodo.7")
            .version("v1")
            .license("MIT")
            .build();
        let out = render(&c, Format::Cff);
        assert!(out.starts_with("cff-version: 1.2.0\n"));
        assert!(out.contains("title: proj\n"));
        assert!(out.contains("  - name: Alice A\n"));
        assert!(out.contains("version: v1\n"));
        assert!(out.contains("commit: abc1234\n"));
        assert!(out.contains("date-released: 2020-01-02\n"));
        assert!(out.contains("doi: 10.5281/zenodo.7\n"));
        assert!(out.contains("repository-code: \"https://x/proj\"\n"));
        assert!(out.contains("license: MIT\n"));
    }

    #[test]
    fn plain_shape() {
        let out = render(&listing1_root(), Format::Plain);
        assert_eq!(
            out,
            "Yinjun Wu (2018). Data_citation_demo (commit bbd248a) [Computer software]. https://github.com/thuwuyinjun/Data_citation_demo\n"
        );
    }

    #[test]
    fn plain_with_doi_and_version() {
        let c = Citation::builder("p", "o")
            .commit("abc1234", "2021-06-01T00:00:00Z")
            .authors(["A"])
            .version("v3")
            .doi("10.1/x")
            .build();
        let out = render(&c, Format::Plain);
        assert!(out.contains("(version v3, commit abc1234)"));
        assert!(out.contains("https://doi.org/10.1/x."));
    }

    #[test]
    fn json_round_trips() {
        let c = listing1_root();
        let out = render(&c, Format::Json);
        let v = sjson::parse(&out).unwrap();
        assert_eq!(Citation::from_value(&v).unwrap(), c);
    }

    #[test]
    fn degenerate_citation_renders_without_panic() {
        let c = Citation::default();
        for f in [Format::Bibtex, Format::Cff, Format::Plain, Format::Json] {
            let out = render(&c, f);
            assert!(!out.is_empty());
        }
    }
}
