//! # bibformat — bibliography rendering for GitCite citations
//!
//! The browser extension's generated citation "can then be copy-pasted to
//! their local bibliography manager" (paper §3). This crate renders
//! [`citekit::Citation`] records in the formats those managers consume:
//!
//! * [`Format::Bibtex`] — a `@software{...}` entry,
//! * [`Format::Cff`] — the Citation File Format the paper cites
//!   (Druskat et al., refs [9, 10]),
//! * [`Format::Plain`] — APA-style text,
//! * [`Format::Json`] — the raw Listing-1-shaped record.
//!
//! ```
//! use citekit::Citation;
//! use bibformat::{render, Format};
//!
//! let c = Citation::builder("Data_citation_demo", "Yinjun Wu")
//!     .commit("bbd248a", "2018-09-04T02:35:20Z")
//!     .url("https://github.com/thuwuyinjun/Data_citation_demo")
//!     .author("Yinjun Wu")
//!     .build();
//! let bib = render(&c, Format::Bibtex);
//! assert!(bib.starts_with("@software{wu2018datacitationdemo,"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod escape;
mod render;

pub use escape::{bibtex as escape_bibtex, bibtex_key, yaml as escape_yaml};
pub use render::{render, Format};
