//! Escaping helpers for the output formats.

/// Escapes a string for use inside a BibTeX field value (within braces).
///
/// The BibTeX special characters `\ { } % & $ # _ ~ ^` are escaped; other
/// characters pass through (modern BibTeX/biber handle UTF-8).
pub fn bibtex(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\textbackslash{}"),
            '{' => out.push_str("\\{"),
            '}' => out.push_str("\\}"),
            '%' => out.push_str("\\%"),
            '&' => out.push_str("\\&"),
            '$' => out.push_str("\\$"),
            '#' => out.push_str("\\#"),
            '_' => out.push_str("\\_"),
            '~' => out.push_str("\\textasciitilde{}"),
            '^' => out.push_str("\\textasciicircum{}"),
            c => out.push(c),
        }
    }
    out
}

/// Quotes a string as a YAML scalar when needed (CFF files are YAML).
///
/// Plain scalars are returned as-is; anything with YAML-significant
/// characters, leading/trailing space, or an empty string gets
/// double-quoted with `"` and `\` escaped.
pub fn yaml(s: &str) -> String {
    let needs_quoting = s.is_empty()
        || s.starts_with(char::is_whitespace)
        || s.ends_with(char::is_whitespace)
        || s.chars()
            .any(|c| ":#{}[]&*!|>'\"%@`,".contains(c) || c == '\n')
        || matches!(s, "true" | "false" | "null" | "yes" | "no" | "~")
        || s.parse::<f64>().is_ok();
    if needs_quoting {
        let mut out = String::with_capacity(s.len() + 2);
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                c => out.push(c),
            }
        }
        out.push('"');
        out
    } else {
        s.to_owned()
    }
}

/// Builds a BibTeX citation key: lowercase alphanumerics of the inputs
/// joined, e.g. `wu2018datacitationdemo`.
pub fn bibtex_key(owner: &str, year: &str, repo: &str) -> String {
    let clean = |s: &str| -> String {
        s.chars()
            .filter(|c| c.is_ascii_alphanumeric())
            .map(|c| c.to_ascii_lowercase())
            .collect()
    };
    let owner_last = owner.split_whitespace().last().unwrap_or(owner);
    let mut key = format!("{}{}{}", clean(owner_last), clean(year), clean(repo));
    if key.is_empty() {
        key = "software".to_owned();
    }
    key
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bibtex_specials() {
        assert_eq!(bibtex("a_b & c%"), "a\\_b \\& c\\%");
        assert_eq!(bibtex("{x}"), "\\{x\\}");
        assert_eq!(
            bibtex("50$ #1 ~x ^y"),
            "50\\$ \\#1 \\textasciitilde{}x \\textasciicircum{}y"
        );
        assert_eq!(bibtex("back\\slash"), "back\\textbackslash{}slash");
        assert_eq!(bibtex("plain text é"), "plain text é");
    }

    #[test]
    fn yaml_plain_passthrough() {
        assert_eq!(yaml("Data_citation_demo"), "Data_citation_demo");
        assert_eq!(yaml("Yinjun Wu"), "Yinjun Wu");
    }

    #[test]
    fn yaml_quoting() {
        assert_eq!(yaml("a: b"), "\"a: b\"");
        assert_eq!(yaml(""), "\"\"");
        assert_eq!(yaml(" padded"), "\" padded\"");
        assert_eq!(yaml("true"), "\"true\"");
        assert_eq!(yaml("3.14"), "\"3.14\"");
        assert_eq!(yaml("has \"quotes\""), "\"has \\\"quotes\\\"\"");
        assert_eq!(yaml("line\nbreak"), "\"line\\nbreak\"");
    }

    #[test]
    fn key_generation() {
        assert_eq!(
            bibtex_key("Yinjun Wu", "2018", "Data_citation_demo"),
            "wu2018datacitationdemo"
        );
        assert_eq!(
            bibtex_key("Chen Li", "2018", "alu01-corecover"),
            "li2018alu01corecover"
        );
        assert_eq!(bibtex_key("", "", ""), "software");
    }
}
