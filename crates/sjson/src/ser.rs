//! Compact and pretty JSON serializers.

use crate::value::Value;
use std::fmt::Write;

/// Pretty-printer configuration.
#[derive(Debug, Clone)]
pub struct PrettyConfig {
    /// String prepended once per nesting level (default two spaces, the
    /// style used by Listing 1 of the paper).
    pub indent: &'static str,
    /// Put a space after `:` (default true).
    pub space_after_colon: bool,
}

impl Default for PrettyConfig {
    fn default() -> Self {
        PrettyConfig {
            indent: "  ",
            space_after_colon: true,
        }
    }
}

/// Serializes `value` with no whitespace at all.
pub fn to_string_compact(value: &Value) -> String {
    let mut out = String::new();
    write_compact(value, &mut out);
    out
}

/// Serializes `value` with newlines and indentation.
pub fn to_string_pretty(value: &Value, cfg: &PrettyConfig) -> String {
    let mut out = String::new();
    write_pretty(value, cfg, 0, &mut out);
    out
}

fn write_compact(value: &Value, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => {
            let _ = write!(out, "{n}");
        }
        Value::String(s) => write_escaped(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        Value::Object(obj) => {
            out.push('{');
            for (i, (k, v)) in obj.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(k, out);
                out.push(':');
                write_compact(v, out);
            }
            out.push('}');
        }
    }
}

fn write_pretty(value: &Value, cfg: &PrettyConfig, level: usize, out: &mut String) {
    match value {
        Value::Array(items) if !items.is_empty() => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('\n');
                push_indent(cfg, level + 1, out);
                write_pretty(item, cfg, level + 1, out);
            }
            out.push('\n');
            push_indent(cfg, level, out);
            out.push(']');
        }
        Value::Object(obj) if !obj.is_empty() => {
            out.push('{');
            for (i, (k, v)) in obj.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('\n');
                push_indent(cfg, level + 1, out);
                write_escaped(k, out);
                out.push(':');
                if cfg.space_after_colon {
                    out.push(' ');
                }
                write_pretty(v, cfg, level + 1, out);
            }
            out.push('\n');
            push_indent(cfg, level, out);
            out.push('}');
        }
        // Scalars, empty arrays and empty objects render as in compact mode.
        other => write_compact(other, out),
    }
}

fn push_indent(cfg: &PrettyConfig, level: usize, out: &mut String) {
    for _ in 0..level {
        out.push_str(cfg.indent);
    }
}

/// Writes `s` as a JSON string literal, escaping the mandatory characters.
/// Non-ASCII characters pass through verbatim (the files we write are UTF-8).
fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{0008}' => out.push_str("\\b"),
            '\u{000C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    #[test]
    fn compact_shapes() {
        let v = parse(r#"{ "a" : [ 1 , 2.5 , true , null ] , "b" : { } }"#).unwrap();
        assert_eq!(v.to_string_compact(), r#"{"a":[1,2.5,true,null],"b":{}}"#);
    }

    #[test]
    fn pretty_shapes() {
        let v = parse(r#"{"a":[1,2],"b":{},"c":{"d":null}}"#).unwrap();
        let expect =
            "{\n  \"a\": [\n    1,\n    2\n  ],\n  \"b\": {},\n  \"c\": {\n    \"d\": null\n  }\n}";
        assert_eq!(v.to_string_pretty(), expect);
    }

    #[test]
    fn escapes_round_trip() {
        let original = Value::from("a\"b\\c\nd\te\u{0}f/😀");
        let text = original.to_string_compact();
        assert_eq!(parse(&text).unwrap(), original);
        assert!(text.contains("\\u0000"));
        // Forward slash is not escaped on output.
        assert!(text.contains("f/"));
    }

    #[test]
    fn scalar_pretty_equals_compact() {
        for src in ["null", "true", "3.5", "\"x\"", "[]", "{}"] {
            let v = parse(src).unwrap();
            assert_eq!(v.to_string_pretty(), v.to_string_compact());
        }
    }

    #[test]
    fn float_round_trips_as_float() {
        let v = parse("3.0").unwrap();
        let text = v.to_string_compact();
        assert_eq!(text, "3.0");
        assert_eq!(parse(&text).unwrap().as_f64(), Some(3.0));
    }

    #[test]
    fn custom_pretty_config() {
        let v = parse(r#"{"a":1}"#).unwrap();
        let cfg = PrettyConfig {
            indent: "    ",
            space_after_colon: false,
        };
        assert_eq!(to_string_pretty(&v, &cfg), "{\n    \"a\":1\n}");
    }
}
