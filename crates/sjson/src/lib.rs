//! # sjson — a small, insertion-ordered JSON implementation
//!
//! `sjson` is the JSON substrate for the GitCite reproduction. The
//! `citation.cite` file that GitCite stores at the root of every project
//! version (see Listing 1 of the paper) is a JSON object mapping repository
//! paths to citation records, and two properties matter for that use case:
//!
//! 1. **Insertion order is preserved.** Citation files are rendered
//!    deterministically, entry order mirrors the order operations were
//!    applied, and diffs between versions of `citation.cite` stay minimal.
//! 2. **The pretty-printer matches the paper's rendering** (one key per
//!    line, two-space indentation), so the reproduction of Listing 1 can be
//!    compared byte-for-byte modulo whitespace.
//!
//! The crate is self-contained (no dependencies) and implements:
//!
//! * [`Value`] — the JSON data model with an insertion-ordered [`Object`],
//! * [`parse`] / [`Value::parse`] — a recursive-descent parser with precise
//!   error positions ([`ParseError`]),
//! * [`Value::to_string_compact`] / [`Value::to_string_pretty`] — compact and
//!   pretty serializers that round-trip every value.
//!
//! ```
//! use sjson::{Value, Object};
//!
//! let v = sjson::parse(r#"{"repoName": "Data_citation_demo", "stars": 42}"#).unwrap();
//! assert_eq!(v["repoName"].as_str(), Some("Data_citation_demo"));
//! assert_eq!(v["stars"].as_i64(), Some(42));
//!
//! let mut obj = Object::new();
//! obj.insert("owner", Value::from("Yinjun Wu"));
//! assert_eq!(Value::Object(obj).to_string_compact(), r#"{"owner":"Yinjun Wu"}"#);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod parse;
mod ser;
mod value;

pub use error::{ParseError, ParseErrorKind};
pub use parse::{parse, parse_with, ParseOptions};
pub use ser::{to_string_compact, to_string_pretty, PrettyConfig};
pub use value::{Number, Object, Value};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn api_surface_round_trip() {
        let src = r#"{"a": [1, 2.5, true, null], "b": {"c": "d"}}"#;
        let v = parse(src).unwrap();
        let out = v.to_string_compact();
        let v2 = parse(&out).unwrap();
        assert_eq!(v, v2);
    }
}
