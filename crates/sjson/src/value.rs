//! The JSON data model: [`Value`], [`Number`] and the insertion-ordered
//! [`Object`] map.

use std::fmt;
use std::ops::Index;

/// A JSON number.
///
/// JSON itself does not distinguish integers from floats; we keep the
/// distinction made at parse/construction time so integers (commit counts,
/// license ids such as `115490` in Figure 1) round-trip without a `.0`
/// suffix.
#[derive(Debug, Clone, Copy)]
pub enum Number {
    /// A whole number that fits in an `i64`.
    Int(i64),
    /// Any other finite number.
    Float(f64),
}

impl Number {
    /// Returns the value as `i64` when it is integral and in range.
    pub fn as_i64(self) -> Option<i64> {
        match self {
            Number::Int(i) => Some(i),
            Number::Float(f)
                if f.fract() == 0.0 && f >= i64::MIN as f64 && f <= i64::MAX as f64 =>
            {
                Some(f as i64)
            }
            Number::Float(_) => None,
        }
    }

    /// Returns the value as `f64` (always possible).
    pub fn as_f64(self) -> f64 {
        match self {
            Number::Int(i) => i as f64,
            Number::Float(f) => f,
        }
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Number::Int(a), Number::Int(b)) => a == b,
            _ => self.as_f64() == other.as_f64(),
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Number::Int(i) => write!(f, "{i}"),
            Number::Float(x) => {
                if x.fract() == 0.0 && x.is_finite() && x.abs() < 1e15 {
                    // Keep a trailing ".0" so the value re-parses as a float.
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
        }
    }
}

/// An insertion-ordered JSON object.
///
/// Lookups are linear in the number of keys, which is the right trade-off
/// here: citation records have under a dozen fields and `citation.cite`
/// files are keyed by path through [`Object::get`] only on user-facing
/// operations. (The hot path — closest-ancestor resolution — never touches
/// `sjson`; it runs on `citekit`'s own indexes.)
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Object {
    entries: Vec<(String, Value)>,
}

impl Object {
    /// Creates an empty object.
    pub fn new() -> Self {
        Object {
            entries: Vec::new(),
        }
    }

    /// Creates an empty object with room for `cap` entries.
    pub fn with_capacity(cap: usize) -> Self {
        Object {
            entries: Vec::with_capacity(cap),
        }
    }

    /// Number of key/value entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the object has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Inserts `value` under `key`.
    ///
    /// If the key already exists its value is replaced **in place** (the
    /// entry keeps its original position); otherwise the entry is appended.
    /// Returns the previous value if any.
    pub fn insert(&mut self, key: impl Into<String>, value: impl Into<Value>) -> Option<Value> {
        let key = key.into();
        let value = value.into();
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    /// Looks up a key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Looks up a key, mutably.
    pub fn get_mut(&mut self, key: &str) -> Option<&mut Value> {
        self.entries
            .iter_mut()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// True when the key is present.
    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Removes a key, preserving the order of the remaining entries.
    pub fn remove(&mut self, key: &str) -> Option<Value> {
        let idx = self.entries.iter().position(|(k, _)| k == key)?;
        Some(self.entries.remove(idx).1)
    }

    /// Iterates entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Iterates entries mutably in insertion order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (&str, &mut Value)> {
        self.entries.iter_mut().map(|(k, v)| (k.as_str(), v))
    }

    /// Iterates keys in insertion order.
    pub fn keys(&self) -> impl Iterator<Item = &str> {
        self.entries.iter().map(|(k, _)| k.as_str())
    }

    /// Iterates values in insertion order.
    pub fn values(&self) -> impl Iterator<Item = &Value> {
        self.entries.iter().map(|(_, v)| v)
    }

    /// Sorts entries by key (used to canonicalize citation files).
    pub fn sort_keys(&mut self) {
        self.entries.sort_by(|(a, _), (b, _)| a.cmp(b));
    }

    /// Removes all entries for which `pred` returns false.
    pub fn retain(&mut self, mut pred: impl FnMut(&str, &Value) -> bool) {
        self.entries.retain(|(k, v)| pred(k, v));
    }
}

impl FromIterator<(String, Value)> for Object {
    fn from_iter<T: IntoIterator<Item = (String, Value)>>(iter: T) -> Self {
        let mut obj = Object::new();
        for (k, v) in iter {
            obj.insert(k, v);
        }
        obj
    }
}

impl IntoIterator for Object {
    type Item = (String, Value);
    type IntoIter = std::vec::IntoIter<(String, Value)>;
    fn into_iter(self) -> Self::IntoIter {
        self.entries.into_iter()
    }
}

/// A JSON value.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// `null`
    #[default]
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number (see [`Number`]).
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object with insertion-ordered keys.
    Object(Object),
}

impl Value {
    /// Parses a JSON document (convenience wrapper over [`crate::parse`]).
    pub fn parse(src: &str) -> Result<Value, crate::ParseError> {
        crate::parse(src)
    }

    /// Serializes without any whitespace.
    pub fn to_string_compact(&self) -> String {
        crate::to_string_compact(self)
    }

    /// Serializes with the default pretty configuration (two-space indent).
    pub fn to_string_pretty(&self) -> String {
        crate::to_string_pretty(self, &crate::PrettyConfig::default())
    }

    /// Returns the string content if this is `Value::String`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the boolean if this is `Value::Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns the integer value if this is an integral number.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// Returns the numeric value as `f64` if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// Returns the array if this is `Value::Array`.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Returns the object if this is `Value::Object`.
    pub fn as_object(&self) -> Option<&Object> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Returns the object mutably if this is `Value::Object`.
    pub fn as_object_mut(&mut self) -> Option<&mut Object> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// True when the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Object field access that tolerates non-objects and missing keys by
    /// returning `None`.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|o| o.get(key))
    }
}

/// Shared `null` used by the panicking-free `Index` impl below.
static NULL: Value = Value::Null;

impl Index<&str> for Value {
    type Output = Value;

    /// Indexing a non-object or a missing key yields `Value::Null` rather
    /// than panicking, mirroring the ergonomics of `serde_json`.
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl Index<usize> for Value {
    type Output = Value;

    fn index(&self, idx: usize) -> &Value {
        self.as_array().and_then(|a| a.get(idx)).unwrap_or(&NULL)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Number(Number::Int(i))
    }
}

impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Number(Number::Int(i64::from(i)))
    }
}

impl From<u32> for Value {
    fn from(i: u32) -> Self {
        Value::Number(Number::Int(i64::from(i)))
    }
}

impl From<usize> for Value {
    fn from(i: usize) -> Self {
        match i64::try_from(i) {
            Ok(v) => Value::Number(Number::Int(v)),
            Err(_) => Value::Number(Number::Float(i as f64)),
        }
    }
}

impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::Number(Number::Float(f))
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::String(s.to_owned())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::String(s)
    }
}

impl From<Object> for Value {
    fn from(o: Object) -> Self {
        Value::Object(o)
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Self {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_string_compact())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_preserves_insertion_order() {
        let mut o = Object::new();
        o.insert("z", 1i64);
        o.insert("a", 2i64);
        o.insert("m", 3i64);
        let keys: Vec<_> = o.keys().collect();
        assert_eq!(keys, vec!["z", "a", "m"]);
    }

    #[test]
    fn object_insert_replaces_in_place() {
        let mut o = Object::new();
        o.insert("a", 1i64);
        o.insert("b", 2i64);
        let prev = o.insert("a", 10i64);
        assert_eq!(prev, Some(Value::from(1i64)));
        let keys: Vec<_> = o.keys().collect();
        assert_eq!(keys, vec!["a", "b"]);
        assert_eq!(o.get("a").unwrap().as_i64(), Some(10));
    }

    #[test]
    fn object_remove_preserves_order() {
        let mut o = Object::new();
        o.insert("a", 1i64);
        o.insert("b", 2i64);
        o.insert("c", 3i64);
        assert_eq!(o.remove("b"), Some(Value::from(2i64)));
        assert_eq!(o.remove("b"), None);
        let keys: Vec<_> = o.keys().collect();
        assert_eq!(keys, vec!["a", "c"]);
    }

    #[test]
    fn object_sort_keys() {
        let mut o = Object::new();
        o.insert("z", 1i64);
        o.insert("a", 2i64);
        o.sort_keys();
        let keys: Vec<_> = o.keys().collect();
        assert_eq!(keys, vec!["a", "z"]);
    }

    #[test]
    fn object_retain() {
        let mut o = Object::new();
        o.insert("a", 1i64);
        o.insert("b", 2i64);
        o.insert("c", 3i64);
        o.retain(|_, v| v.as_i64().unwrap() % 2 == 1);
        let keys: Vec<_> = o.keys().collect();
        assert_eq!(keys, vec!["a", "c"]);
    }

    #[test]
    fn number_int_float_equality() {
        assert_eq!(Number::Int(3), Number::Float(3.0));
        assert_ne!(Number::Int(3), Number::Float(3.5));
        assert_eq!(Number::Int(3).as_i64(), Some(3));
        assert_eq!(Number::Float(3.5).as_i64(), None);
        assert_eq!(Number::Float(4.0).as_i64(), Some(4));
    }

    #[test]
    fn number_display_keeps_float_suffix() {
        assert_eq!(Number::Int(5).to_string(), "5");
        assert_eq!(Number::Float(5.0).to_string(), "5.0");
        assert_eq!(Number::Float(5.25).to_string(), "5.25");
    }

    #[test]
    fn index_missing_returns_null() {
        let v = Value::parse(r#"{"a": [10]}"#).unwrap();
        assert!(v["missing"].is_null());
        assert!(v["a"][3].is_null());
        assert_eq!(v["a"][0].as_i64(), Some(10));
        assert!(Value::Null["x"].is_null());
    }

    #[test]
    fn from_impls() {
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from(3i32).as_i64(), Some(3));
        assert_eq!(Value::from(3u32).as_i64(), Some(3));
        assert_eq!(Value::from(3usize).as_i64(), Some(3));
        assert_eq!(Value::from("x").as_str(), Some("x"));
        let arr = Value::from(vec!["a", "b"]);
        assert_eq!(arr.as_array().unwrap().len(), 2);
    }
}
