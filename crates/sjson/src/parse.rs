//! Recursive-descent JSON parser.

use crate::error::{ParseError, ParseErrorKind};
use crate::value::{Number, Object, Value};

/// Knobs for [`parse_with`].
#[derive(Debug, Clone)]
pub struct ParseOptions {
    /// Maximum array/object nesting depth (default 128). Guards against
    /// stack exhaustion on adversarial inputs.
    pub max_depth: usize,
    /// When true, a repeated key within one object is an error; when false
    /// (the default, matching browser JSON) the last occurrence wins.
    pub reject_duplicate_keys: bool,
}

impl Default for ParseOptions {
    fn default() -> Self {
        ParseOptions {
            max_depth: 128,
            reject_duplicate_keys: false,
        }
    }
}

/// Parses a complete JSON document with default options.
pub fn parse(src: &str) -> Result<Value, ParseError> {
    parse_with(src, &ParseOptions::default())
}

/// Parses a complete JSON document.
pub fn parse_with(src: &str, opts: &ParseOptions) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: src.as_bytes(),
        pos: 0,
        opts,
    };
    p.skip_ws();
    let value = p.parse_value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error(ParseErrorKind::TrailingData));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    opts: &'a ParseOptions,
}

impl<'a> Parser<'a> {
    fn error(&self, kind: ParseErrorKind) -> ParseError {
        self.error_at(kind, self.pos)
    }

    fn error_at(&self, kind: ParseErrorKind, offset: usize) -> ParseError {
        let mut line = 1;
        let mut column = 1;
        for &b in &self.bytes[..offset.min(self.bytes.len())] {
            if b == b'\n' {
                line += 1;
                column = 1;
            } else if b & 0xC0 != 0x80 {
                // Count characters, not continuation bytes.
                column += 1;
            }
        }
        ParseError {
            kind,
            line,
            column,
            offset,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.peek() {
            match b {
                b' ' | b'\t' | b'\n' | b'\r' => self.pos += 1,
                _ => break,
            }
        }
    }

    fn expect(&mut self, want: u8) -> Result<(), ParseError> {
        match self.bump() {
            Some(b) if b == want => Ok(()),
            Some(b) => {
                self.pos -= 1;
                Err(self.error(ParseErrorKind::UnexpectedChar(b as char)))
            }
            None => Err(self.error(ParseErrorKind::UnexpectedEof)),
        }
    }

    fn parse_value(&mut self, depth: usize) -> Result<Value, ParseError> {
        if depth > self.opts.max_depth {
            return Err(self.error(ParseErrorKind::TooDeep));
        }
        match self.peek() {
            None => Err(self.error(ParseErrorKind::UnexpectedEof)),
            Some(b'{') => self.parse_object(depth),
            Some(b'[') => self.parse_array(depth),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b't') | Some(b'f') | Some(b'n') => self.parse_literal(),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            Some(b) => Err(self.error(ParseErrorKind::UnexpectedChar(b as char))),
        }
    }

    fn parse_literal(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'a'..=b'z')) {
            self.pos += 1;
        }
        match &self.bytes[start..self.pos] {
            b"true" => Ok(Value::Bool(true)),
            b"false" => Ok(Value::Bool(false)),
            b"null" => Ok(Value::Null),
            _ => Err(self.error_at(ParseErrorKind::InvalidLiteral, start)),
        }
    }

    fn parse_object(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut obj = Object::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(obj));
        }
        loop {
            self.skip_ws();
            let key_offset = self.pos;
            if self.peek() != Some(b'"') {
                return Err(match self.peek() {
                    Some(b) => self.error(ParseErrorKind::UnexpectedChar(b as char)),
                    None => self.error(ParseErrorKind::UnexpectedEof),
                });
            }
            let key = self.parse_string()?;
            if self.opts.reject_duplicate_keys && obj.contains_key(&key) {
                return Err(self.error_at(ParseErrorKind::DuplicateKey(key), key_offset));
            }
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value(depth + 1)?;
            obj.insert(key, value);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Object(obj)),
                Some(b) => {
                    self.pos -= 1;
                    return Err(self.error(ParseErrorKind::UnexpectedChar(b as char)));
                }
                None => return Err(self.error(ParseErrorKind::UnexpectedEof)),
            }
        }
    }

    fn parse_array(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value(depth + 1)?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Array(items)),
                Some(b) => {
                    self.pos -= 1;
                    return Err(self.error(ParseErrorKind::UnexpectedChar(b as char)));
                }
                None => return Err(self.error(ParseErrorKind::UnexpectedEof)),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy a run of plain bytes at once.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                // Safe: the source is valid UTF-8 and we only stopped on
                // ASCII boundaries.
                out.push_str(
                    std::str::from_utf8(&self.bytes[start..self.pos]).expect("input is str"),
                );
            }
            match self.bump() {
                None => return Err(self.error(ParseErrorKind::UnterminatedString)),
                Some(b'"') => return Ok(out),
                Some(b'\\') => self.parse_escape(&mut out)?,
                Some(_) => {
                    self.pos -= 1;
                    return Err(self.error(ParseErrorKind::ControlCharacterInString));
                }
            }
        }
    }

    fn parse_escape(&mut self, out: &mut String) -> Result<(), ParseError> {
        match self.bump() {
            None => Err(self.error(ParseErrorKind::UnexpectedEof)),
            Some(b'"') => {
                out.push('"');
                Ok(())
            }
            Some(b'\\') => {
                out.push('\\');
                Ok(())
            }
            Some(b'/') => {
                out.push('/');
                Ok(())
            }
            Some(b'b') => {
                out.push('\u{0008}');
                Ok(())
            }
            Some(b'f') => {
                out.push('\u{000C}');
                Ok(())
            }
            Some(b'n') => {
                out.push('\n');
                Ok(())
            }
            Some(b'r') => {
                out.push('\r');
                Ok(())
            }
            Some(b't') => {
                out.push('\t');
                Ok(())
            }
            Some(b'u') => {
                let hi = self.parse_hex4()?;
                let c = if (0xD800..0xDC00).contains(&hi) {
                    // High surrogate: a low surrogate must follow.
                    if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                        return Err(self.error(ParseErrorKind::InvalidUnicodeEscape));
                    }
                    let lo = self.parse_hex4()?;
                    if !(0xDC00..0xE000).contains(&lo) {
                        return Err(self.error(ParseErrorKind::InvalidUnicodeEscape));
                    }
                    let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                    char::from_u32(code)
                        .ok_or_else(|| self.error(ParseErrorKind::InvalidUnicodeEscape))?
                } else if (0xDC00..0xE000).contains(&hi) {
                    return Err(self.error(ParseErrorKind::InvalidUnicodeEscape));
                } else {
                    char::from_u32(hi)
                        .ok_or_else(|| self.error(ParseErrorKind::InvalidUnicodeEscape))?
                };
                out.push(c);
                Ok(())
            }
            Some(b) => Err(self.error(ParseErrorKind::InvalidEscape(b as char))),
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, ParseError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self
                .bump()
                .ok_or_else(|| self.error(ParseErrorKind::UnexpectedEof))?;
            let d = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.error(ParseErrorKind::InvalidUnicodeEscape))?;
            v = v * 16 + d;
        }
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: either a lone 0 or a nonzero digit followed by digits.
        match self.peek() {
            Some(b'0') => {
                self.pos += 1;
                if matches!(self.peek(), Some(b'0'..=b'9')) {
                    return Err(self.error_at(ParseErrorKind::InvalidNumber, start));
                }
            }
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.error_at(ParseErrorKind::InvalidNumber, start)),
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.error_at(ParseErrorKind::InvalidNumber, start));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.error_at(ParseErrorKind::InvalidNumber, start));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("input is str");
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::Int(i)));
            }
            // Integer literal too large for i64: fall back to f64.
        }
        let f: f64 = text
            .parse()
            .map_err(|_| self.error_at(ParseErrorKind::InvalidNumber, start))?;
        if f.is_infinite() {
            return Err(self.error_at(ParseErrorKind::NumberOutOfRange, start));
        }
        Ok(Value::Number(Number::Float(f)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kind(src: &str) -> ParseErrorKind {
        parse(src).unwrap_err().kind
    }

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse("false").unwrap(), Value::Bool(false));
        assert_eq!(parse("42").unwrap().as_i64(), Some(42));
        assert_eq!(parse("-7").unwrap().as_i64(), Some(-7));
        assert_eq!(parse("2.5").unwrap().as_f64(), Some(2.5));
        assert_eq!(parse("1e3").unwrap().as_f64(), Some(1000.0));
        assert_eq!(parse("-1.5e-2").unwrap().as_f64(), Some(-0.015));
        assert_eq!(parse(r#""hi""#).unwrap().as_str(), Some("hi"));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a": [1, {"b": [true, null]}], "c": {}}"#).unwrap();
        assert_eq!(v["a"][1]["b"][0].as_bool(), Some(true));
        assert!(v["a"][1]["b"][1].is_null());
        assert!(v["c"].as_object().unwrap().is_empty());
    }

    #[test]
    fn preserves_key_order() {
        let v = parse(r#"{"/": 1, "/CoreCover/": 2, "/citation/GUI/": 3}"#).unwrap();
        let keys: Vec<_> = v.as_object().unwrap().keys().collect();
        assert_eq!(keys, vec!["/", "/CoreCover/", "/citation/GUI/"]);
    }

    #[test]
    fn string_escapes() {
        assert_eq!(
            parse(r#""a\"b\\c\/d\b\f\n\r\t""#).unwrap().as_str(),
            Some("a\"b\\c/d\u{8}\u{c}\n\r\t")
        );
        assert_eq!(parse(r#""A""#).unwrap().as_str(), Some("A"));
        assert_eq!(parse(r#""é""#).unwrap().as_str(), Some("é"));
        // Surrogate pair: U+1F600
        assert_eq!(parse(r#""😀""#).unwrap().as_str(), Some("😀"));
    }

    #[test]
    fn unicode_passthrough() {
        assert_eq!(
            parse("\"héllo — 世界\"").unwrap().as_str(),
            Some("héllo — 世界")
        );
    }

    #[test]
    fn error_positions() {
        let e = parse("{\n  \"a\": x\n}").unwrap_err();
        assert_eq!(e.line, 2);
        assert_eq!(e.column, 8);
        assert_eq!(e.kind, ParseErrorKind::UnexpectedChar('x'));
    }

    #[test]
    fn error_kinds() {
        assert_eq!(kind(""), ParseErrorKind::UnexpectedEof);
        assert_eq!(kind("{"), ParseErrorKind::UnexpectedEof);
        assert_eq!(kind("tru"), ParseErrorKind::InvalidLiteral);
        assert_eq!(kind("01"), ParseErrorKind::InvalidNumber);
        assert_eq!(kind("1."), ParseErrorKind::InvalidNumber);
        assert_eq!(kind("1e"), ParseErrorKind::InvalidNumber);
        assert_eq!(kind("-"), ParseErrorKind::InvalidNumber);
        assert_eq!(kind("\"abc"), ParseErrorKind::UnterminatedString);
        assert_eq!(kind(r#""\x""#), ParseErrorKind::InvalidEscape('x'));
        assert_eq!(kind(r#""\ud83d""#), ParseErrorKind::InvalidUnicodeEscape);
        assert_eq!(kind(r#""\ude00""#), ParseErrorKind::InvalidUnicodeEscape);
        assert_eq!(kind("[1,2] x"), ParseErrorKind::TrailingData);
        assert_eq!(kind("1e999"), ParseErrorKind::NumberOutOfRange);
        assert_eq!(
            kind("\"a\u{1}b\""),
            ParseErrorKind::ControlCharacterInString
        );
        assert_eq!(kind("[1,]"), ParseErrorKind::UnexpectedChar(']'));
        assert_eq!(kind("{\"a\":1,}"), ParseErrorKind::UnexpectedChar('}'));
    }

    #[test]
    fn depth_limit() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert_eq!(kind(&deep), ParseErrorKind::TooDeep);
        let ok = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn duplicate_keys_last_wins_by_default() {
        let v = parse(r#"{"a": 1, "a": 2}"#).unwrap();
        assert_eq!(v["a"].as_i64(), Some(2));
        assert_eq!(v.as_object().unwrap().len(), 1);
    }

    #[test]
    fn duplicate_keys_rejected_when_asked() {
        let opts = ParseOptions {
            reject_duplicate_keys: true,
            ..Default::default()
        };
        let e = parse_with(r#"{"a": 1, "a": 2}"#, &opts).unwrap_err();
        assert_eq!(e.kind, ParseErrorKind::DuplicateKey("a".into()));
    }

    #[test]
    fn big_integer_falls_back_to_float() {
        let v = parse("123456789012345678901234567890").unwrap();
        assert!(v.as_i64().is_none());
        assert!(v.as_f64().unwrap() > 1e29);
    }

    #[test]
    fn whitespace_tolerance() {
        let v = parse(" \t\r\n { \"a\" : [ 1 , 2 ] } \n").unwrap();
        assert_eq!(v["a"][1].as_i64(), Some(2));
    }
}
