//! Parse errors with precise source positions.

use std::fmt;

/// What went wrong while parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseErrorKind {
    /// Input ended while a value was still open.
    UnexpectedEof,
    /// A byte that cannot start/continue the current production.
    UnexpectedChar(char),
    /// `"…` string never closed.
    UnterminatedString,
    /// A `\x` escape with an unknown `x`.
    InvalidEscape(char),
    /// `\uXXXX` with bad hex digits or an unpaired surrogate.
    InvalidUnicodeEscape,
    /// An unescaped control character (U+0000..U+001F) inside a string.
    ControlCharacterInString,
    /// Malformed number literal.
    InvalidNumber,
    /// A number that parses but is not representable (e.g. `1e999`).
    NumberOutOfRange,
    /// Nesting deeper than [`crate::ParseOptions::max_depth`].
    TooDeep,
    /// Non-whitespace bytes after the top-level value.
    TrailingData,
    /// Duplicate object key under `ParseOptions::reject_duplicate_keys`.
    DuplicateKey(String),
    /// Bare identifier that is not `true` / `false` / `null`.
    InvalidLiteral,
}

impl fmt::Display for ParseErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseErrorKind::UnexpectedEof => write!(f, "unexpected end of input"),
            ParseErrorKind::UnexpectedChar(c) => write!(f, "unexpected character {c:?}"),
            ParseErrorKind::UnterminatedString => write!(f, "unterminated string"),
            ParseErrorKind::InvalidEscape(c) => write!(f, "invalid escape sequence \\{c}"),
            ParseErrorKind::InvalidUnicodeEscape => write!(f, "invalid \\u escape"),
            ParseErrorKind::ControlCharacterInString => {
                write!(f, "unescaped control character in string")
            }
            ParseErrorKind::InvalidNumber => write!(f, "invalid number literal"),
            ParseErrorKind::NumberOutOfRange => write!(f, "number out of range"),
            ParseErrorKind::TooDeep => write!(f, "document nested too deeply"),
            ParseErrorKind::TrailingData => write!(f, "trailing data after value"),
            ParseErrorKind::DuplicateKey(k) => write!(f, "duplicate object key {k:?}"),
            ParseErrorKind::InvalidLiteral => write!(f, "invalid literal"),
        }
    }
}

/// A JSON parse error, carrying the 1-based line/column where it occurred.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// The error category.
    pub kind: ParseErrorKind,
    /// 1-based line number.
    pub line: usize,
    /// 1-based column number (in characters).
    pub column: usize,
    /// 0-based byte offset into the source.
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} at line {}, column {}",
            self.kind, self.line, self.column
        )
    }
}

impl std::error::Error for ParseError {}
