//! Property tests: every `Value` the generator can produce must survive a
//! serialize → parse round trip, in both compact and pretty form.

use proptest::prelude::*;
use sjson::{parse, Number, Object, Value};

fn arb_value() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(|i| Value::Number(Number::Int(i))),
        // Finite floats only: JSON has no NaN/Inf.
        any::<f64>()
            .prop_filter("finite", |f| f.is_finite())
            .prop_map(|f| Value::Number(Number::Float(f))),
        "[ -~]{0,20}".prop_map(Value::String),
        // Exercise escapes and non-ASCII too.
        prop::collection::vec(any::<char>(), 0..8)
            .prop_map(|cs| Value::String(cs.into_iter().collect())),
    ];
    leaf.prop_recursive(4, 64, 8, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..6).prop_map(Value::Array),
            prop::collection::vec(("[a-z/]{0,12}", inner), 0..6).prop_map(|kvs| {
                let mut obj = Object::new();
                for (k, v) in kvs {
                    obj.insert(k, v);
                }
                Value::Object(obj)
            }),
        ]
    })
}

proptest! {
    #[test]
    fn compact_round_trip(v in arb_value()) {
        let text = v.to_string_compact();
        let back = parse(&text).expect("serializer output must parse");
        prop_assert_eq!(back, v);
    }

    #[test]
    fn pretty_round_trip(v in arb_value()) {
        let text = v.to_string_pretty();
        let back = parse(&text).expect("pretty output must parse");
        prop_assert_eq!(back, v);
    }

    #[test]
    fn pretty_and_compact_agree(v in arb_value()) {
        let a = parse(&v.to_string_compact()).unwrap();
        let b = parse(&v.to_string_pretty()).unwrap();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn parser_never_panics_on_arbitrary_input(s in "\\PC{0,64}") {
        let _ = parse(&s);
    }

    #[test]
    fn object_insert_then_get(keys in prop::collection::vec("[a-z]{1,8}", 1..10)) {
        let mut obj = Object::new();
        for (i, k) in keys.iter().enumerate() {
            obj.insert(k.clone(), i as i64);
        }
        // Last write wins for duplicate keys.
        for (i, k) in keys.iter().enumerate() {
            let last = keys.iter().rposition(|x| x == k).unwrap();
            prop_assert_eq!(obj.get(k).unwrap().as_i64().unwrap(), last as i64);
            let _ = i;
        }
    }
}
