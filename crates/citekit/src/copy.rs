//! `CopyCite` — copying a subtree between repositories along with its
//! citations (paper §3).
//!
//! "CopyCite copies a directory from a remote repository version to the
//! local repository version, and migrates their associated citations ...
//! with the key paths modified to reflect the new location." Additionally,
//! the running example (Figure 1) shows the copied subtree's root becoming
//! explicitly cited in the destination — `C4`, the *effective* citation of
//! the source subtree root — so extracted code keeps crediting its origin
//! even when the source never cited that directory explicitly.

use crate::citation::Citation;
use crate::error::{CiteError, Result};
use crate::file::{self, citation_path};
use crate::ops::CitedRepo;
use crate::time::format_iso8601;
use gitlite::{ObjectId, RepoPath, Repository};

/// What a `CopyCite` did.
#[derive(Debug, Clone)]
pub struct CopyReport {
    /// Number of files copied into the destination worktree.
    pub files_copied: usize,
    /// Destination keys of citations migrated from the source subtree.
    pub citations_migrated: Vec<RepoPath>,
    /// The citation materialized at the destination root, when the source
    /// subtree root had no explicit citation of its own (Figure 1's `C4`).
    pub materialized: Option<Citation>,
}

impl CitedRepo {
    /// `CopyCite(loc1, loc2)`: copies `src_path` (a directory or file) from
    /// `src_version` of `src` into this repository's worktree at
    /// `dst_path`, migrating citations.
    ///
    /// The copy is staged in the worktree; call [`CitedRepo::commit`] to
    /// create the new version (the paper's V4).
    pub fn copy_cite(
        &mut self,
        dst_path: &RepoPath,
        src: &Repository,
        src_version: ObjectId,
        src_path: &RepoPath,
    ) -> Result<CopyReport> {
        if dst_path.is_root() || *dst_path == citation_path() {
            return Err(CiteError::DestinationExists(dst_path.clone()));
        }
        if self.repo().worktree().exists(dst_path) {
            return Err(CiteError::DestinationExists(dst_path.clone()));
        }

        // Collect the source files under src_path.
        let snapshot = src.snapshot(src_version).map_err(CiteError::Git)?;
        let cite = citation_path();
        let files: Vec<(RepoPath, RepoPath)> = snapshot
            .keys()
            .filter(|p| p.starts_with(src_path) && **p != cite)
            .map(|p| {
                let rel = p.rebase(src_path, dst_path).expect("starts_with checked");
                (p.clone(), rel)
            })
            .collect();
        if files.is_empty() {
            return Err(CiteError::SourceMissing(src_path.clone()));
        }

        // Copy file contents.
        for (from, to) in &files {
            let data = src.file_at(src_version, from).map_err(CiteError::Git)?;
            self.repo_mut()
                .worktree_mut()
                .write(to, data)
                .map_err(CiteError::Git)?;
        }

        // Load the source citation function for this version, if any.
        let src_func = match src.file_at(src_version, &cite) {
            Ok(text) => Some(file::parse(&String::from_utf8_lossy(&text))?),
            Err(_) => None,
        };

        let mut migrated = Vec::new();
        let mut materialized = None;
        if let Some(src_func) = src_func {
            // Migrate every explicit citation under the source subtree,
            // re-keyed to the destination.
            let mut func = self.function().clone();
            let mut src_root_explicit = false;
            for (key, entry) in src_func.iter() {
                if key.is_root() || !key.starts_with(src_path) {
                    continue;
                }
                let new_key = key.rebase(src_path, dst_path).expect("starts_with checked");
                if *key == *src_path {
                    src_root_explicit = true;
                }
                func.set(new_key.clone(), entry.citation.clone(), entry.is_dir);
                migrated.push(new_key);
            }
            // Materialize the effective citation at the destination root
            // when the source did not cite that directory explicitly: the
            // closest-ancestor citation (stamped from the source version
            // when it came from the source root).
            if !src_root_explicit {
                let (at, citation) = src_func.resolve(src_path);
                let citation = if at.is_root() {
                    let commit = src.commit_obj(src_version).map_err(CiteError::Git)?;
                    citation.stamped(
                        &src_version.short(),
                        &format_iso8601(commit.author.timestamp),
                    )
                } else {
                    citation.clone()
                };
                let is_dir = self.repo().worktree().is_dir(dst_path);
                func.set(dst_path.clone(), citation.clone(), is_dir);
                materialized = Some(citation);
            }
            self.install_function(func)?;
        }

        Ok(CopyReport {
            files_copied: files.len(),
            citations_migrated: migrated,
            materialized,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gitlite::{path, Signature};

    fn sig(n: &str, t: i64) -> Signature {
        Signature::new(n, format!("{n}@x"), t)
    }

    fn cite(name: &str) -> Citation {
        Citation::builder(name, "owner")
            .url(format!("https://x/{name}"))
            .build()
    }

    /// A source project P2 with a subtree `green/` holding two files, one
    /// of which has its own citation C3; the directory itself is uncited
    /// (its effective citation is the root's C4 in Figure 1 terms).
    fn source_p2() -> (CitedRepo, ObjectId) {
        let mut p2 = CitedRepo::init("P2", "Susan", "https://hub/P2");
        p2.write_file(&path("green/f1.txt"), &b"green f1\n"[..])
            .unwrap();
        p2.write_file(&path("green/f2.txt"), &b"green f2\n"[..])
            .unwrap();
        p2.write_file(&path("unrelated.txt"), &b"other\n"[..])
            .unwrap();
        p2.add_cite(&path("green/f1.txt"), cite("C3")).unwrap();
        let v3 = p2.commit(sig("Susan", 300), "V3").unwrap().commit;
        (p2, v3)
    }

    fn dest_p1() -> CitedRepo {
        let mut p1 = CitedRepo::init("P1", "Leshang", "https://hub/P1");
        p1.write_file(&path("f1.txt"), &b"p1 f1\n"[..]).unwrap();
        p1.commit(sig("Leshang", 100), "V1").unwrap();
        p1
    }

    #[test]
    fn copies_files_and_migrates_citations() {
        let (p2, v3) = source_p2();
        let mut p1 = dest_p1();
        let report = p1
            .copy_cite(&path("imported"), p2.repo(), v3, &path("green"))
            .unwrap();
        assert_eq!(report.files_copied, 2);
        // Files landed.
        assert_eq!(
            p1.read_text(&path("imported/f1.txt")).unwrap(),
            "green f1\n"
        );
        assert_eq!(
            p1.read_text(&path("imported/f2.txt")).unwrap(),
            "green f2\n"
        );
        // C3 migrated with a re-keyed path.
        assert!(report.citations_migrated.contains(&path("imported/f1.txt")));
        assert_eq!(
            p1.function()
                .get(&path("imported/f1.txt"))
                .unwrap()
                .repo_name,
            "C3"
        );
    }

    #[test]
    fn materializes_effective_citation_at_destination_root() {
        // Figure 1: before copying, Cite(V3,P2)(f2) = C4 (the root); after
        // copying into P1, Cite(V4,P1)(f2) is still C4 because the green
        // subtree's root citation was added to V4's citation file.
        let (p2, v3) = source_p2();
        let f2_before = p2.cite_at(v3, &path("green/f2.txt")).unwrap();
        assert_eq!(f2_before.repo_name, "P2"); // C4 comes from P2's root

        let mut p1 = dest_p1();
        let report = p1
            .copy_cite(&path("imported"), p2.repo(), v3, &path("green"))
            .unwrap();
        let c4 = report.materialized.expect("materialized C4");
        assert_eq!(c4.repo_name, "P2");
        assert_eq!(c4.owner, "Susan");
        assert_eq!(c4.commit_id, v3.short()); // stamped from V3

        let v4 = p1
            .commit(sig("Leshang", 400), "V4: CopyCite")
            .unwrap()
            .commit;
        let f2_after = p1.cite_at(v4, &path("imported/f2.txt")).unwrap();
        // Unchanged: still credits P2 (C4), not P1.
        assert_eq!(f2_after.repo_name, "P2");
        assert_eq!(f2_after.owner, "Susan");
        // While P1's own files still credit P1.
        let own = p1.cite_at(v4, &path("f1.txt")).unwrap();
        assert_eq!(own.repo_name, "P1");
    }

    #[test]
    fn explicit_source_root_citation_migrates_without_materialization() {
        let (mut p2, _) = source_p2();
        p2.add_cite(&path("green"), cite("explicit-green")).unwrap();
        let v3b = p2.commit(sig("Susan", 350), "cite green").unwrap().commit;
        let mut p1 = dest_p1();
        let report = p1
            .copy_cite(&path("imported"), p2.repo(), v3b, &path("green"))
            .unwrap();
        assert!(report.materialized.is_none());
        assert_eq!(
            p1.function().get(&path("imported")).unwrap().repo_name,
            "explicit-green"
        );
    }

    #[test]
    fn copy_single_file() {
        let (p2, v3) = source_p2();
        let mut p1 = dest_p1();
        let report = p1
            .copy_cite(&path("borrowed.txt"), p2.repo(), v3, &path("green/f1.txt"))
            .unwrap();
        assert_eq!(report.files_copied, 1);
        // f1's explicit C3 rides along as the entry for the file itself.
        assert_eq!(
            p1.function().get(&path("borrowed.txt")).unwrap().repo_name,
            "C3"
        );
        assert!(report.materialized.is_none());
    }

    #[test]
    fn copy_from_uncited_source_still_copies_files() {
        let mut src = gitlite::Repository::init("plain");
        src.worktree_mut()
            .write(&path("lib/a.txt"), &b"a\n"[..])
            .unwrap();
        let v = src.commit(sig("X", 1), "c1").unwrap();
        let mut p1 = dest_p1();
        let report = p1
            .copy_cite(&path("vendored"), &src, v, &path("lib"))
            .unwrap();
        assert_eq!(report.files_copied, 1);
        assert!(report.citations_migrated.is_empty());
        assert!(report.materialized.is_none());
        assert_eq!(p1.read_text(&path("vendored/a.txt")).unwrap(), "a\n");
    }

    #[test]
    fn copy_validations() {
        let (p2, v3) = source_p2();
        let mut p1 = dest_p1();
        // Destination exists.
        assert!(matches!(
            p1.copy_cite(&path("f1.txt"), p2.repo(), v3, &path("green")),
            Err(CiteError::DestinationExists(_))
        ));
        // Source missing.
        assert!(matches!(
            p1.copy_cite(&path("x"), p2.repo(), v3, &path("nope")),
            Err(CiteError::SourceMissing(_))
        ));
        // Root destination.
        assert!(matches!(
            p1.copy_cite(&RepoPath::root(), p2.repo(), v3, &path("green")),
            Err(CiteError::DestinationExists(_))
        ));
    }

    #[test]
    fn source_citation_file_never_copied_as_content() {
        let (p2, v3) = source_p2();
        let mut p1 = dest_p1();
        // Copy the whole source root: citation.cite must be skipped.
        p1.copy_cite(&path("all-of-p2"), p2.repo(), v3, &RepoPath::root())
            .unwrap();
        assert!(!p1
            .repo()
            .worktree()
            .is_file(&path("all-of-p2/citation.cite")));
        assert!(p1
            .repo()
            .worktree()
            .is_file(&path("all-of-p2/green/f1.txt")));
        // And the source's non-root citations migrated.
        assert_eq!(
            p1.function()
                .get(&path("all-of-p2/green/f1.txt"))
                .unwrap()
                .repo_name,
            "C3"
        );
    }

    use gitlite::RepoPath;
}
