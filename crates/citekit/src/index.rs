//! A path-trie index for nearest-cited-ancestor resolution — the
//! alternative resolver evaluated in the E7 ablation (DESIGN.md).
//!
//! [`CitationFunction::resolve`](crate::function::CitationFunction::resolve)
//! walks a query path's ancestors and probes the entry map once per level:
//! `O(depth)` map lookups, each hashing/comparing a full path. This trie
//! descends the query path once, remembering the deepest cited node passed:
//! `O(depth)` cheap single-component hops with no per-level full-path
//! hashing, and it additionally supports bulk resolution of an entire tree
//! in one traversal.

use crate::citation::Citation;
use crate::function::CitationFunction;
use gitlite::RepoPath;
use std::collections::HashMap;

#[derive(Debug, Default)]
struct TrieNode {
    children: HashMap<String, TrieNode>,
    /// Index into `citations` when this exact node is cited.
    cited: Option<usize>,
}

/// An immutable nearest-cited-ancestor index built from a
/// [`CitationFunction`].
#[derive(Debug)]
pub struct CiteIndex {
    root: TrieNode,
    citations: Vec<(RepoPath, Citation)>,
}

impl CiteIndex {
    /// Builds the index. `O(total key components)`.
    pub fn build(func: &CitationFunction) -> Self {
        let mut citations = Vec::with_capacity(func.len());
        let mut root = TrieNode::default();
        for (path, entry) in func.iter() {
            let idx = citations.len();
            citations.push((path.clone(), entry.citation.clone()));
            let mut node = &mut root;
            for comp in path.components() {
                node = node.children.entry(comp.clone()).or_default();
            }
            node.cited = Some(idx);
        }
        CiteIndex { root, citations }
    }

    /// Number of indexed citations.
    pub fn len(&self) -> usize {
        self.citations.len()
    }

    /// True when no citations are indexed.
    pub fn is_empty(&self) -> bool {
        self.citations.is_empty()
    }

    /// Resolves `path` to its nearest cited ancestor-or-self. Returns the
    /// supplying key and citation; `None` only when even the root is
    /// uncited (impossible for indexes built from a well-formed function).
    pub fn resolve(&self, path: &RepoPath) -> Option<(&RepoPath, &Citation)> {
        let mut best = self.root.cited;
        let mut node = &self.root;
        for comp in path.components() {
            match node.children.get(comp) {
                Some(child) => {
                    node = child;
                    if child.cited.is_some() {
                        best = child.cited;
                    }
                }
                None => break,
            }
        }
        best.map(|i| {
            let (p, c) = &self.citations[i];
            (p, c)
        })
    }

    /// Resolves every path in `paths`, reusing the single trie descent per
    /// path. Returned in input order.
    pub fn resolve_all<'a, 'b>(
        &'a self,
        paths: impl IntoIterator<Item = &'b RepoPath>,
    ) -> Vec<Option<(&'a RepoPath, &'a Citation)>> {
        paths.into_iter().map(|p| self.resolve(p)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gitlite::path;

    fn cite(name: &str) -> Citation {
        Citation::builder(name, "o").build()
    }

    fn sample() -> CitationFunction {
        let mut f = CitationFunction::new(cite("root"));
        f.set(path("a"), cite("a"), true);
        f.set(path("a/b/c"), cite("abc"), true);
        f.set(path("x/file.rs"), cite("xf"), false);
        f
    }

    #[test]
    fn index_agrees_with_function_resolution() {
        let f = sample();
        let idx = CiteIndex::build(&f);
        assert_eq!(idx.len(), 4);
        for query in [
            "",
            "a",
            "a/b",
            "a/b/c",
            "a/b/c/d/e",
            "a/sibling",
            "x",
            "x/file.rs",
            "x/other.rs",
            "unrelated/deep/path",
        ] {
            let q = path(query);
            let (fp, fc) = f.resolve(&q);
            let (ip, ic) = idx.resolve(&q).expect("root always cited");
            assert_eq!(fp, ip, "query {query:?}");
            assert_eq!(fc, ic, "query {query:?}");
        }
    }

    #[test]
    fn resolve_all_bulk() {
        let f = sample();
        let idx = CiteIndex::build(&f);
        let queries = [path("a/b"), path("x/file.rs"), path("zzz")];
        let results = idx.resolve_all(queries.iter());
        assert_eq!(results.len(), 3);
        assert_eq!(results[0].unwrap().1.repo_name, "a");
        assert_eq!(results[1].unwrap().1.repo_name, "xf");
        assert_eq!(results[2].unwrap().1.repo_name, "root");
    }

    #[test]
    fn deep_chain_resolution() {
        let mut f = CitationFunction::new(cite("root"));
        // Cite every third level of a deep chain.
        let mut p = RepoPath::root();
        for i in 0..30 {
            p = p.child(&format!("d{i}"));
            if i % 3 == 0 {
                f.set(p.clone(), cite(&format!("level{i}")), true);
            }
        }
        let idx = CiteIndex::build(&f);
        let deep = p.child("leaf.txt");
        let (ip, ic) = idx.resolve(&deep).unwrap();
        let (fp, fc) = f.resolve(&deep);
        assert_eq!(ip, fp);
        assert_eq!(ic, fc);
        assert_eq!(ic.repo_name, "level27");
    }

    use gitlite::RepoPath;
}
