//! Carrying citations through tree edits (paper §2): when files or
//! directories in the active domain are moved or renamed, their citation
//! keys are rewritten; when they are deleted, their citations are dropped.
//!
//! [`reconcile`] runs at commit time. It diffs the previous version's tree
//! against the worktree (with rename detection, including inferred
//! directory renames) and updates the citation function accordingly, so
//! the function stays consistent even when files were moved by hand rather
//! than through [`crate::ops::CitedRepo::rename`].

use crate::file::citation_path;
use crate::function::CitationFunction;
use gitlite::{diff_listings, Blob, ObjectId, ObjectStore, RepoPath, WorkTree};
use std::collections::BTreeMap;

/// What [`reconcile`] changed.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CarryReport {
    /// File-level key rewrites applied (`from → to`).
    pub renamed: Vec<(RepoPath, RepoPath)>,
    /// Directory-level key rewrites applied (`from → to`).
    pub dir_renamed: Vec<(RepoPath, RepoPath)>,
    /// Citation entries dropped because their paths left the tree.
    pub pruned: Vec<RepoPath>,
}

impl CarryReport {
    /// True when nothing had to change.
    pub fn is_empty(&self) -> bool {
        self.renamed.is_empty() && self.dir_renamed.is_empty() && self.pruned.is_empty()
    }
}

/// Computes the `path → blob id` listing of a worktree, storing blobs into
/// `odb` (they are needed both for rename similarity scoring and by the
/// commit that follows). The citation file itself is excluded — its keys
/// are what we are maintaining.
pub fn worktree_listing<S: ObjectStore + ?Sized>(
    odb: &mut S,
    wt: &WorkTree,
) -> BTreeMap<RepoPath, ObjectId> {
    let cite = citation_path();
    let mut listing = BTreeMap::new();
    for (path, data) in wt.iter() {
        if *path == cite {
            continue;
        }
        listing.insert(
            path.clone(),
            odb.put(gitlite::Object::Blob(Blob::new(data.clone()))),
        );
    }
    listing
}

/// Reconciles `func` with the edits between `old_listing` (the previous
/// version, without its citation file) and the current worktree.
pub fn reconcile<S: ObjectStore + ?Sized>(
    func: &mut CitationFunction,
    old_listing: &BTreeMap<RepoPath, ObjectId>,
    wt: &WorkTree,
    odb: &mut S,
) -> CarryReport {
    let new_listing = worktree_listing(odb, wt);
    let diff = diff_listings(old_listing, &new_listing, &*odb, true);

    let mut report = CarryReport::default();

    // 1. Directory renames first: they move whole key subtrees, including
    //    keys of files the per-file pass would also move (rekeying is
    //    idempotent, but doing directories first attributes moves to the
    //    directory in the report).
    for (from, to) in diff.directory_renames(&new_listing) {
        if func.paths().any(|p| p.starts_with(&from)) {
            func.rebase_subtree(&from, &to);
            report.dir_renamed.push((from, to));
        }
    }

    // 2. File renames.
    for r in &diff.renames {
        if func.contains(&r.from) {
            func.rekey(&r.from, &r.to);
            report.renamed.push((r.from.clone(), r.to.clone()));
        }
    }

    // 3. Prune citations whose nodes no longer exist, and normalize the
    //    is_dir flag to the worktree's reality.
    report.pruned = func.retain(|p, _| wt.exists(p));
    let flags: Vec<(RepoPath, bool)> = func
        .iter()
        .filter(|(p, e)| !p.is_root() && e.is_dir != wt.is_dir(p))
        .map(|(p, _)| (p.clone(), wt.is_dir(p)))
        .collect();
    for (p, is_dir) in flags {
        if let Some(c) = func.get(&p).cloned() {
            func.set(p, c, is_dir);
        }
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::citation::Citation;
    use gitlite::path;
    use gitlite::Odb;

    fn cite(name: &str) -> Citation {
        Citation::builder(name, "o").build()
    }

    fn setup() -> (
        Odb,
        WorkTree,
        CitationFunction,
        BTreeMap<RepoPath, ObjectId>,
    ) {
        let mut odb = Odb::new();
        let mut wt = WorkTree::new();
        wt.write(&path("keep.txt"), &b"keep\n"[..]).unwrap();
        wt.write(
            &path("old/name.rs"),
            &b"some unique content\nwith lines\n"[..],
        )
        .unwrap();
        wt.write(&path("gui/app.js"), &b"app\n"[..]).unwrap();
        wt.write(&path("gui/css/style.css"), &b"style\n"[..])
            .unwrap();
        let mut func = CitationFunction::new(cite("root"));
        func.set(path("old/name.rs"), cite("file-cite"), false);
        func.set(path("gui"), cite("gui-cite"), true);
        let old_listing = worktree_listing(&mut odb, &wt);
        (odb, wt, func, old_listing)
    }

    #[test]
    fn no_changes_no_report() {
        let (mut odb, wt, mut func, old) = setup();
        let before = func.clone();
        let report = reconcile(&mut func, &old, &wt, &mut odb);
        assert!(report.is_empty());
        assert_eq!(func, before);
    }

    #[test]
    fn file_rename_carries_citation() {
        let (mut odb, mut wt, mut func, old) = setup();
        wt.rename(&path("old/name.rs"), &path("new/renamed.rs"))
            .unwrap();
        let report = reconcile(&mut func, &old, &wt, &mut odb);
        assert_eq!(
            report.renamed,
            vec![(path("old/name.rs"), path("new/renamed.rs"))]
        );
        assert!(func.contains(&path("new/renamed.rs")));
        assert!(!func.contains(&path("old/name.rs")));
        assert_eq!(
            func.get(&path("new/renamed.rs")).unwrap().repo_name,
            "file-cite"
        );
    }

    #[test]
    fn edited_then_moved_file_still_carries() {
        let (mut odb, mut wt, mut func, old) = setup();
        // Move and lightly edit: similarity rename.
        wt.remove_file(&path("old/name.rs")).unwrap();
        wt.write(
            &path("moved/name.rs"),
            &b"some unique content\nwith lines\nplus one\n"[..],
        )
        .unwrap();
        let report = reconcile(&mut func, &old, &wt, &mut odb);
        // Carried either as a file rename or via the inferred directory
        // rename old/ → moved/ (both are correct carryings).
        assert_eq!(report.renamed.len() + report.dir_renamed.len(), 1);
        assert!(func.contains(&path("moved/name.rs")));
        assert!(!func.contains(&path("old/name.rs")));
    }

    #[test]
    fn directory_rename_carries_subtree() {
        let (mut odb, mut wt, mut func, old) = setup();
        wt.rename(&path("gui"), &path("citation/GUI")).unwrap();
        let report = reconcile(&mut func, &old, &wt, &mut odb);
        assert_eq!(
            report.dir_renamed,
            vec![(path("gui"), path("citation/GUI"))]
        );
        assert!(func.contains(&path("citation/GUI")));
        assert_eq!(
            func.get(&path("citation/GUI")).unwrap().repo_name,
            "gui-cite"
        );
        assert!(!func.contains(&path("gui")));
    }

    #[test]
    fn deletion_prunes_citation() {
        let (mut odb, mut wt, mut func, old) = setup();
        wt.remove_dir(&path("gui")).unwrap();
        wt.remove_file(&path("old/name.rs")).unwrap();
        let report = reconcile(&mut func, &old, &wt, &mut odb);
        let mut pruned = report.pruned.clone();
        pruned.sort();
        assert_eq!(pruned, vec![path("gui"), path("old/name.rs")]);
        assert_eq!(func.len(), 1); // root only
    }

    #[test]
    fn unrelated_new_files_leave_function_alone() {
        let (mut odb, mut wt, mut func, old) = setup();
        wt.write(&path("brand/new.txt"), &b"hi\n"[..]).unwrap();
        let before = func.clone();
        let report = reconcile(&mut func, &old, &wt, &mut odb);
        assert!(report.is_empty());
        assert_eq!(func, before);
    }

    #[test]
    fn is_dir_flag_normalized() {
        let (mut odb, mut wt, mut func, old) = setup();
        // Replace the gui directory with a file of the same name.
        wt.remove_dir(&path("gui")).unwrap();
        wt.write(&path("gui"), &b"now a file\n"[..]).unwrap();
        let _ = reconcile(&mut func, &old, &wt, &mut odb);
        let entry = func.entry(&path("gui")).unwrap();
        assert!(!entry.is_dir);
        assert_eq!(entry.citation.repo_name, "gui-cite");
    }

    #[test]
    fn citation_file_itself_is_ignored() {
        let (mut odb, mut wt, mut func, old) = setup();
        wt.write(&citation_path(), &b"{}"[..]).unwrap();
        let report = reconcile(&mut func, &old, &wt, &mut odb);
        assert!(report.is_empty());
        let listing = worktree_listing(&mut odb, &wt);
        assert!(!listing.contains_key(&citation_path()));
    }
}
