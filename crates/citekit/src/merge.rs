//! `MergeCite` — merging branches *and* their citation functions
//! (paper §3).
//!
//! Regular files merge by Git's rules (three-way, diff3). `citation.cite`
//! does **not**: "we do not use them on citation.cite since it could leave
//! the citation function inconsistent. Instead, we simply take the union
//! of the citation files, and delete any entries that correspond to files
//! that were deleted by the Git merge. Conflicts over the values
//! associated with the same key ... are then resolved by showing them to
//! the user" (§3). The paper's future work asks for strategies "that
//! mirror the three-way merge method used in Git" — implemented here as
//! [`MergeStrategy::ThreeWay`].

use crate::citation::Citation;
use crate::error::{CiteError, Result};
use crate::file::{self, citation_path};
use crate::function::CitationFunction;
use crate::ops::CitedRepo;
use gitlite::merge::{merge_listings, Conflict, MergeOptions};
use gitlite::{
    merge_base, read_tree, write_tree_from_listing, MergeLabels, ObjectId, ObjectStoreExt,
    RepoPath, Signature,
};
use std::collections::BTreeMap;

/// How same-key/different-value citation conflicts are handled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MergeStrategy {
    /// The paper's default: union the two citation files; every key
    /// conflict goes to the [`ConflictResolver`].
    #[default]
    Union,
    /// Keep our side for every conflict (no resolver calls).
    Ours,
    /// Keep their side for every conflict (no resolver calls).
    Theirs,
    /// Future-work strategy: use the merge base's citation file to
    /// auto-resolve one-sided edits and honor one-sided deletions; only
    /// genuine double-edits reach the resolver.
    ThreeWay,
}

/// A resolver's verdict on one conflicted key.
#[derive(Debug, Clone, PartialEq)]
#[allow(clippy::large_enum_variant)]
pub enum Resolution {
    /// Keep our side's citation.
    Ours,
    /// Keep their side's citation.
    Theirs,
    /// Keep a caller-supplied citation (e.g. hand-merged by the user).
    Custom(Citation),
    /// Drop the entry entirely.
    Drop,
    /// Refuse: `merge_cite` fails with [`CiteError::UnresolvedConflict`].
    Unresolved,
}

/// Decides conflicted keys. The CLI implements this interactively ("showing
/// them to the user"); programmatic callers use the built-ins or a closure.
pub trait ConflictResolver {
    /// Called once per conflicted key. `ours`/`theirs` are `None` for
    /// delete-vs-modify citation conflicts (only possible under
    /// [`MergeStrategy::ThreeWay`]); `base` is the merge base's entry.
    fn resolve(
        &mut self,
        path: &RepoPath,
        ours: Option<&Citation>,
        theirs: Option<&Citation>,
        base: Option<&Citation>,
    ) -> Resolution;
}

/// Resolver that always keeps our side.
#[derive(Debug, Default, Clone, Copy)]
pub struct PreferOurs;

impl ConflictResolver for PreferOurs {
    fn resolve(
        &mut self,
        _: &RepoPath,
        ours: Option<&Citation>,
        _: Option<&Citation>,
        _: Option<&Citation>,
    ) -> Resolution {
        if ours.is_some() {
            Resolution::Ours
        } else {
            Resolution::Drop
        }
    }
}

/// Resolver that always keeps their side.
#[derive(Debug, Default, Clone, Copy)]
pub struct PreferTheirs;

impl ConflictResolver for PreferTheirs {
    fn resolve(
        &mut self,
        _: &RepoPath,
        _: Option<&Citation>,
        theirs: Option<&Citation>,
        _: Option<&Citation>,
    ) -> Resolution {
        if theirs.is_some() {
            Resolution::Theirs
        } else {
            Resolution::Drop
        }
    }
}

/// Resolver that refuses every conflict (merge fails loudly).
#[derive(Debug, Default, Clone, Copy)]
pub struct FailOnConflict;

impl ConflictResolver for FailOnConflict {
    fn resolve(
        &mut self,
        _: &RepoPath,
        _: Option<&Citation>,
        _: Option<&Citation>,
        _: Option<&Citation>,
    ) -> Resolution {
        Resolution::Unresolved
    }
}

/// Adapter turning a closure into a [`ConflictResolver`].
pub struct FnResolver<F>(pub F);

impl<F> ConflictResolver for FnResolver<F>
where
    F: FnMut(&RepoPath, Option<&Citation>, Option<&Citation>, Option<&Citation>) -> Resolution,
{
    fn resolve(
        &mut self,
        path: &RepoPath,
        ours: Option<&Citation>,
        theirs: Option<&Citation>,
        base: Option<&Citation>,
    ) -> Resolution {
        (self.0)(path, ours, theirs, base)
    }
}

/// Record of one conflicted key and how it was settled.
#[derive(Debug, Clone, PartialEq)]
pub struct CitationConflict {
    /// The conflicted key.
    pub path: RepoPath,
    /// The resolution that was applied.
    pub taken: Resolution,
}

/// Outcome of [`CitedRepo::merge_cite`].
#[derive(Debug, Clone)]
pub enum MergeCiteOutcome {
    /// Nothing to do; the other branch is already contained in ours.
    AlreadyUpToDate,
    /// Fast-forward: our branch simply advanced; no citation merging
    /// needed (there is only one citation file).
    FastForwarded(ObjectId),
    /// A merge commit was created with the merged citation file.
    Merged(ObjectId),
    /// Regular files conflicted. The worktree holds the conflict-marked
    /// files plus the already-merged `citation.cite`; resolve the files
    /// and call [`CitedRepo::commit_resolved_merge`] with these parents.
    FileConflicts {
        /// The conflicted regular files.
        conflicts: Vec<Conflict>,
        /// Parents for the resolution commit.
        parents: Vec<ObjectId>,
    },
}

/// Full report of a `MergeCite`.
#[derive(Debug, Clone)]
pub struct MergeCiteReport {
    /// What happened at the version level.
    pub outcome: MergeCiteOutcome,
    /// Citation-key conflicts and their resolutions.
    pub citation_conflicts: Vec<CitationConflict>,
    /// Citation entries dropped because the Git merge deleted their paths.
    pub dropped: Vec<RepoPath>,
}

/// Merges two citation functions (already loaded) under a strategy.
///
/// `exists` reports whether a path survives in the merged tree — entries
/// whose nodes were deleted by the Git merge are dropped, per §3.
pub fn merge_functions(
    ours: &CitationFunction,
    theirs: &CitationFunction,
    base: Option<&CitationFunction>,
    strategy: MergeStrategy,
    resolver: &mut dyn ConflictResolver,
    exists: impl Fn(&RepoPath, bool) -> bool,
) -> Result<(CitationFunction, Vec<CitationConflict>, Vec<RepoPath>)> {
    let mut conflicts = Vec::new();
    let mut merged = ours.clone();

    // Key union with conflict handling.
    let mut keys: Vec<RepoPath> = ours.paths().cloned().collect();
    for k in theirs.paths() {
        if !ours.contains(k) {
            keys.push(k.clone());
        }
    }
    keys.sort();

    for key in keys {
        let o = ours.get(&key);
        let t = theirs.get(&key);
        let b = base.and_then(|f| f.get(&key));
        let is_dir = theirs
            .entry(&key)
            .or_else(|| ours.entry(&key))
            .map(|e| e.is_dir)
            .unwrap_or(false);
        match (o, t) {
            (Some(oc), Some(tc)) if oc == tc => {} // agree — union keeps one
            (Some(oc), Some(tc)) => {
                // Same key, different values: the paper's conflict case.
                // ThreeWay auto-resolutions of one-sided edits are not
                // conflicts at all (that is the point of the strategy), so
                // they are applied silently.
                let (taken, record) = match strategy {
                    MergeStrategy::Ours => (Resolution::Ours, true),
                    MergeStrategy::Theirs => (Resolution::Theirs, true),
                    MergeStrategy::Union => (resolver.resolve(&key, Some(oc), Some(tc), b), true),
                    MergeStrategy::ThreeWay => match b {
                        Some(bc) if bc == oc => (Resolution::Theirs, false), // only theirs edited
                        Some(bc) if bc == tc => (Resolution::Ours, false),   // only ours edited
                        _ => (resolver.resolve(&key, Some(oc), Some(tc), b), true),
                    },
                };
                apply_resolution(&mut merged, &key, is_dir, &taken, o, t)?;
                if record {
                    conflicts.push(CitationConflict {
                        path: key.clone(),
                        taken,
                    });
                }
            }
            (Some(oc), None) => {
                // Union semantics keep our entry. Under ThreeWay, honor a
                // one-sided deletion: if theirs deleted it and we did not
                // change it since base, drop it.
                if strategy == MergeStrategy::ThreeWay {
                    match b {
                        // theirs deleted, ours unchanged → deletion wins.
                        // (The root cannot reach this arm: both functions
                        // always contain it.)
                        Some(bc) if bc == oc && !key.is_root() => {
                            let _ = merged.remove(&key);
                        }
                        Some(_) => {
                            // ours edited, theirs deleted → conflict.
                            let taken = resolver.resolve(&key, Some(oc), None, b);
                            apply_resolution(&mut merged, &key, is_dir, &taken, o, t)?;
                            conflicts.push(CitationConflict {
                                path: key.clone(),
                                taken,
                            });
                        }
                        None => {} // we added it; keep
                    }
                }
            }
            (None, Some(tc)) => {
                if strategy == MergeStrategy::ThreeWay {
                    match b {
                        Some(bc) if bc == tc => {
                            // ours deleted, theirs unchanged → stay deleted.
                        }
                        Some(_) => {
                            let taken = resolver.resolve(&key, None, Some(tc), b);
                            apply_resolution(&mut merged, &key, is_dir, &taken, o, t)?;
                            conflicts.push(CitationConflict {
                                path: key.clone(),
                                taken,
                            });
                        }
                        None => {
                            merged.set(key.clone(), tc.clone(), is_dir);
                        }
                    }
                } else {
                    // Union: their entry joins.
                    merged.set(key.clone(), tc.clone(), is_dir);
                }
            }
            (None, None) => unreachable!("key came from one of the functions"),
        }
    }

    // Drop entries whose nodes were deleted by the Git merge.
    let dropped = merged.retain(|p, e| exists(p, e.is_dir));
    Ok((merged, conflicts, dropped))
}

fn apply_resolution(
    merged: &mut CitationFunction,
    key: &RepoPath,
    is_dir: bool,
    taken: &Resolution,
    ours: Option<&Citation>,
    theirs: Option<&Citation>,
) -> Result<()> {
    match taken {
        Resolution::Ours => {
            match ours {
                Some(c) => {
                    merged.set(key.clone(), c.clone(), is_dir);
                }
                None if !key.is_root() => {
                    let _ = merged.remove(key);
                }
                None => {}
            }
            Ok(())
        }
        Resolution::Theirs => {
            match theirs {
                Some(c) => {
                    merged.set(key.clone(), c.clone(), is_dir);
                }
                None if !key.is_root() => {
                    let _ = merged.remove(key);
                }
                None => {}
            }
            Ok(())
        }
        Resolution::Custom(c) => {
            merged.set(key.clone(), c.clone(), is_dir);
            Ok(())
        }
        Resolution::Drop => {
            if key.is_root() {
                return Err(CiteError::RootCitationRequired);
            }
            let _ = merged.remove(key);
            Ok(())
        }
        Resolution::Unresolved => Err(CiteError::UnresolvedConflict(key.clone())),
    }
}

impl CitedRepo {
    /// `MergeCite`: merges `other` into the current branch, merging
    /// regular files by Git rules and the citation files by the selected
    /// strategy.
    pub fn merge_cite(
        &mut self,
        other: &str,
        author: Signature,
        message: impl Into<String>,
        strategy: MergeStrategy,
        resolver: &mut dyn ConflictResolver,
    ) -> Result<MergeCiteReport> {
        let message = message.into();
        let ours_tip = self.repo().head_commit().map_err(CiteError::Git)?;
        let theirs_tip = self.repo().branch_tip(other).map_err(CiteError::Git)?;
        let base = merge_base(self.repo().odb(), ours_tip, theirs_tip).map_err(CiteError::Git)?;

        if base == Some(theirs_tip) {
            return Ok(MergeCiteReport {
                outcome: MergeCiteOutcome::AlreadyUpToDate,
                citation_conflicts: Vec::new(),
                dropped: Vec::new(),
            });
        }
        if base == Some(ours_tip) {
            let branch = self
                .repo()
                .current_branch()
                .ok_or_else(|| {
                    CiteError::Git(gitlite::GitError::BadBranchName("detached HEAD".into()))
                })?
                .to_owned();
            self.repo_mut()
                .set_branch(&branch, theirs_tip)
                .map_err(CiteError::Git)?;
            self.checkout_branch(&branch)?;
            return Ok(MergeCiteReport {
                outcome: MergeCiteOutcome::FastForwarded(theirs_tip),
                citation_conflicts: Vec::new(),
                dropped: Vec::new(),
            });
        }

        // Load the three citation functions.
        let ours_func = self.function_at(ours_tip)?;
        let theirs_func = self.function_at(theirs_tip)?;
        let base_func = match base {
            Some(b) => self.function_at(b).ok(),
            None => None,
        };

        // Tree-level merge with citation.cite excluded.
        let cite = citation_path();
        let strip = |mut l: BTreeMap<RepoPath, ObjectId>| {
            l.remove(&cite);
            l
        };
        let base_listing = match base {
            Some(b) => strip(self.repo().snapshot(b).map_err(CiteError::Git)?),
            None => BTreeMap::new(),
        };
        let ours_listing = strip(self.repo().snapshot(ours_tip).map_err(CiteError::Git)?);
        let theirs_listing = strip(self.repo().snapshot(theirs_tip).map_err(CiteError::Git)?);
        let branch_name = self.repo().current_branch().unwrap_or("HEAD").to_owned();
        let labels = MergeLabels {
            ours: &branch_name,
            base: "base",
            theirs: other,
        };
        let opts = MergeOptions {
            exclude: vec![cite.clone()],
        };
        let tree_merge = merge_listings(
            self.repo_mut().odb_mut(),
            &base_listing,
            &ours_listing,
            &theirs_listing,
            labels,
            &opts,
        );

        // Merge the citation functions against the merged tree.
        let merged_listing = tree_merge.listing.clone();
        let exists = |p: &RepoPath, is_dir: bool| -> bool {
            if p.is_root() {
                return true;
            }
            if is_dir {
                merged_listing.keys().any(|f| f.starts_with(p) && f != p)
            } else {
                merged_listing.contains_key(p)
            }
        };
        let (merged_func, citation_conflicts, dropped) = merge_functions(
            &ours_func,
            &theirs_func,
            base_func.as_ref(),
            strategy,
            resolver,
            exists,
        )?;

        // Write the merged citation file into the final listing.
        let mut final_listing = tree_merge.listing;
        let cite_blob = self
            .repo_mut()
            .odb_mut()
            .put_blob(file::to_text(&merged_func).into_bytes());
        final_listing.insert(cite.clone(), cite_blob);
        let tree = write_tree_from_listing(self.repo_mut().odb_mut(), &final_listing);
        let parents = vec![ours_tip, theirs_tip];

        if tree_merge.conflicts.is_empty() {
            let commit = self
                .repo_mut()
                .commit_merge(tree, parents, author, message)
                .map_err(CiteError::Git)?;
            self.install_function(merged_func)?;
            Ok(MergeCiteReport {
                outcome: MergeCiteOutcome::Merged(commit),
                citation_conflicts,
                dropped,
            })
        } else {
            // Load the conflicted tree (including the merged citation
            // file) into the worktree for manual resolution.
            let wt = read_tree(self.repo().odb(), tree).map_err(CiteError::Git)?;
            *self.repo_mut().worktree_mut() = wt;
            self.install_function(merged_func)?;
            Ok(MergeCiteReport {
                outcome: MergeCiteOutcome::FileConflicts {
                    conflicts: tree_merge.conflicts,
                    parents,
                },
                citation_conflicts,
                dropped,
            })
        }
    }

    /// Completes a conflicted `MergeCite` after the user fixed the marked
    /// files in the worktree.
    pub fn commit_resolved_merge(
        &mut self,
        parents: Vec<ObjectId>,
        author: Signature,
        message: impl Into<String>,
    ) -> Result<ObjectId> {
        // Snapshot the resolved worktree (citation file included — it was
        // kept in sync by install_function).
        let mut listing = self.listing_sans_cite();
        let cite_text = file::to_text(self.function());
        let cite_blob = self.repo_mut().odb_mut().put_blob(cite_text.into_bytes());
        listing.insert(citation_path(), cite_blob);
        let tree = write_tree_from_listing(self.repo_mut().odb_mut(), &listing);
        self.repo_mut()
            .commit_merge(tree, parents, author, message)
            .map_err(CiteError::Git)
    }

    /// Reads the citation function stored in a committed version.
    pub fn function_at(&self, version: ObjectId) -> Result<CitationFunction> {
        let text = self
            .repo()
            .file_at(version, &citation_path())
            .map_err(|_| {
                CiteError::BadCitationFile(format!(
                    "version {} has no citation.cite",
                    version.short()
                ))
            })?;
        file::parse(&String::from_utf8_lossy(&text))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::citation::Citation;
    use gitlite::path;

    fn sig(n: &str, t: i64) -> Signature {
        Signature::new(n, format!("{n}@x"), t)
    }

    fn cite(name: &str) -> Citation {
        Citation::builder(name, "o")
            .url(format!("https://x/{name}"))
            .build()
    }

    /// Repo with a base commit, a `dev` branch, both carrying citations.
    fn repo_with_branches() -> CitedRepo {
        let mut r = CitedRepo::init("P1", "Leshang", "https://hub/P1");
        r.write_file(&path("shared.txt"), &b"s1\ns2\ns3\n"[..])
            .unwrap();
        r.write_file(&path("main-only.txt"), &b"m\n"[..]).unwrap();
        r.add_cite(&path("shared.txt"), cite("base-shared"))
            .unwrap();
        r.commit(sig("L", 100), "base").unwrap();
        r.create_branch("dev").unwrap();
        r
    }

    #[test]
    fn union_merges_disjoint_citations() {
        let mut r = repo_with_branches();
        // dev adds a citation to a new file.
        r.checkout_branch("dev").unwrap();
        r.write_file(&path("dev.txt"), &b"d\n"[..]).unwrap();
        r.add_cite(&path("dev.txt"), cite("dev-cite")).unwrap();
        r.commit(sig("Yanssie", 200), "dev work").unwrap();
        // main adds a different citation.
        r.checkout_branch("main").unwrap();
        r.add_cite(&path("main-only.txt"), cite("main-cite"))
            .unwrap();
        r.commit(sig("L", 300), "main work").unwrap();

        let report = r
            .merge_cite(
                "dev",
                sig("L", 400),
                "merge dev",
                MergeStrategy::Union,
                &mut FailOnConflict,
            )
            .unwrap();
        assert!(matches!(report.outcome, MergeCiteOutcome::Merged(_)));
        assert!(report.citation_conflicts.is_empty());
        assert!(report.dropped.is_empty());
        // Union holds all three non-root citations.
        assert_eq!(
            r.function().get(&path("dev.txt")).unwrap().repo_name,
            "dev-cite"
        );
        assert_eq!(
            r.function().get(&path("main-only.txt")).unwrap().repo_name,
            "main-cite"
        );
        assert_eq!(
            r.function().get(&path("shared.txt")).unwrap().repo_name,
            "base-shared"
        );
        // And both files exist.
        assert!(r.repo().worktree().is_file(&path("dev.txt")));
    }

    #[test]
    fn union_key_conflict_goes_to_resolver() {
        let mut r = repo_with_branches();
        r.checkout_branch("dev").unwrap();
        r.modify_cite(&path("shared.txt"), cite("dev-version"))
            .unwrap();
        r.commit(sig("Yanssie", 200), "dev recites").unwrap();
        r.checkout_branch("main").unwrap();
        r.modify_cite(&path("shared.txt"), cite("main-version"))
            .unwrap();
        r.commit(sig("L", 300), "main recites").unwrap();

        // Resolver picks theirs.
        let mut resolver = FnResolver(
            |p: &RepoPath, o: Option<&Citation>, t: Option<&Citation>, b: Option<&Citation>| {
                assert_eq!(p, &path("shared.txt"));
                assert_eq!(o.unwrap().repo_name, "main-version");
                assert_eq!(t.unwrap().repo_name, "dev-version");
                assert_eq!(b.unwrap().repo_name, "base-shared");
                Resolution::Theirs
            },
        );
        let report = r
            .merge_cite(
                "dev",
                sig("L", 400),
                "merge",
                MergeStrategy::Union,
                &mut resolver,
            )
            .unwrap();
        assert_eq!(report.citation_conflicts.len(), 1);
        assert_eq!(report.citation_conflicts[0].taken, Resolution::Theirs);
        assert_eq!(
            r.function().get(&path("shared.txt")).unwrap().repo_name,
            "dev-version"
        );
    }

    #[test]
    fn unresolved_conflict_fails_merge() {
        let mut r = repo_with_branches();
        r.checkout_branch("dev").unwrap();
        r.modify_cite(&path("shared.txt"), cite("dev-version"))
            .unwrap();
        r.commit(sig("Y", 200), "dev").unwrap();
        r.checkout_branch("main").unwrap();
        r.modify_cite(&path("shared.txt"), cite("main-version"))
            .unwrap();
        r.commit(sig("L", 300), "main").unwrap();
        let err = r
            .merge_cite(
                "dev",
                sig("L", 400),
                "merge",
                MergeStrategy::Union,
                &mut FailOnConflict,
            )
            .unwrap_err();
        assert_eq!(err, CiteError::UnresolvedConflict(path("shared.txt")));
    }

    #[test]
    fn ours_theirs_strategies_skip_resolver() {
        for (strategy, expect) in [
            (MergeStrategy::Ours, "main-version"),
            (MergeStrategy::Theirs, "dev-version"),
        ] {
            let mut r = repo_with_branches();
            r.checkout_branch("dev").unwrap();
            r.modify_cite(&path("shared.txt"), cite("dev-version"))
                .unwrap();
            r.commit(sig("Y", 200), "dev").unwrap();
            r.checkout_branch("main").unwrap();
            r.modify_cite(&path("shared.txt"), cite("main-version"))
                .unwrap();
            r.commit(sig("L", 300), "main").unwrap();
            let report = r
                .merge_cite("dev", sig("L", 400), "merge", strategy, &mut FailOnConflict)
                .unwrap();
            assert_eq!(report.citation_conflicts.len(), 1);
            assert_eq!(
                r.function().get(&path("shared.txt")).unwrap().repo_name,
                expect
            );
        }
    }

    #[test]
    fn three_way_auto_resolves_one_sided_edit() {
        let mut r = repo_with_branches();
        r.checkout_branch("dev").unwrap();
        r.modify_cite(&path("shared.txt"), cite("dev-version"))
            .unwrap();
        r.commit(sig("Y", 200), "dev").unwrap();
        r.checkout_branch("main").unwrap();
        // main makes an unrelated change so the merge is non-trivial.
        r.write_file(&path("other.txt"), &b"x\n"[..]).unwrap();
        r.commit(sig("L", 300), "main").unwrap();
        let report = r
            .merge_cite(
                "dev",
                sig("L", 400),
                "merge",
                MergeStrategy::ThreeWay,
                &mut FailOnConflict,
            )
            .unwrap();
        // One-sided edit resolves without the resolver (which would fail).
        assert!(matches!(report.outcome, MergeCiteOutcome::Merged(_)));
        assert_eq!(
            r.function().get(&path("shared.txt")).unwrap().repo_name,
            "dev-version"
        );
        // It is not even recorded as a conflict (base == ours).
        assert!(report.citation_conflicts.is_empty());
    }

    #[test]
    fn three_way_honors_one_sided_deletion() {
        let mut r = repo_with_branches();
        // dev deletes the citation (file stays).
        r.checkout_branch("dev").unwrap();
        r.del_cite(&path("shared.txt")).unwrap();
        r.commit(sig("Y", 200), "dev uncites").unwrap();
        r.checkout_branch("main").unwrap();
        r.write_file(&path("other.txt"), &b"x\n"[..]).unwrap();
        r.commit(sig("L", 300), "main").unwrap();

        // Union resurrects the entry (the paper's known simplification)...
        let mut union_repo = r.clone();
        union_repo
            .merge_cite(
                "dev",
                sig("L", 400),
                "merge",
                MergeStrategy::Union,
                &mut FailOnConflict,
            )
            .unwrap();
        assert!(union_repo.function().contains(&path("shared.txt")));

        // ...while ThreeWay honors the deletion.
        let report = r
            .merge_cite(
                "dev",
                sig("L", 400),
                "merge",
                MergeStrategy::ThreeWay,
                &mut FailOnConflict,
            )
            .unwrap();
        assert!(matches!(report.outcome, MergeCiteOutcome::Merged(_)));
        assert!(!r.function().contains(&path("shared.txt")));
    }

    #[test]
    fn three_way_delete_vs_edit_reaches_resolver() {
        let mut r = repo_with_branches();
        r.checkout_branch("dev").unwrap();
        r.del_cite(&path("shared.txt")).unwrap();
        r.commit(sig("Y", 200), "dev uncites").unwrap();
        r.checkout_branch("main").unwrap();
        r.modify_cite(&path("shared.txt"), cite("main-edit"))
            .unwrap();
        r.commit(sig("L", 300), "main recites").unwrap();
        let mut called = false;
        let mut resolver = FnResolver(
            |_: &RepoPath, o: Option<&Citation>, t: Option<&Citation>, _: Option<&Citation>| {
                called = true;
                assert!(o.is_some());
                assert!(t.is_none());
                Resolution::Drop
            },
        );
        let report = r
            .merge_cite(
                "dev",
                sig("L", 400),
                "merge",
                MergeStrategy::ThreeWay,
                &mut resolver,
            )
            .unwrap();
        assert!(called);
        assert!(!r.function().contains(&path("shared.txt")));
        assert_eq!(report.citation_conflicts.len(), 1);
    }

    #[test]
    fn entries_for_files_deleted_by_git_merge_are_dropped() {
        let mut r = repo_with_branches();
        // dev deletes main-only.txt (the file), which main then cites — the
        // git merge removes the file, so the citation must go too.
        r.checkout_branch("dev").unwrap();
        r.remove(&path("main-only.txt")).unwrap();
        r.commit(sig("Y", 200), "dev deletes file").unwrap();
        r.checkout_branch("main").unwrap();
        r.add_cite(&path("main-only.txt"), cite("late-cite"))
            .unwrap();
        // Also make a content change so merge isn't FF.
        r.write_file(&path("other.txt"), &b"x\n"[..]).unwrap();
        r.commit(sig("L", 300), "main cites the doomed file")
            .unwrap();
        let report = r
            .merge_cite(
                "dev",
                sig("L", 400),
                "merge",
                MergeStrategy::Union,
                &mut FailOnConflict,
            )
            .unwrap();
        // Clean delete (file unmodified on main), so no file conflict; and
        // the citation entry is dropped with it.
        assert!(matches!(report.outcome, MergeCiteOutcome::Merged(_)));
        assert_eq!(report.dropped, vec![path("main-only.txt")]);
        assert!(!r.function().contains(&path("main-only.txt")));
        assert!(!r.repo().worktree().is_file(&path("main-only.txt")));
    }

    #[test]
    fn file_conflicts_surface_with_merged_citations() {
        let mut r = repo_with_branches();
        r.checkout_branch("dev").unwrap();
        r.write_file(&path("shared.txt"), &b"s1\nDEV\ns3\n"[..])
            .unwrap();
        r.write_file(&path("dev.txt"), &b"d\n"[..]).unwrap();
        r.add_cite(&path("dev.txt"), cite("dev-cite")).unwrap();
        r.commit(sig("Y", 200), "dev").unwrap();
        r.checkout_branch("main").unwrap();
        r.write_file(&path("shared.txt"), &b"s1\nMAIN\ns3\n"[..])
            .unwrap();
        r.commit(sig("L", 300), "main").unwrap();
        let report = r
            .merge_cite(
                "dev",
                sig("L", 400),
                "merge",
                MergeStrategy::Union,
                &mut FailOnConflict,
            )
            .unwrap();
        let MergeCiteOutcome::FileConflicts { conflicts, parents } = report.outcome else {
            panic!("expected file conflicts");
        };
        assert_eq!(conflicts.len(), 1);
        assert_eq!(conflicts[0].path, path("shared.txt"));
        // The merged citation function is already installed.
        assert!(r.function().contains(&path("dev.txt")));
        // Resolve and complete.
        r.write_file(&path("shared.txt"), &b"s1\nRESOLVED\ns3\n"[..])
            .unwrap();
        let mc = r
            .commit_resolved_merge(parents, sig("L", 500), "resolved")
            .unwrap();
        let c = r.repo().commit_obj(mc).unwrap();
        assert_eq!(c.parents.len(), 2);
        // Final version carries both the resolution and the citations.
        let func = r.function_at(mc).unwrap();
        assert!(func.contains(&path("dev.txt")));
        assert_eq!(
            r.repo().file_at(mc, &path("shared.txt")).unwrap().as_ref(),
            b"s1\nRESOLVED\ns3\n"
        );
    }

    #[test]
    fn fast_forward_and_up_to_date() {
        let mut r = repo_with_branches();
        r.checkout_branch("dev").unwrap();
        r.write_file(&path("dev.txt"), &b"d\n"[..]).unwrap();
        r.add_cite(&path("dev.txt"), cite("dev-cite")).unwrap();
        r.commit(sig("Y", 200), "dev").unwrap();
        r.checkout_branch("main").unwrap();
        let report = r
            .merge_cite(
                "dev",
                sig("L", 300),
                "merge",
                MergeStrategy::Union,
                &mut FailOnConflict,
            )
            .unwrap();
        assert!(matches!(report.outcome, MergeCiteOutcome::FastForwarded(_)));
        // Citation function followed the fast-forward.
        assert!(r.function().contains(&path("dev.txt")));
        let report = r
            .merge_cite(
                "dev",
                sig("L", 400),
                "again",
                MergeStrategy::Union,
                &mut FailOnConflict,
            )
            .unwrap();
        assert!(matches!(report.outcome, MergeCiteOutcome::AlreadyUpToDate));
    }

    #[test]
    fn root_conflict_resolves_without_losing_root() {
        let mut r = repo_with_branches();
        r.checkout_branch("dev").unwrap();
        let mut dev_root = r.function().root().clone();
        dev_root.note = Some("dev note".into());
        r.modify_cite(&RepoPath::root(), dev_root).unwrap();
        r.commit(sig("Y", 200), "dev root").unwrap();
        r.checkout_branch("main").unwrap();
        let mut main_root = r.function().root().clone();
        main_root.note = Some("main note".into());
        r.modify_cite(&RepoPath::root(), main_root).unwrap();
        r.commit(sig("L", 300), "main root").unwrap();
        let report = r
            .merge_cite(
                "dev",
                sig("L", 400),
                "merge",
                MergeStrategy::Union,
                &mut PreferOurs,
            )
            .unwrap();
        assert_eq!(report.citation_conflicts.len(), 1);
        assert!(report.citation_conflicts[0].path.is_root());
        assert_eq!(r.function().root().note.as_deref(), Some("main note"));
    }

    use gitlite::RepoPath;
}
