//! The [`Citation`] record — the value side of a citation function entry.
//!
//! Field names and shapes follow Listing 1 of the paper exactly
//! (`repoName`, `owner`, `committedDate`, `commitID`, `url`, `authorList`),
//! with optional extensions (`doi`, `license`, `version`, `note`) used by
//! the Zenodo/Software-Heritage integrations and free-form `extra` fields
//! for forward compatibility.

use crate::error::{CiteError, Result};
use sjson::{Object, Value};
use std::fmt;

/// A citation attached to a node of a project version.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Citation {
    /// Repository name, e.g. `"Data_citation_demo"`.
    pub repo_name: String,
    /// Owner / maintainer display name, e.g. `"Yinjun Wu"`.
    pub owner: String,
    /// ISO-8601 UTC commit date, e.g. `"2018-09-04T02:35:20Z"`.
    pub committed_date: String,
    /// Abbreviated commit id, e.g. `"bbd248a"`.
    pub commit_id: String,
    /// Web address of the cited artifact.
    pub url: String,
    /// Credited authors, in order.
    pub author_list: Vec<String>,
    /// Optional DOI (minted by an archive such as Zenodo).
    pub doi: Option<String>,
    /// Optional license identifier.
    pub license: Option<String>,
    /// Optional human-readable version (tag) name.
    pub version: Option<String>,
    /// Optional free-text note.
    pub note: Option<String>,
    /// Any additional key/value fields, preserved verbatim.
    pub extra: Object,
}

impl Citation {
    /// Starts a builder with the four identity fields every citation needs.
    pub fn builder(repo_name: impl Into<String>, owner: impl Into<String>) -> CitationBuilder {
        CitationBuilder {
            citation: Citation {
                repo_name: repo_name.into(),
                owner: owner.into(),
                ..Citation::default()
            },
        }
    }

    /// Serializes to the JSON object shape used inside `citation.cite`.
    pub fn to_value(&self) -> Value {
        let mut o = Object::new();
        o.insert("repoName", self.repo_name.as_str());
        o.insert("owner", self.owner.as_str());
        o.insert("committedDate", self.committed_date.as_str());
        o.insert("commitID", self.commit_id.as_str());
        o.insert("url", self.url.as_str());
        o.insert(
            "authorList",
            Value::Array(
                self.author_list
                    .iter()
                    .map(|a| Value::from(a.as_str()))
                    .collect(),
            ),
        );
        if let Some(doi) = &self.doi {
            o.insert("doi", doi.as_str());
        }
        if let Some(license) = &self.license {
            o.insert("license", license.as_str());
        }
        if let Some(version) = &self.version {
            o.insert("version", version.as_str());
        }
        if let Some(note) = &self.note {
            o.insert("note", note.as_str());
        }
        for (k, v) in self.extra.iter() {
            o.insert(k, v.clone());
        }
        Value::Object(o)
    }

    /// Parses the JSON object shape back into a citation.
    ///
    /// Unknown fields are preserved in [`Citation::extra`]; the known
    /// fields are permissive (missing → empty) except that the value must
    /// be an object and `authorList`, when present, must be an array of
    /// strings.
    pub fn from_value(value: &Value) -> Result<Citation> {
        let obj = value
            .as_object()
            .ok_or_else(|| CiteError::BadCitationFile("citation entry must be an object".into()))?;
        let get_str = |key: &str| -> Result<String> {
            match obj.get(key) {
                None | Some(Value::Null) => Ok(String::new()),
                Some(Value::String(s)) => Ok(s.clone()),
                Some(_) => Err(CiteError::BadCitationFile(format!(
                    "field {key:?} must be a string"
                ))),
            }
        };
        let mut authors = Vec::new();
        if let Some(v) = obj.get("authorList") {
            let arr = v
                .as_array()
                .ok_or_else(|| CiteError::BadCitationFile("authorList must be an array".into()))?;
            for a in arr {
                let s = a.as_str().ok_or_else(|| {
                    CiteError::BadCitationFile("authorList entries must be strings".into())
                })?;
                authors.push(s.to_owned());
            }
        }
        let opt = |key: &str| -> Result<Option<String>> {
            match obj.get(key) {
                None | Some(Value::Null) => Ok(None),
                Some(Value::String(s)) => Ok(Some(s.clone())),
                Some(_) => Err(CiteError::BadCitationFile(format!(
                    "field {key:?} must be a string"
                ))),
            }
        };
        const KNOWN: [&str; 10] = [
            "repoName",
            "owner",
            "committedDate",
            "commitID",
            "url",
            "authorList",
            "doi",
            "license",
            "version",
            "note",
        ];
        let mut extra = Object::new();
        for (k, v) in obj.iter() {
            if !KNOWN.contains(&k) {
                extra.insert(k, v.clone());
            }
        }
        Ok(Citation {
            repo_name: get_str("repoName")?,
            owner: get_str("owner")?,
            committed_date: get_str("committedDate")?,
            commit_id: get_str("commitID")?,
            url: get_str("url")?,
            author_list: authors,
            doi: opt("doi")?,
            license: opt("license")?,
            version: opt("version")?,
            note: opt("note")?,
            extra,
        })
    }

    /// A copy with version-specific fields replaced — used when the root
    /// citation is resolved for a concrete version V: the static root entry
    /// supplies identity (owner, name, url, authors) while `commitID` /
    /// `committedDate` come from V itself.
    pub fn stamped(&self, commit_id: &str, committed_date: &str) -> Citation {
        let mut c = self.clone();
        c.commit_id = commit_id.to_owned();
        c.committed_date = committed_date.to_owned();
        c
    }
}

impl fmt::Display for Citation {
    /// A compact single-line rendering used in logs and the CLI.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({}). {} [{}] {}",
            self.author_list.join(", "),
            self.committed_date,
            self.repo_name,
            self.commit_id,
            self.url
        )
    }
}

/// Fluent constructor for [`Citation`].
#[derive(Debug, Clone)]
pub struct CitationBuilder {
    citation: Citation,
}

impl CitationBuilder {
    /// Sets the commit id and ISO date.
    pub fn commit(mut self, id: impl Into<String>, date: impl Into<String>) -> Self {
        self.citation.commit_id = id.into();
        self.citation.committed_date = date.into();
        self
    }

    /// Sets the URL.
    pub fn url(mut self, url: impl Into<String>) -> Self {
        self.citation.url = url.into();
        self
    }

    /// Adds one author.
    pub fn author(mut self, author: impl Into<String>) -> Self {
        self.citation.author_list.push(author.into());
        self
    }

    /// Replaces the author list.
    pub fn authors<I: IntoIterator<Item = S>, S: Into<String>>(mut self, authors: I) -> Self {
        self.citation.author_list = authors.into_iter().map(Into::into).collect();
        self
    }

    /// Sets the DOI.
    pub fn doi(mut self, doi: impl Into<String>) -> Self {
        self.citation.doi = Some(doi.into());
        self
    }

    /// Sets the license.
    pub fn license(mut self, license: impl Into<String>) -> Self {
        self.citation.license = Some(license.into());
        self
    }

    /// Sets the version name.
    pub fn version(mut self, version: impl Into<String>) -> Self {
        self.citation.version = Some(version.into());
        self
    }

    /// Sets a free-text note.
    pub fn note(mut self, note: impl Into<String>) -> Self {
        self.citation.note = Some(note.into());
        self
    }

    /// Adds an extra key/value field.
    pub fn extra(mut self, key: impl Into<String>, value: impl Into<Value>) -> Self {
        self.citation.extra.insert(key, value);
        self
    }

    /// Finishes the builder.
    pub fn build(self) -> Citation {
        self.citation
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn listing1_root() -> Citation {
        Citation::builder("Data_citation_demo", "Yinjun Wu")
            .commit("bbd248a", "2018-09-04T02:35:20Z")
            .url("https://github.com/thuwuyinjun/Data_citation_demo")
            .author("Yinjun Wu")
            .build()
    }

    #[test]
    fn builder_sets_fields() {
        let c = listing1_root();
        assert_eq!(c.repo_name, "Data_citation_demo");
        assert_eq!(c.owner, "Yinjun Wu");
        assert_eq!(c.commit_id, "bbd248a");
        assert_eq!(c.committed_date, "2018-09-04T02:35:20Z");
        assert_eq!(c.author_list, vec!["Yinjun Wu"]);
        assert!(c.doi.is_none());
    }

    #[test]
    fn json_round_trip_minimal() {
        let c = listing1_root();
        let v = c.to_value();
        assert_eq!(Citation::from_value(&v).unwrap(), c);
    }

    #[test]
    fn json_round_trip_full() {
        let c = Citation::builder("r", "o")
            .commit("abc1234", "2020-01-01T00:00:00Z")
            .url("https://example.org/r")
            .authors(["A", "B"])
            .doi("10.5281/zenodo.1234")
            .license("MIT")
            .version("v1.2.0")
            .note("imported")
            .extra("stars", 42i64)
            .build();
        let v = c.to_value();
        let back = Citation::from_value(&v).unwrap();
        assert_eq!(back, c);
        assert_eq!(back.extra.get("stars").unwrap().as_i64(), Some(42));
    }

    #[test]
    fn json_field_order_matches_listing1() {
        let keys: Vec<String> = listing1_root()
            .to_value()
            .as_object()
            .unwrap()
            .keys()
            .map(str::to_owned)
            .collect();
        assert_eq!(
            keys,
            vec![
                "repoName",
                "owner",
                "committedDate",
                "commitID",
                "url",
                "authorList"
            ]
        );
    }

    #[test]
    fn from_value_tolerates_missing_fields() {
        let v = sjson::parse(r#"{"repoName": "x"}"#).unwrap();
        let c = Citation::from_value(&v).unwrap();
        assert_eq!(c.repo_name, "x");
        assert_eq!(c.owner, "");
        assert!(c.author_list.is_empty());
    }

    #[test]
    fn from_value_rejects_bad_shapes() {
        assert!(Citation::from_value(&sjson::parse("[1]").unwrap()).is_err());
        assert!(Citation::from_value(&sjson::parse(r#"{"repoName": 5}"#).unwrap()).is_err());
        assert!(Citation::from_value(&sjson::parse(r#"{"authorList": "x"}"#).unwrap()).is_err());
        assert!(Citation::from_value(&sjson::parse(r#"{"authorList": [1]}"#).unwrap()).is_err());
        assert!(Citation::from_value(&sjson::parse(r#"{"doi": []}"#).unwrap()).is_err());
    }

    #[test]
    fn unknown_fields_preserved() {
        let v = sjson::parse(r#"{"repoName": "x", "customField": {"nested": true}}"#).unwrap();
        let c = Citation::from_value(&v).unwrap();
        assert!(c.extra.contains_key("customField"));
        let back = c.to_value();
        assert_eq!(back["customField"]["nested"].as_bool(), Some(true));
    }

    #[test]
    fn stamped_overrides_version_fields_only() {
        let c = listing1_root();
        let s = c.stamped("1234567", "2019-01-01T00:00:00Z");
        assert_eq!(s.commit_id, "1234567");
        assert_eq!(s.committed_date, "2019-01-01T00:00:00Z");
        assert_eq!(s.repo_name, c.repo_name);
        assert_eq!(s.author_list, c.author_list);
    }

    #[test]
    fn display_is_single_line() {
        let text = listing1_root().to_string();
        assert!(text.contains("Yinjun Wu"));
        assert!(text.contains("bbd248a"));
        assert!(!text.contains('\n'));
    }
}
