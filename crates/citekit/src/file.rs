//! Reading and writing `citation.cite` — the special file GitCite keeps at
//! the root of every project version (paper §3, "Storing Citation
//! Functions").
//!
//! The file is a single JSON object whose keys are citation-function paths
//! (`"/"` for the root, `"/CoreCover/"` for a directory, `"/src/main.rs"`
//! for a file) and whose values are citation records. The rendering is
//! deterministic: root first, remaining keys in path order, two-space
//! pretty-printing — reproducing the shape of Listing 1.

use crate::citation::Citation;
use crate::error::{CiteError, Result};
use crate::function::{CitationFunction, CiteEntry};
use gitlite::{RepoPath, WorkTree};
use sjson::{Object, Value};
use std::collections::BTreeMap;

/// Name of the citation file at the repository root.
pub const CITATION_FILE: &str = "citation.cite";

/// The citation file's path as a [`RepoPath`].
pub fn citation_path() -> RepoPath {
    RepoPath::parse(CITATION_FILE).expect("constant is valid")
}

/// Serializes a citation function to the JSON value form.
pub fn to_value(func: &CitationFunction) -> Value {
    let mut obj = Object::with_capacity(func.len());
    // Root first (Listing 1 starts with "/"), then path order.
    for (path, entry) in func.iter() {
        let key = path.to_cite_key(entry.is_dir);
        obj.insert(key, entry.citation.to_value());
    }
    Value::Object(obj)
}

/// Serializes a citation function to pretty JSON text (the on-disk form).
pub fn to_text(func: &CitationFunction) -> String {
    let mut text = to_value(func).to_string_pretty();
    text.push('\n');
    text
}

/// Parses citation-file text.
pub fn parse(text: &str) -> Result<CitationFunction> {
    let value = sjson::parse(text)?;
    from_value(&value)
}

/// Converts the JSON value form back into a citation function.
pub fn from_value(value: &Value) -> Result<CitationFunction> {
    let obj = value
        .as_object()
        .ok_or_else(|| CiteError::BadCitationFile("top level must be an object".into()))?;
    let mut entries: BTreeMap<RepoPath, CiteEntry> = BTreeMap::new();
    for (key, v) in obj.iter() {
        let path = RepoPath::parse(key)
            .map_err(|e| CiteError::BadCitationFile(format!("bad key {key:?}: {e}")))?;
        let is_dir = path.is_root() || key.ends_with('/');
        let citation = Citation::from_value(v)?;
        if entries
            .insert(path.clone(), CiteEntry { citation, is_dir })
            .is_some()
        {
            return Err(CiteError::BadCitationFile(format!(
                "duplicate entry for path {:?}",
                path.to_cite_key(is_dir)
            )));
        }
    }
    CitationFunction::from_entries(entries)
}

/// Reads the citation function from a worktree's `citation.cite`.
/// Returns `Ok(None)` when the file does not exist (a repository that was
/// never citation-enabled — the retrofit module handles those).
pub fn read_worktree(wt: &WorkTree) -> Result<Option<CitationFunction>> {
    let p = citation_path();
    if !wt.is_file(&p) {
        return Ok(None);
    }
    let text = wt.read_text(&p).map_err(CiteError::Git)?;
    parse(&text).map(Some)
}

/// Writes the citation function into a worktree's `citation.cite`.
pub fn write_worktree(wt: &mut WorkTree, func: &CitationFunction) -> Result<()> {
    wt.write(&citation_path(), to_text(func).into_bytes())
        .map_err(CiteError::Git)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gitlite::path;

    fn cite(name: &str, authors: &[&str]) -> Citation {
        Citation::builder(name, "owner")
            .commit("abc1234", "2020-05-01T12:00:00Z")
            .url(format!("https://x/{name}"))
            .authors(authors.iter().copied())
            .build()
    }

    fn sample() -> CitationFunction {
        let mut f = CitationFunction::new(cite("proj", &["A"]));
        f.set(path("CoreCover"), cite("corecover", &["Chen Li"]), true);
        f.set(path("citation/GUI"), cite("gui", &["Yanssie"]), true);
        f.set(path("src/main.rs"), cite("main", &["B"]), false);
        f
    }

    #[test]
    fn text_round_trip() {
        let f = sample();
        let text = to_text(&f);
        let back = parse(&text).unwrap();
        assert_eq!(back, f);
    }

    #[test]
    fn keys_render_listing1_style() {
        let text = to_text(&sample());
        assert!(text.contains("\"/\""));
        assert!(text.contains("\"/CoreCover/\""));
        assert!(text.contains("\"/citation/GUI/\""));
        assert!(text.contains("\"/src/main.rs\""));
        // Root is the first key.
        let first_key = text.find("\"/\"").unwrap();
        let other = text.find("\"/CoreCover/\"").unwrap();
        assert!(first_key < other);
    }

    #[test]
    fn rendering_is_deterministic() {
        assert_eq!(to_text(&sample()), to_text(&sample()));
    }

    #[test]
    fn dir_flag_round_trips_via_trailing_slash() {
        let f = sample();
        let back = parse(&to_text(&f)).unwrap();
        assert!(back.entry(&path("CoreCover")).unwrap().is_dir);
        assert!(!back.entry(&path("src/main.rs")).unwrap().is_dir);
    }

    #[test]
    fn parse_rejects_bad_shapes() {
        assert!(matches!(parse("[1,2]"), Err(CiteError::BadCitationFile(_))));
        assert!(matches!(parse("{"), Err(CiteError::BadCitationFile(_))));
        // Missing root.
        assert!(matches!(
            parse(r#"{"/a": {"repoName": "x"}}"#),
            Err(CiteError::BadCitationFile(_))
        ));
        // Duplicate after normalization: "/a" and "a".
        assert!(matches!(
            parse(r#"{"/": {"repoName": "r"}, "/a": {"repoName": "x"}, "a": {"repoName": "y"}}"#),
            Err(CiteError::BadCitationFile(_))
        ));
        // Bad path key.
        assert!(matches!(
            parse(r#"{"/": {"repoName": "r"}, "/..": {"repoName": "x"}}"#),
            Err(CiteError::BadCitationFile(_))
        ));
    }

    #[test]
    fn worktree_round_trip() {
        let mut wt = WorkTree::new();
        assert!(read_worktree(&wt).unwrap().is_none());
        let f = sample();
        write_worktree(&mut wt, &f).unwrap();
        assert!(wt.is_file(&citation_path()));
        let back = read_worktree(&wt).unwrap().unwrap();
        assert_eq!(back, f);
    }

    #[test]
    fn parses_listing1_fragment() {
        // A cleaned-up version of Listing 1 (the paper's "..." prefixes
        // normalized to absolute keys).
        let text = r#"{
  "/": {
    "repoName": "Data_citation_demo",
    "owner": "Yinjun Wu",
    "committedDate": "2018-09-04T02:35:20Z",
    "commitID": "bbd248a",
    "url": "https://github.com/thuwuyinjun/Data_citation_demo",
    "authorList": ["Yinjun Wu"]
  },
  "/CoreCover/": {
    "repoName": "alu01-corecover",
    "owner": "Chen Li",
    "committedDate": "2018-03-24T00:29:45Z",
    "commitID": "5cc951e",
    "url": "https://github.com/chenlica/alu01-corecover",
    "authorList": ["Chen Li"]
  },
  "/citation/GUI/": {
    "repoName": "Data_citation_demo",
    "owner": "Yinjun Wu",
    "committedDate": "2017-06-16T20:57:06Z",
    "commitID": "2dd6813",
    "url": "https://github.com/thuwuyinjun/Data_citation_demo",
    "authorList": ["Yanssie"]
  }
}"#;
        let f = parse(text).unwrap();
        assert_eq!(f.len(), 3);
        assert_eq!(f.root().commit_id, "bbd248a");
        let (_, c) = f.resolve(&path("CoreCover/algorithm.java"));
        assert_eq!(c.owner, "Chen Li");
        let (_, c) = f.resolve(&path("citation/GUI/app.js"));
        assert_eq!(c.author_list, vec!["Yanssie"]);
        let (_, c) = f.resolve(&path("citation/other.py"));
        assert_eq!(c.owner, "Yinjun Wu");
    }
}
