//! # citekit — the GitCite citation model
//!
//! This crate is the primary contribution of *"Automating Software
//! Citation using GitCite"* (Chen & Davidson): a model and implementation
//! of **software citation with version control**.
//!
//! ## Model (paper §2)
//!
//! * A *project repository* is a DAG of versions; each version is a rooted
//!   directory tree (provided by the [`gitlite`] substrate).
//! * Each version carries a **citation function** ([`CitationFunction`]):
//!   a partial map from tree paths to [`Citation`] records, with the root
//!   always in the active domain.
//! * `Cite(V,P)(n)` resolves a node to its own citation or that of its
//!   *closest cited ancestor* — total because the root is cited.
//!   Alternative interpretations are available via [`ResolvePolicy`].
//! * Citation functions are stored in a `citation.cite` file at the root
//!   of every version (the `file` module), exactly as in the paper's Listing 1.
//!
//! ## Operators (paper §2–3)
//!
//! * [`CitedRepo::add_cite`] / [`CitedRepo::modify_cite`] /
//!   [`CitedRepo::del_cite`] — explicit citation edits.
//! * Carrying through tree edits: renames rewrite keys, deletions drop
//!   entries ([`carry`], run eagerly by [`CitedRepo::rename`] and at
//!   commit time).
//! * [`CitedRepo::merge_cite`] — `MergeCite`: files merge by Git rules,
//!   citation files by union (or the future-work three-way strategy) with
//!   pluggable conflict resolution ([`merge`]).
//! * [`CitedRepo::copy_cite`] — `CopyCite`: subtree copy across
//!   repositories with key migration and effective-citation
//!   materialization ([`copy`]).
//! * [`fork_cite`] — `ForkCite`: repository fork with history and
//!   citations ([`fork`]).
//! * [`retro`] — retroactive citations for legacy repositories
//!   (future work #2).
//!
//! ```
//! use citekit::{Citation, CitedRepo};
//! use gitlite::{path, Signature};
//!
//! let mut repo = CitedRepo::init("P1", "Leshang", "https://hub/P1");
//! repo.write_file(&path("f1.txt"), &b"hello\n"[..]).unwrap();
//! repo.commit(Signature::new("Leshang", "l@upenn.edu", 1), "V1").unwrap();
//!
//! // Before AddCite, f1 resolves to the root citation (C1)...
//! assert_eq!(repo.cite(&path("f1.txt")).unwrap().repo_name, "P1");
//! // ...after AddCite, to its own (C2). (Figure 1, V1 → V2.)
//! let c2 = Citation::builder("P1", "Leshang").author("Leshang").build();
//! repo.add_cite(&path("f1.txt"), c2).unwrap();
//! assert_eq!(repo.cite(&path("f1.txt")).unwrap().author_list, vec!["Leshang"]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod carry;
pub mod citation;
pub mod copy;
pub mod error;
pub mod file;
pub mod fork;
pub mod function;
pub mod history;
pub mod index;
pub mod merge;
pub mod ops;
pub mod retro;
pub mod time;
pub mod validate;

pub use carry::CarryReport;
pub use citation::{Citation, CitationBuilder};
pub use copy::CopyReport;
pub use error::{CiteError, Result};
pub use file::{citation_path, CITATION_FILE};
pub use fork::{fork_cite, fork_cite_into, ForkOptions, ForkOutcome};
pub use function::{CitationFunction, CiteEntry, ResolvePolicy};
pub use history::{diff_functions, CitationEvent, CiteChange};
pub use index::CiteIndex;
pub use merge::{
    CitationConflict, ConflictResolver, FailOnConflict, FnResolver, MergeCiteOutcome,
    MergeCiteReport, MergeStrategy, PreferOurs, PreferTheirs, Resolution,
};
pub use ops::{CitedRepo, CommitOutcome, PrunePolicy};
pub use retro::{retrofit, retrofit_history, RetrofitOptions, RetrofitReport};
pub use time::{format_iso8601, parse_iso8601};
pub use validate::{validate, Violation};
