//! Error type for citation operations.

use gitlite::{GitError, PathError, RepoPath};
use std::fmt;

/// Anything that can go wrong in the citation layer.
#[derive(Debug, Clone, PartialEq)]
pub enum CiteError {
    /// Underlying VCS error.
    Git(GitError),
    /// Invalid path.
    Path(PathError),
    /// `AddCite` on a path that already has an explicit citation
    /// (use `ModifyCite`).
    AlreadyCited(RepoPath),
    /// `ModifyCite`/`DelCite` on a path with no explicit citation.
    NotCited(RepoPath),
    /// `DelCite` on the root: the root must stay in the active domain
    /// (paper §2).
    RootCitationRequired,
    /// A citation operation named a path that does not exist in the
    /// version's tree.
    PathMissing(RepoPath),
    /// Citations may not attach to the citation file itself.
    ReservedPath(RepoPath),
    /// `citation.cite` failed to parse or had an invalid shape.
    BadCitationFile(String),
    /// A `MergeCite` conflict the configured strategy refused to resolve.
    UnresolvedConflict(RepoPath),
    /// `CopyCite` destination already exists.
    DestinationExists(RepoPath),
    /// `CopyCite` source subtree empty/missing.
    SourceMissing(RepoPath),
    /// Caller lacks permission for the operation (hosted flows).
    PermissionDenied(String),
}

impl fmt::Display for CiteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CiteError::Git(e) => write!(f, "{e}"),
            CiteError::Path(e) => write!(f, "{e}"),
            CiteError::AlreadyCited(p) => {
                write!(
                    f,
                    "{:?} already has a citation (use ModifyCite)",
                    p.to_cite_key(false)
                )
            }
            CiteError::NotCited(p) => {
                write!(f, "{:?} has no explicit citation", p.to_cite_key(false))
            }
            CiteError::RootCitationRequired => {
                write!(f, "the root citation cannot be deleted")
            }
            CiteError::PathMissing(p) => {
                write!(
                    f,
                    "path {:?} does not exist in this version",
                    p.to_cite_key(false)
                )
            }
            CiteError::ReservedPath(p) => {
                write!(f, "citations cannot attach to {:?}", p.to_cite_key(false))
            }
            CiteError::BadCitationFile(msg) => write!(f, "invalid citation.cite: {msg}"),
            CiteError::UnresolvedConflict(p) => {
                write!(
                    f,
                    "unresolved citation conflict at {:?}",
                    p.to_cite_key(false)
                )
            }
            CiteError::DestinationExists(p) => {
                write!(
                    f,
                    "copy destination {:?} already exists",
                    p.to_cite_key(false)
                )
            }
            CiteError::SourceMissing(p) => {
                write!(
                    f,
                    "copy source {:?} is missing or empty",
                    p.to_cite_key(false)
                )
            }
            CiteError::PermissionDenied(msg) => write!(f, "permission denied: {msg}"),
        }
    }
}

impl std::error::Error for CiteError {}

impl From<GitError> for CiteError {
    fn from(e: GitError) -> Self {
        CiteError::Git(e)
    }
}

impl From<PathError> for CiteError {
    fn from(e: PathError) -> Self {
        CiteError::Path(e)
    }
}

impl From<sjson::ParseError> for CiteError {
    fn from(e: sjson::ParseError) -> Self {
        CiteError::BadCitationFile(e.to_string())
    }
}

/// Result alias used across the crate.
pub type Result<T> = std::result::Result<T, CiteError>;
