//! Minimal UTC timestamp ↔ ISO-8601 conversion.
//!
//! Citation records carry `committedDate` fields like
//! `"2018-09-04T02:35:20Z"` (Listing 1). This module converts between Unix
//! timestamps and that exact rendering, with no external dependencies. The
//! date math uses the days-from-civil / civil-from-days algorithms from
//! Howard Hinnant's calendrical notes, valid over the full `i64` range this
//! project needs.

/// Formats a Unix timestamp (seconds) as `YYYY-MM-DDTHH:MM:SSZ`.
pub fn format_iso8601(ts: i64) -> String {
    let days = ts.div_euclid(86_400);
    let secs = ts.rem_euclid(86_400);
    let (y, m, d) = civil_from_days(days);
    let hh = secs / 3600;
    let mm = (secs % 3600) / 60;
    let ss = secs % 60;
    format!("{y:04}-{m:02}-{d:02}T{hh:02}:{mm:02}:{ss:02}Z")
}

/// Parses `YYYY-MM-DDTHH:MM:SSZ` back to a Unix timestamp. Returns `None`
/// on malformed input or out-of-range fields.
pub fn parse_iso8601(s: &str) -> Option<i64> {
    let bytes = s.as_bytes();
    if bytes.len() != 20
        || bytes[4] != b'-'
        || bytes[7] != b'-'
        || bytes[10] != b'T'
        || bytes[13] != b':'
        || bytes[16] != b':'
        || bytes[19] != b'Z'
    {
        return None;
    }
    let num = |range: std::ops::Range<usize>| -> Option<i64> { s.get(range)?.parse().ok() };
    let y = num(0..4)?;
    let m = num(5..7)?;
    let d = num(8..10)?;
    let hh = num(11..13)?;
    let mm = num(14..16)?;
    let ss = num(17..19)?;
    if !(1..=12).contains(&m) || !(1..=31).contains(&d) {
        return None;
    }
    if d > days_in_month(y, m as u32) as i64 {
        return None;
    }
    if !(0..24).contains(&hh) || !(0..60).contains(&mm) || !(0..60).contains(&ss) {
        return None;
    }
    Some(days_from_civil(y, m as u32, d as u32) * 86_400 + hh * 3600 + mm * 60 + ss)
}

fn is_leap(y: i64) -> bool {
    y % 4 == 0 && (y % 100 != 0 || y % 400 == 0)
}

fn days_in_month(y: i64, m: u32) -> u32 {
    match m {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if is_leap(y) {
                29
            } else {
                28
            }
        }
        _ => 0,
    }
}

/// Days since 1970-01-01 for a civil date.
fn days_from_civil(y: i64, m: u32, d: u32) -> i64 {
    let y = if m <= 2 { y - 1 } else { y };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400; // [0, 399]
    let mp = (m as i64 + 9) % 12; // March = 0
    let doy = (153 * mp + 2) / 5 + d as i64 - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146_097 + doe - 719_468
}

/// Civil date for days since 1970-01-01.
fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32; // [1, 12]
    (if m <= 2 { y + 1 } else { y }, m, d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch() {
        assert_eq!(format_iso8601(0), "1970-01-01T00:00:00Z");
        assert_eq!(parse_iso8601("1970-01-01T00:00:00Z"), Some(0));
    }

    #[test]
    fn listing1_dates_round_trip() {
        // The three committedDate values from Listing 1 of the paper.
        for s in [
            "2018-09-04T02:35:20Z",
            "2018-03-24T00:29:45Z",
            "2017-06-16T20:57:06Z",
        ] {
            let ts = parse_iso8601(s).expect("parses");
            assert_eq!(format_iso8601(ts), s);
        }
    }

    #[test]
    fn known_timestamps() {
        // `date -u -d @1536028520` == 2018-09-04T02:35:20Z.
        assert_eq!(format_iso8601(1_536_028_520), "2018-09-04T02:35:20Z");
        assert_eq!(parse_iso8601("2018-09-04T02:35:20Z"), Some(1_536_028_520));
        // Leap-year day.
        assert_eq!(format_iso8601(1_582_934_400), "2020-02-29T00:00:00Z");
    }

    #[test]
    fn pre_epoch() {
        assert_eq!(format_iso8601(-1), "1969-12-31T23:59:59Z");
        assert_eq!(parse_iso8601("1969-12-31T23:59:59Z"), Some(-1));
    }

    #[test]
    fn rejects_malformed() {
        for bad in [
            "2018-09-04 02:35:20Z",
            "2018-09-04T02:35:20",
            "2018-13-04T02:35:20Z",
            "2018-02-30T02:35:20Z",
            "2019-02-29T00:00:00Z", // not a leap year
            "2018-09-04T24:00:00Z",
            "garbage",
            "",
        ] {
            assert_eq!(parse_iso8601(bad), None, "{bad}");
        }
    }

    #[test]
    fn round_trip_sweep() {
        // Every ~13 days across several decades, including leap years.
        let mut ts = -2_000_000_000i64;
        while ts < 3_000_000_000 {
            let s = format_iso8601(ts);
            assert_eq!(parse_iso8601(&s), Some(ts), "{s}");
            ts += 86_400 * 13 + 12_345;
        }
    }
}
