//! Citation provenance across versions: diffing citation functions and
//! reconstructing the history of a node's citation.
//!
//! The paper's model makes citations *versioned* ("Each version V in
//! project P has an associated citation function"), which means credit has
//! a history of its own: who was credited for a directory in V3 may differ
//! from V5. This module answers the audit questions that follow —
//! "what changed between these two versions' citation functions?" and
//! "when did this node's citation change, and to what?"

use crate::citation::Citation;
use crate::error::{CiteError, Result};
use crate::function::CitationFunction;
use crate::ops::CitedRepo;
use gitlite::{ObjectId, RepoPath};
use std::collections::BTreeSet;

/// One changed key between two citation functions.
#[derive(Debug, Clone, PartialEq)]
#[allow(clippy::large_enum_variant)]
pub enum CiteChange {
    /// The key entered the active domain.
    Added {
        /// The key.
        path: RepoPath,
        /// Its new citation.
        citation: Citation,
    },
    /// The key left the active domain.
    Removed {
        /// The key.
        path: RepoPath,
        /// The citation it used to carry.
        citation: Citation,
    },
    /// The key stayed but its citation changed.
    Modified {
        /// The key.
        path: RepoPath,
        /// Citation before.
        before: Citation,
        /// Citation after.
        after: Citation,
    },
}

impl CiteChange {
    /// The key this change is about.
    pub fn path(&self) -> &RepoPath {
        match self {
            CiteChange::Added { path, .. }
            | CiteChange::Removed { path, .. }
            | CiteChange::Modified { path, .. } => path,
        }
    }
}

/// Structural diff between two citation functions, in key order.
pub fn diff_functions(old: &CitationFunction, new: &CitationFunction) -> Vec<CiteChange> {
    let mut keys: BTreeSet<&RepoPath> = BTreeSet::new();
    keys.extend(old.paths());
    keys.extend(new.paths());
    let mut out = Vec::new();
    for key in keys {
        match (old.get(key), new.get(key)) {
            (None, Some(c)) => out.push(CiteChange::Added {
                path: key.clone(),
                citation: c.clone(),
            }),
            (Some(c), None) => out.push(CiteChange::Removed {
                path: key.clone(),
                citation: c.clone(),
            }),
            (Some(a), Some(b)) if a != b => out.push(CiteChange::Modified {
                path: key.clone(),
                before: a.clone(),
                after: b.clone(),
            }),
            _ => {}
        }
    }
    out
}

/// One step in a node's citation history.
#[derive(Debug, Clone, PartialEq)]
pub struct CitationEvent {
    /// The version where the node's *explicit* citation changed.
    pub commit: ObjectId,
    /// Commit timestamp.
    pub timestamp: i64,
    /// Commit author (who performed the citation change).
    pub author: String,
    /// The explicit citation after this version (`None` = not in the
    /// active domain; resolution falls to an ancestor).
    pub explicit: Option<Citation>,
}

impl CitedRepo {
    /// The history of `path`'s **explicit** citation along the
    /// first-parent chain from HEAD, oldest first: one event per version
    /// where the entry appeared, changed or disappeared.
    pub fn citation_log(&self, path: &RepoPath) -> Result<Vec<CitationEvent>> {
        let head = self.repo().head_commit().map_err(CiteError::Git)?;
        // First-parent chain, oldest first — served from the store's
        // commit-graph when one covers HEAD (no commit decodes).
        let mut chain = self
            .repo()
            .first_parent_chain(head)
            .map_err(CiteError::Git)?;
        chain.reverse();

        let mut events = Vec::new();
        let mut previous: Option<Citation> = None;
        let mut seen_any = false;
        let cite = crate::file::citation_path();
        for i in 0..chain.len() {
            let id = chain[i];
            // The chain is oldest-first along first parents, so element
            // i-1 *is* this commit's first parent: when the changed-path
            // Bloom filter proves `citation.cite` is identical to it,
            // this version's citation function equals the previous
            // iteration's and the event logic below is a no-op — skip
            // the whole read. (`i == 0` has no processed parent to
            // equal, so it always takes the exact path.)
            if i > 0 {
                use gitlite::PathChange;
                match self.repo().path_changed_hint(id, &cite) {
                    PathChange::No => continue,
                    PathChange::Maybe => {
                        // Exact check: same blob in both trees? Counts
                        // the false-positive metric and still skips.
                        let here = self.repo().tree_of(id).map_err(CiteError::Git)?;
                        let parent = self.repo().tree_of(chain[i - 1]).map_err(CiteError::Git)?;
                        let changed = gitlite::resolve_path(self.repo().odb(), here, &cite)
                            .map_err(CiteError::Git)?
                            != gitlite::resolve_path(self.repo().odb(), parent, &cite)
                                .map_err(CiteError::Git)?;
                        self.repo().count_bloom_outcome(changed);
                        if !changed {
                            continue;
                        }
                    }
                    PathChange::Absent => {}
                }
            }
            let func = match self.function_at(id) {
                Ok(f) => f,
                Err(_) => continue, // pre-citation-enabling versions
            };
            let current = func.get(path).cloned();
            if !seen_any || current != previous {
                let commit = self.repo().commit_obj(id).map_err(CiteError::Git)?;
                // Skip the leading "never cited" steady state.
                if seen_any || current.is_some() {
                    events.push(CitationEvent {
                        commit: id,
                        timestamp: commit.author.timestamp,
                        author: commit.author.name,
                        explicit: current.clone(),
                    });
                    seen_any = true;
                }
            }
            previous = current;
        }
        Ok(events)
    }

    /// Diff of the citation functions of two versions.
    pub fn diff_citations(&self, old: ObjectId, new: ObjectId) -> Result<Vec<CiteChange>> {
        let old_func = self.function_at(old)?;
        let new_func = self.function_at(new)?;
        Ok(diff_functions(&old_func, &new_func))
    }

    /// Every author credited anywhere in the current citation function,
    /// with the keys crediting them (the "give credit to the appropriate
    /// contributors" view, §1). Authors in key order of first appearance.
    pub fn credited_authors(&self) -> Vec<(String, Vec<RepoPath>)> {
        let mut order: Vec<String> = Vec::new();
        let mut map: std::collections::HashMap<String, Vec<RepoPath>> =
            std::collections::HashMap::new();
        for (path, entry) in self.function().iter() {
            for author in &entry.citation.author_list {
                if !map.contains_key(author) {
                    order.push(author.clone());
                }
                map.entry(author.clone()).or_default().push(path.clone());
            }
        }
        order
            .into_iter()
            .map(|a| {
                let paths = map.remove(&a).unwrap_or_default();
                (a, paths)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gitlite::{path, Signature};

    fn sig(n: &str, t: i64) -> Signature {
        Signature::new(n, format!("{n}@x"), t)
    }

    fn cite(name: &str, author: &str) -> Citation {
        Citation::builder(name, "o").author(author).build()
    }

    fn repo() -> CitedRepo {
        let mut r = CitedRepo::init("P", "Owner", "https://x/P");
        r.write_file(&path("f.txt"), &b"f\n"[..]).unwrap();
        r.write_file(&path("g.txt"), &b"g\n"[..]).unwrap();
        r.commit(sig("Owner", 100), "V1").unwrap();
        r
    }

    #[test]
    fn diff_functions_reports_all_kinds() {
        let mut old = CitationFunction::new(cite("root", "A"));
        old.set(path("gone"), cite("x", "A"), false);
        old.set(path("same"), cite("s", "A"), false);
        old.set(path("changed"), cite("v1", "A"), false);
        let mut new = CitationFunction::new(cite("root", "A"));
        new.set(path("same"), cite("s", "A"), false);
        new.set(path("changed"), cite("v2", "B"), false);
        new.set(path("fresh"), cite("f", "C"), false);
        let diff = diff_functions(&old, &new);
        assert_eq!(diff.len(), 3);
        assert!(matches!(&diff[0], CiteChange::Modified { path, .. } if *path == path2("changed")));
        assert!(matches!(&diff[1], CiteChange::Added { path, .. } if *path == path2("fresh")));
        assert!(matches!(&diff[2], CiteChange::Removed { path, .. } if *path == path2("gone")));
    }

    fn path2(s: &str) -> RepoPath {
        path(s)
    }

    #[test]
    fn diff_identical_is_empty() {
        let f = CitationFunction::new(cite("root", "A"));
        assert!(diff_functions(&f, &f).is_empty());
    }

    #[test]
    fn citation_log_tracks_add_modify_delete() {
        let mut r = repo();
        // V2: add.
        r.add_cite(&path("f.txt"), cite("c1", "Alice")).unwrap();
        let v2 = r.commit(sig("Alice", 200), "add cite").unwrap().commit;
        // V3: unrelated change — no event.
        r.write_file(&path("g.txt"), &b"g2\n"[..]).unwrap();
        r.commit(sig("Owner", 300), "edit g").unwrap();
        // V4: modify.
        r.modify_cite(&path("f.txt"), cite("c2", "Bob")).unwrap();
        let v4 = r.commit(sig("Bob", 400), "modify cite").unwrap().commit;
        // V5: delete.
        r.del_cite(&path("f.txt")).unwrap();
        let v5 = r.commit(sig("Carol", 500), "del cite").unwrap().commit;

        let log = r.citation_log(&path("f.txt")).unwrap();
        assert_eq!(log.len(), 3);
        assert_eq!(log[0].commit, v2);
        assert_eq!(log[0].author, "Alice");
        assert_eq!(log[0].explicit.as_ref().unwrap().repo_name, "c1");
        assert_eq!(log[1].commit, v4);
        assert_eq!(log[1].explicit.as_ref().unwrap().repo_name, "c2");
        assert_eq!(log[2].commit, v5);
        assert!(log[2].explicit.is_none());
    }

    #[test]
    fn citation_log_empty_for_never_cited() {
        let r = repo();
        assert!(r.citation_log(&path("f.txt")).unwrap().is_empty());
    }

    #[test]
    fn diff_citations_between_versions() {
        let mut r = repo();
        let v1 = r.repo().head_commit().unwrap();
        r.add_cite(&path("f.txt"), cite("c1", "Alice")).unwrap();
        let v2 = r.commit(sig("Alice", 200), "add").unwrap().commit;
        let diff = r.diff_citations(v1, v2).unwrap();
        assert_eq!(diff.len(), 1);
        assert!(matches!(&diff[0], CiteChange::Added { .. }));
        // Reverse direction reports a removal.
        let diff = r.diff_citations(v2, v1).unwrap();
        assert!(matches!(&diff[0], CiteChange::Removed { .. }));
    }

    #[test]
    fn credited_authors_inverts_the_function() {
        let mut r = repo();
        r.add_cite(&path("f.txt"), cite("c1", "Alice")).unwrap();
        let mut multi = cite("c2", "Alice");
        multi.author_list.push("Bob".into());
        r.add_cite(&path("g.txt"), multi).unwrap();
        let credits = r.credited_authors();
        // Root author "Owner" first (root is the first key), then Alice, Bob.
        let names: Vec<&str> = credits.iter().map(|(a, _)| a.as_str()).collect();
        assert_eq!(names, vec!["Owner", "Alice", "Bob"]);
        let alice = &credits.iter().find(|(a, _)| a == "Alice").unwrap().1;
        assert_eq!(alice.len(), 2);
        let bob = &credits.iter().find(|(a, _)| a == "Bob").unwrap().1;
        assert_eq!(bob, &vec![path("g.txt")]);
    }
}
