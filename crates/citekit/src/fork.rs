//! `ForkCite` — forking a repository with its history and citations
//! (paper §3).
//!
//! "ForkCite copies a version of a repository, along with its history, and
//! creates a new repository. The citations in citation.cite are also
//! copied. Our way of storing citations will naturally enable ForkCite
//! through GitHub's Fork." Because the citation file lives in the tree,
//! the clone alone is a correct ForkCite; [`ForkOptions::restamp_root`]
//! additionally gives the fork its own root identity while preserving the
//! origin's citation as `forkedFrom` provenance.

use crate::citation::Citation;
use crate::error::{CiteError, Result};
use crate::ops::CitedRepo;
use gitlite::{clone_repository_into, MemStore, ObjectId, ObjectStore, Repository, Signature};

/// How a fork is created.
#[derive(Debug, Clone)]
pub struct ForkOptions {
    /// Name of the new repository.
    pub new_name: String,
    /// Owner of the new repository.
    pub new_owner: String,
    /// URL of the new repository.
    pub new_url: String,
    /// When true (the default), the fork gets a fresh root citation
    /// (new name/owner/url, original author credit preserved) committed on
    /// top, with the origin's root citation kept under the `forkedFrom`
    /// extra field. When false, the fork is a pure clone — the paper's
    /// literal behavior.
    pub restamp_root: bool,
}

impl ForkOptions {
    /// Convenience constructor with `restamp_root = true`.
    pub fn new(name: impl Into<String>, owner: impl Into<String>, url: impl Into<String>) -> Self {
        ForkOptions {
            new_name: name.into(),
            new_owner: owner.into(),
            new_url: url.into(),
            restamp_root: true,
        }
    }
}

/// Result of a fork.
#[derive(Debug)]
pub struct ForkOutcome {
    /// The new repository.
    pub fork: CitedRepo,
    /// The commit of the source the fork points at.
    pub fork_point: ObjectId,
    /// The restamp commit, when `restamp_root` was set.
    pub restamp_commit: Option<ObjectId>,
}

/// `ForkCite(P1) → P3`: forks `src` (all branches, full history).
pub fn fork_cite(src: &Repository, opts: &ForkOptions, author: Signature) -> Result<ForkOutcome> {
    fork_cite_into(src, opts, author, Box::new(MemStore::new()))
}

/// [`fork_cite`] with the fork created on a caller-supplied object-store
/// backend (e.g. the hosting platform's configured store).
pub fn fork_cite_into(
    src: &Repository,
    opts: &ForkOptions,
    author: Signature,
    store: Box<dyn ObjectStore>,
) -> Result<ForkOutcome> {
    let fork_point = src.head_commit().map_err(CiteError::Git)?;
    let clone = clone_repository_into(src, opts.new_name.clone(), store).map_err(CiteError::Git)?;
    let mut fork = CitedRepo::open(clone)?;

    let restamp_commit = if opts.restamp_root {
        let old_root = fork.function().root().clone();
        let new_root = Citation::builder(&opts.new_name, &opts.new_owner)
            .url(&opts.new_url)
            .authors(preserve_authors(&old_root, &opts.new_owner))
            .extra("forkedFrom", old_root.to_value())
            .build();
        let mut func = fork.function().clone();
        func.set_root(new_root);
        fork.install_function(func)?;
        let outcome = fork.commit(author, format!("fork from {}", src.name()))?;
        Some(outcome.commit)
    } else {
        None
    };

    Ok(ForkOutcome {
        fork,
        fork_point,
        restamp_commit,
    })
}

/// Original authors keep their credit; the forking owner is appended when
/// not already present.
fn preserve_authors(old_root: &Citation, new_owner: &str) -> Vec<String> {
    let mut authors = old_root.author_list.clone();
    if !authors.iter().any(|a| a == new_owner) {
        authors.push(new_owner.to_owned());
    }
    authors
}

#[cfg(test)]
mod tests {
    use super::*;
    use gitlite::path;

    fn sig(n: &str, t: i64) -> Signature {
        Signature::new(n, format!("{n}@x"), t)
    }

    fn cite(name: &str) -> Citation {
        Citation::builder(name, "o").build()
    }

    fn source() -> CitedRepo {
        let mut r = CitedRepo::init("P1", "Leshang", "https://hub/P1");
        r.write_file(&path("a.txt"), &b"a\n"[..]).unwrap();
        r.write_file(&path("lib/b.txt"), &b"b\n"[..]).unwrap();
        r.add_cite(&path("lib"), cite("lib-cite")).unwrap();
        r.commit(sig("Leshang", 100), "V1").unwrap();
        r.write_file(&path("c.txt"), &b"c\n"[..]).unwrap();
        r.commit(sig("Leshang", 200), "V2").unwrap();
        r
    }

    #[test]
    fn pure_fork_preserves_everything() {
        let src = source();
        let opts = ForkOptions {
            new_name: "P3".into(),
            new_owner: "Susan".into(),
            new_url: "https://hub/P3".into(),
            restamp_root: false,
        };
        let out = fork_cite(src.repo(), &opts, sig("Susan", 300)).unwrap();
        assert!(out.restamp_commit.is_none());
        assert_eq!(out.fork_point, src.repo().head_commit().unwrap());
        // Identical tips, identical citation function — including the old
        // root (pure GitHub-fork semantics).
        assert_eq!(
            out.fork.repo().head_commit().unwrap(),
            src.repo().head_commit().unwrap()
        );
        assert_eq!(out.fork.function(), src.function());
        assert_eq!(out.fork.repo().name(), "P3");
        // Full history travelled.
        assert_eq!(out.fork.repo().log_head().unwrap().len(), 2);
    }

    #[test]
    fn restamped_fork_gets_new_root_with_provenance() {
        let src = source();
        let opts = ForkOptions::new("P3", "Susan", "https://hub/P3");
        let out = fork_cite(src.repo(), &opts, sig("Susan", 300)).unwrap();
        let restamp = out.restamp_commit.expect("restamp commit");
        // New root identity.
        let root = out.fork.function().root();
        assert_eq!(root.repo_name, "P3");
        assert_eq!(root.owner, "Susan");
        // Original author credit preserved, forker appended.
        assert_eq!(
            root.author_list,
            vec!["Leshang".to_owned(), "Susan".to_owned()]
        );
        // Provenance to the origin's root citation.
        let fx = root.extra.get("forkedFrom").expect("provenance field");
        assert_eq!(fx["repoName"].as_str(), Some("P1"));
        // Non-root citations untouched.
        assert_eq!(
            out.fork.function().get(&path("lib")).unwrap().repo_name,
            "lib-cite"
        );
        // History: restamp on top of the fork point.
        let log = out.fork.repo().log_head().unwrap();
        assert_eq!(log[0], restamp);
        assert_eq!(log[1], out.fork_point);
        // The source is untouched.
        assert_eq!(src.function().root().repo_name, "P1");
    }

    #[test]
    fn fork_of_uncited_repo_fails_cleanly() {
        let mut plain = Repository::init("plain");
        plain
            .worktree_mut()
            .write(&path("x.txt"), &b"x\n"[..])
            .unwrap();
        plain.commit(sig("X", 1), "c").unwrap();
        let opts = ForkOptions::new("F", "Y", "https://hub/F");
        assert!(matches!(
            fork_cite(&plain, &opts, sig("Y", 2)),
            Err(CiteError::BadCitationFile(_))
        ));
    }

    #[test]
    fn forker_not_duplicated_in_authors() {
        let mut r = CitedRepo::init("P1", "Susan", "https://hub/P1");
        r.write_file(&path("a.txt"), &b"a\n"[..]).unwrap();
        r.commit(sig("Susan", 100), "V1").unwrap();
        let opts = ForkOptions::new("P3", "Susan", "https://hub/P3");
        let out = fork_cite(r.repo(), &opts, sig("Susan", 200)).unwrap();
        assert_eq!(
            out.fork.function().root().author_list,
            vec!["Susan".to_owned()]
        );
    }
}
