//! Consistency checking for citation functions against a version's tree.
//!
//! The paper's model imposes two invariants (§2): the root must be in the
//! active domain, and the citation function must stay consistent with the
//! directory structure (keys name nodes that exist). The checker reports
//! violations instead of failing fast so a whole file can be audited at
//! once — the CLI's `gitcite validate` prints the list.

use crate::file::citation_path;
use crate::function::CitationFunction;
use gitlite::{RepoPath, WorkTree};
use std::fmt;

/// One consistency violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// The root entry is missing (cannot normally happen through the API;
    /// guards hand-edited files).
    MissingRoot,
    /// A key names a node absent from the tree.
    DanglingPath(RepoPath),
    /// A key is flagged as a directory but the node is a file.
    KindMismatch {
        /// The offending key.
        path: RepoPath,
        /// What the entry claims (`true` = directory).
        claims_dir: bool,
    },
    /// A key points at the citation file itself.
    ReservedPath(RepoPath),
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::MissingRoot => write!(f, "root entry \"/\" is missing"),
            Violation::DanglingPath(p) => {
                write!(
                    f,
                    "entry {:?} names a path that does not exist",
                    p.to_cite_key(false)
                )
            }
            Violation::KindMismatch { path, claims_dir } => write!(
                f,
                "entry {:?} claims to be a {} but is a {}",
                path.to_cite_key(*claims_dir),
                if *claims_dir { "directory" } else { "file" },
                if *claims_dir { "file" } else { "directory" },
            ),
            Violation::ReservedPath(p) => {
                write!(
                    f,
                    "entry {:?} cites the citation file itself",
                    p.to_cite_key(false)
                )
            }
        }
    }
}

/// Checks `func` against the tree represented by `wt`.
pub fn validate(func: &CitationFunction, wt: &WorkTree) -> Vec<Violation> {
    let mut out = Vec::new();
    if !func.contains(&RepoPath::root()) {
        out.push(Violation::MissingRoot);
    }
    let cite = citation_path();
    for (path, entry) in func.iter() {
        if path.is_root() {
            continue;
        }
        if *path == cite {
            out.push(Violation::ReservedPath(path.clone()));
            continue;
        }
        if !wt.exists(path) {
            out.push(Violation::DanglingPath(path.clone()));
            continue;
        }
        let actual_dir = wt.is_dir(path);
        if actual_dir != entry.is_dir {
            out.push(Violation::KindMismatch {
                path: path.clone(),
                claims_dir: entry.is_dir,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::citation::Citation;
    use gitlite::path;

    fn cite(name: &str) -> Citation {
        Citation::builder(name, "o").build()
    }

    fn tree() -> WorkTree {
        let mut wt = WorkTree::new();
        wt.write(&path("src/main.rs"), &b"fn main(){}"[..]).unwrap();
        wt.write(&path("README.md"), &b"# hi"[..]).unwrap();
        wt
    }

    #[test]
    fn clean_function_validates() {
        let mut f = CitationFunction::new(cite("root"));
        f.set(path("src"), cite("src"), true);
        f.set(path("src/main.rs"), cite("main"), false);
        assert!(validate(&f, &tree()).is_empty());
    }

    #[test]
    fn dangling_path_reported() {
        let mut f = CitationFunction::new(cite("root"));
        f.set(path("gone.txt"), cite("x"), false);
        let v = validate(&f, &tree());
        assert_eq!(v, vec![Violation::DanglingPath(path("gone.txt"))]);
        assert!(v[0].to_string().contains("does not exist"));
    }

    #[test]
    fn kind_mismatch_reported() {
        let mut f = CitationFunction::new(cite("root"));
        f.set(path("src"), cite("x"), false); // src is a directory
        f.set(path("README.md"), cite("y"), true); // README.md is a file
        let v = validate(&f, &tree());
        assert_eq!(v.len(), 2);
        assert!(v.contains(&Violation::KindMismatch {
            path: path("src"),
            claims_dir: false
        }));
        assert!(v.contains(&Violation::KindMismatch {
            path: path("README.md"),
            claims_dir: true
        }));
    }

    #[test]
    fn reserved_path_reported() {
        let mut wt = tree();
        wt.write(&citation_path(), &b"{}"[..]).unwrap();
        let mut f = CitationFunction::new(cite("root"));
        f.set(citation_path(), cite("x"), false);
        let v = validate(&f, &wt);
        assert_eq!(v, vec![Violation::ReservedPath(citation_path())]);
    }
}
