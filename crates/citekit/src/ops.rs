//! [`CitedRepo`] — a citation-enabled repository and the paper's citation
//! operators: `AddCite`, `DelCite`, `ModifyCite` and citation generation
//! (`GenCite`), plus citation-aware commit/checkout/rename.
//!
//! `CitedRepo` wraps a [`gitlite::Repository`] and maintains the invariant
//! that the worktree's `citation.cite` always reflects the working
//! citation function. Tree edits go through the wrapper so citations are
//! carried eagerly; edits made behind its back are reconciled at commit
//! time by [`crate::carry::reconcile`].

use crate::carry::{reconcile, worktree_listing, CarryReport};
use crate::citation::Citation;
use crate::error::{CiteError, Result};
use crate::file::{self, citation_path};
use crate::function::{CitationFunction, ResolvePolicy};
use crate::time::format_iso8601;
use gitlite::{ObjectId, RepoPath, Repository, Signature};
use std::collections::BTreeMap;

/// What to do when, at commit time, citation entries point at paths that
/// no longer exist.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PrunePolicy {
    /// Silently drop the stale entries (the default; matches the paper's
    /// side-effecting semantics for deletes).
    #[default]
    Prune,
    /// Refuse to commit, reporting the first stale path.
    Strict,
}

/// Outcome of [`CitedRepo::commit`].
#[derive(Debug, Clone)]
pub struct CommitOutcome {
    /// Id of the new version.
    pub commit: ObjectId,
    /// Citation-key maintenance performed as a side effect.
    pub carry: CarryReport,
}

/// A citation-enabled project repository.
#[derive(Debug, Clone)]
pub struct CitedRepo {
    repo: Repository,
    func: CitationFunction,
    prune_policy: PrunePolicy,
}

impl CitedRepo {
    /// Creates a citation-enabled repository: an empty [`Repository`] whose
    /// worktree already contains a `citation.cite` with a default root
    /// citation built from `name`, `owner` and `url` (paper §2: "All
    /// versions have a default citation attached to the root").
    pub fn init(name: &str, owner: &str, url: &str) -> Self {
        Self::init_with_root(name, Self::default_root(name, owner, url))
    }

    /// [`CitedRepo::init`] on a caller-supplied object-store backend
    /// (e.g. a [`gitlite::DiskStore`] or [`gitlite::CachedStore`]); the
    /// citation model is backend-agnostic.
    pub fn init_with_store(
        name: &str,
        owner: &str,
        url: &str,
        store: Box<dyn gitlite::ObjectStore>,
    ) -> Self {
        Self::wrap_fresh(
            Repository::init_with(name, store),
            Self::default_root(name, owner, url),
        )
    }

    /// [`CitedRepo::init`] with a fully caller-specified root citation.
    pub fn init_with_root(name: &str, root: Citation) -> Self {
        Self::wrap_fresh(Repository::init(name), root)
    }

    fn default_root(name: &str, owner: &str, url: &str) -> Citation {
        Citation::builder(name, owner)
            .url(url)
            .author(owner)
            .build()
    }

    fn wrap_fresh(mut repo: Repository, root: Citation) -> Self {
        let func = CitationFunction::new(root);
        file::write_worktree(repo.worktree_mut(), &func).expect("fresh worktree accepts the file");
        CitedRepo {
            repo,
            func,
            prune_policy: PrunePolicy::default(),
        }
    }

    /// Wraps an existing repository whose worktree already carries a
    /// `citation.cite`. Fails with [`CiteError::BadCitationFile`] when the
    /// file is missing (see [`crate::retro`] for citation-enabling such
    /// repositories) or malformed.
    pub fn open(repo: Repository) -> Result<Self> {
        let func = file::read_worktree(repo.worktree())?.ok_or_else(|| {
            CiteError::BadCitationFile(
                "citation.cite not found; use retrofit to citation-enable this repository".into(),
            )
        })?;
        Ok(CitedRepo {
            repo,
            func,
            prune_policy: PrunePolicy::default(),
        })
    }

    /// Sets the stale-citation policy applied at commit time.
    pub fn set_prune_policy(&mut self, policy: PrunePolicy) {
        self.prune_policy = policy;
    }

    /// The underlying repository (read-only).
    pub fn repo(&self) -> &Repository {
        &self.repo
    }

    /// The underlying repository, mutable.
    ///
    /// Direct worktree edits are allowed — they are reconciled at the next
    /// [`CitedRepo::commit`] — but writing `citation.cite` by hand is not
    /// (the wrapper rewrites it from the working citation function).
    pub fn repo_mut(&mut self) -> &mut Repository {
        &mut self.repo
    }

    /// The working citation function.
    pub fn function(&self) -> &CitationFunction {
        &self.func
    }

    /// Unwraps back into the underlying repository (the worktree keeps the
    /// synced `citation.cite`). Hosted-platform code stores plain
    /// repositories and wraps them per operation.
    pub fn into_repository(self) -> Repository {
        self.repo
    }

    // ----- file operations (citation-carrying) ---------------------------

    /// Writes a file in the worktree.
    pub fn write_file(&mut self, path: &RepoPath, data: impl Into<bytes::Bytes>) -> Result<()> {
        if *path == citation_path() {
            return Err(CiteError::ReservedPath(path.clone()));
        }
        self.repo
            .worktree_mut()
            .write(path, data)
            .map_err(CiteError::Git)
    }

    /// Removes a file or directory subtree; citations beneath it are
    /// dropped immediately (DelCite as a side effect of deletion, §2).
    pub fn remove(&mut self, path: &RepoPath) -> Result<usize> {
        if *path == citation_path() {
            return Err(CiteError::ReservedPath(path.clone()));
        }
        let n = self
            .repo
            .worktree_mut()
            .remove(path)
            .map_err(CiteError::Git)?;
        self.func.retain(|p, _| !p.starts_with(path));
        self.sync_file()?;
        Ok(n)
    }

    /// Renames/moves a file or directory; citation keys follow (paper §2:
    /// "if a file or directory in the active domain ... is moved or
    /// renamed then the citation function must be modified").
    pub fn rename(&mut self, from: &RepoPath, to: &RepoPath) -> Result<()> {
        if *from == citation_path() || *to == citation_path() {
            return Err(CiteError::ReservedPath(citation_path()));
        }
        let was_dir = self.repo.worktree().is_dir(from);
        self.repo
            .worktree_mut()
            .rename(from, to)
            .map_err(CiteError::Git)?;
        if was_dir {
            self.func.rebase_subtree(from, to);
        } else {
            self.func.rekey(from, to);
        }
        self.sync_file()
    }

    /// Reads a file from the worktree.
    pub fn read_text(&self, path: &RepoPath) -> Result<String> {
        self.repo.worktree().read_text(path).map_err(CiteError::Git)
    }

    // ----- citation operators (paper §2/§3) -------------------------------

    /// `AddCite(path, value)`: attaches a citation to an existing,
    /// not-yet-cited node.
    pub fn add_cite(&mut self, path: &RepoPath, citation: Citation) -> Result<()> {
        self.check_citable(path)?;
        if self.func.contains(path) {
            return Err(CiteError::AlreadyCited(path.clone()));
        }
        let is_dir = path.is_root() || self.repo.worktree().is_dir(path);
        self.func.set(path.clone(), citation, is_dir);
        self.sync_file()
    }

    /// `ModifyCite(path, value)`: replaces the citation of an
    /// already-cited node. Returns the previous citation.
    pub fn modify_cite(&mut self, path: &RepoPath, citation: Citation) -> Result<Citation> {
        self.check_citable(path)?;
        if !self.func.contains(path) {
            return Err(CiteError::NotCited(path.clone()));
        }
        let is_dir = path.is_root() || self.repo.worktree().is_dir(path);
        let prev = self
            .func
            .set(path.clone(), citation, is_dir)
            .expect("checked contains");
        self.sync_file()?;
        Ok(prev)
    }

    /// `DelCite(path)`: detaches the citation of a cited node. The root's
    /// citation cannot be deleted.
    pub fn del_cite(&mut self, path: &RepoPath) -> Result<Citation> {
        let prev = self.func.remove(path)?;
        self.sync_file()?;
        Ok(prev)
    }

    fn check_citable(&self, path: &RepoPath) -> Result<()> {
        if *path == citation_path() {
            return Err(CiteError::ReservedPath(path.clone()));
        }
        if !self.repo.worktree().exists(path) {
            return Err(CiteError::PathMissing(path.clone()));
        }
        Ok(())
    }

    // ----- citation generation (GenCite) ----------------------------------

    /// `Cite(V,P)(n)` against the current worktree state, default policy.
    ///
    /// When the citation comes from the root entry, its `commitID` /
    /// `committedDate` are stamped from HEAD (the version being cited);
    /// explicitly attached citations are returned as stored.
    pub fn cite(&self, path: &RepoPath) -> Result<Citation> {
        if !self.repo.worktree().exists(path) {
            return Err(CiteError::PathMissing(path.clone()));
        }
        let (at, citation) = self.func.resolve(path);
        Ok(self.maybe_stamp(at, citation))
    }

    /// [`CitedRepo::cite`] under an explicit resolution policy.
    pub fn cite_policy(&self, path: &RepoPath, policy: ResolvePolicy) -> Result<Vec<Citation>> {
        if !self.repo.worktree().exists(path) {
            return Err(CiteError::PathMissing(path.clone()));
        }
        Ok(self
            .func
            .resolve_policy(path, policy)
            .into_iter()
            .map(|(at, c)| self.maybe_stamp(at, c))
            .collect())
    }

    /// `Cite(V,P)(n)` for a committed version `V`.
    pub fn cite_at(&self, version: ObjectId, path: &RepoPath) -> Result<Citation> {
        let commit = self.repo.commit_obj(version).map_err(CiteError::Git)?;
        if !self
            .repo
            .path_exists_at(version, path)
            .map_err(CiteError::Git)?
        {
            return Err(CiteError::PathMissing(path.clone()));
        }
        let text = self.repo.file_at(version, &citation_path()).map_err(|_| {
            CiteError::BadCitationFile(format!("version {} has no citation.cite", version.short()))
        })?;
        let func = file::parse(&String::from_utf8_lossy(&text))?;
        let (at, citation) = func.resolve(path);
        if at.is_root() {
            Ok(citation.stamped(&version.short(), &format_iso8601(commit.author.timestamp)))
        } else {
            Ok(citation.clone())
        }
    }

    fn maybe_stamp(&self, at: &RepoPath, citation: &Citation) -> Citation {
        if !at.is_root() {
            return citation.clone();
        }
        match self.repo.head_commit() {
            Ok(head) => {
                let ts = self
                    .repo
                    .commit_obj(head)
                    .map(|c| c.author.timestamp)
                    .unwrap_or_default();
                citation.stamped(&head.short(), &format_iso8601(ts))
            }
            Err(_) => citation.clone(),
        }
    }

    /// Stamps the root citation with a released version's identity —
    /// what a Zenodo-style release does (paper §1: "A released version ...
    /// uploaded to \[a\] public hosting platform like Zenodo which provides
    /// a DOI"). Returns the new commit.
    pub fn publish(
        &mut self,
        author: Signature,
        version_name: Option<&str>,
        doi: Option<&str>,
    ) -> Result<CommitOutcome> {
        let head = self.repo.head_commit().map_err(CiteError::Git)?;
        let head_commit = self.repo.commit_obj(head).map_err(CiteError::Git)?;
        let mut root = self.func.root().clone();
        root.commit_id = head.short();
        root.committed_date = format_iso8601(head_commit.author.timestamp);
        if let Some(v) = version_name {
            root.version = Some(v.to_owned());
        }
        if let Some(d) = doi {
            root.doi = Some(d.to_owned());
        }
        self.func.set_root(root);
        self.sync_file()?;
        let message = match version_name {
            Some(v) => format!("publish {v}"),
            None => format!("publish {}", head.short()),
        };
        self.commit(author, message)
    }

    // ----- version control (citation-aware) --------------------------------

    /// Commits the worktree as a new version. Before committing, the
    /// citation function is reconciled with any tree edits made since the
    /// previous version (renames carried, stale entries pruned per the
    /// [`PrunePolicy`]), and the refreshed `citation.cite` is written into
    /// the snapshot.
    pub fn commit(
        &mut self,
        author: Signature,
        message: impl Into<String>,
    ) -> Result<CommitOutcome> {
        let carry = match self.repo.head_commit() {
            Ok(head) => {
                let mut old_listing = self.repo.snapshot(head).map_err(CiteError::Git)?;
                old_listing.remove(&citation_path());
                let (wt, odb) = {
                    // Split borrows: reconcile needs the worktree read-only
                    // and the odb mutably.
                    let repo = &mut self.repo;
                    (repo.worktree().clone(), repo.odb_mut())
                };
                reconcile(&mut self.func, &old_listing, &wt, odb)
            }
            Err(_) => CarryReport::default(),
        };
        if self.prune_policy == PrunePolicy::Strict {
            if let Some(p) = carry.pruned.first() {
                return Err(CiteError::PathMissing(p.clone()));
            }
        }
        self.sync_file()?;
        let commit = self.repo.commit(author, message).map_err(CiteError::Git)?;
        Ok(CommitOutcome { commit, carry })
    }

    /// Checks out a branch and reloads the citation function from it.
    pub fn checkout_branch(&mut self, name: &str) -> Result<()> {
        self.repo.checkout_branch(name).map_err(CiteError::Git)?;
        self.reload_function()
    }

    /// Checks out a commit (detached) and reloads the citation function.
    pub fn checkout_commit(&mut self, id: ObjectId) -> Result<()> {
        self.repo.checkout_commit(id).map_err(CiteError::Git)?;
        self.reload_function()
    }

    /// Creates a branch at HEAD.
    pub fn create_branch(&mut self, name: &str) -> Result<()> {
        self.repo.create_branch(name).map_err(CiteError::Git)
    }

    /// Re-reads the working citation function from the worktree file
    /// (used after checkouts and merges).
    pub fn reload_function(&mut self) -> Result<()> {
        self.func = file::read_worktree(self.repo.worktree())?.ok_or_else(|| {
            CiteError::BadCitationFile("checked-out version has no citation.cite".into())
        })?;
        Ok(())
    }

    /// Replaces the working citation function wholesale (merge/copy flows)
    /// and syncs the file.
    pub(crate) fn install_function(&mut self, func: CitationFunction) -> Result<()> {
        self.func = func;
        self.sync_file()
    }

    /// The worktree listing without the citation file, storing blobs.
    pub(crate) fn listing_sans_cite(&mut self) -> BTreeMap<RepoPath, ObjectId> {
        let wt = self.repo.worktree().clone();
        worktree_listing(self.repo.odb_mut(), &wt)
    }

    fn sync_file(&mut self) -> Result<()> {
        // The citation file may not exist yet or may be stale; remove and
        // rewrite to keep the worktree invariant.
        let p = citation_path();
        if self.repo.worktree().is_file(&p) {
            let _ = self.repo.worktree_mut().remove_file(&p);
        }
        file::write_worktree(self.repo.worktree_mut(), &self.func)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gitlite::path;

    fn sig(n: &str, t: i64) -> Signature {
        Signature::new(n, format!("{n}@x"), t)
    }

    fn cite(name: &str) -> Citation {
        Citation::builder(name, "someone")
            .url(format!("https://x/{name}"))
            .build()
    }

    fn demo_repo() -> CitedRepo {
        let mut r = CitedRepo::init("P1", "Leshang", "https://hub/P1");
        r.write_file(&path("f1.txt"), &b"f1 content\n"[..]).unwrap();
        r.write_file(&path("d/f2.txt"), &b"f2 content\n"[..])
            .unwrap();
        r.commit(sig("Leshang", 100), "V1").unwrap();
        r
    }

    #[test]
    fn init_creates_default_root_citation() {
        let r = CitedRepo::init("P1", "Leshang", "https://hub/P1");
        assert_eq!(r.function().root().repo_name, "P1");
        assert_eq!(r.function().root().owner, "Leshang");
        assert!(r.repo().worktree().is_file(&citation_path()));
    }

    #[test]
    fn open_requires_citation_file() {
        let repo = Repository::init("bare");
        assert!(matches!(
            CitedRepo::open(repo),
            Err(CiteError::BadCitationFile(_))
        ));
        let demo = demo_repo();
        let reopened = CitedRepo::open(demo.repo().clone()).unwrap();
        assert_eq!(reopened.function(), demo.function());
    }

    #[test]
    fn add_cite_then_resolve() {
        let mut r = demo_repo();
        r.add_cite(&path("f1.txt"), cite("f1")).unwrap();
        // Explicit citation returned as stored.
        assert_eq!(r.cite(&path("f1.txt")).unwrap().repo_name, "f1");
        // Uncited sibling resolves to the root, stamped with HEAD.
        let c = r.cite(&path("d/f2.txt")).unwrap();
        assert_eq!(c.repo_name, "P1");
        assert_eq!(c.commit_id.len(), 7);
        assert!(!c.committed_date.is_empty());
    }

    #[test]
    fn add_cite_validations() {
        let mut r = demo_repo();
        assert_eq!(
            r.add_cite(&path("missing.txt"), cite("x")).unwrap_err(),
            CiteError::PathMissing(path("missing.txt"))
        );
        r.add_cite(&path("f1.txt"), cite("x")).unwrap();
        assert_eq!(
            r.add_cite(&path("f1.txt"), cite("y")).unwrap_err(),
            CiteError::AlreadyCited(path("f1.txt"))
        );
        assert_eq!(
            r.add_cite(&citation_path(), cite("z")).unwrap_err(),
            CiteError::ReservedPath(citation_path())
        );
    }

    #[test]
    fn modify_and_del_cite() {
        let mut r = demo_repo();
        assert_eq!(
            r.modify_cite(&path("f1.txt"), cite("n")).unwrap_err(),
            CiteError::NotCited(path("f1.txt"))
        );
        r.add_cite(&path("f1.txt"), cite("v1")).unwrap();
        let prev = r.modify_cite(&path("f1.txt"), cite("v2")).unwrap();
        assert_eq!(prev.repo_name, "v1");
        assert_eq!(r.cite(&path("f1.txt")).unwrap().repo_name, "v2");
        let removed = r.del_cite(&path("f1.txt")).unwrap();
        assert_eq!(removed.repo_name, "v2");
        assert_eq!(
            r.del_cite(&path("f1.txt")).unwrap_err(),
            CiteError::NotCited(path("f1.txt"))
        );
        assert_eq!(
            r.del_cite(&RepoPath::root()).unwrap_err(),
            CiteError::RootCitationRequired
        );
    }

    use gitlite::RepoPath;

    #[test]
    fn figure1_v1_to_v2_addcite_changes_resolution() {
        // Figure 1: before AddCite, Cite(V1,P1)(f1) = C1 (root); after,
        // Cite(V2,P1)(f1) = C2 (the new citation).
        let mut r = demo_repo();
        let v1 = r.repo().head_commit().unwrap();
        let before = r.cite_at(v1, &path("f1.txt")).unwrap();
        assert_eq!(before.repo_name, "P1"); // C1 = root citation
        r.add_cite(&path("f1.txt"), cite("C2")).unwrap();
        let v2 = r
            .commit(sig("Leshang", 200), "V2: AddCite f1")
            .unwrap()
            .commit;
        let after = r.cite_at(v2, &path("f1.txt")).unwrap();
        assert_eq!(after.repo_name, "C2");
        // V1's resolution is unchanged (citations are per version).
        let still = r.cite_at(v1, &path("f1.txt")).unwrap();
        assert_eq!(still.repo_name, "P1");
    }

    #[test]
    fn cite_at_stamps_root_resolution_with_that_version() {
        let mut r = demo_repo();
        let v1 = r.repo().head_commit().unwrap();
        r.write_file(&path("extra.txt"), &b"x\n"[..]).unwrap();
        let v2 = r.commit(sig("Leshang", 200), "V2").unwrap().commit;
        let c1 = r.cite_at(v1, &path("f1.txt")).unwrap();
        let c2 = r.cite_at(v2, &path("f1.txt")).unwrap();
        assert_eq!(c1.commit_id, v1.short());
        assert_eq!(c2.commit_id, v2.short());
        assert_eq!(c1.committed_date, crate::time::format_iso8601(100));
        assert_eq!(c2.committed_date, crate::time::format_iso8601(200));
    }

    #[test]
    fn rename_file_carries_citation_eagerly() {
        let mut r = demo_repo();
        r.add_cite(&path("f1.txt"), cite("c")).unwrap();
        r.rename(&path("f1.txt"), &path("renamed.txt")).unwrap();
        assert!(r.function().contains(&path("renamed.txt")));
        assert!(!r.function().contains(&path("f1.txt")));
        // Commit works and keeps the carried key.
        let out = r.commit(sig("Leshang", 200), "rename").unwrap();
        assert!(out.carry.renamed.is_empty(), "already carried eagerly");
        assert!(r.function().contains(&path("renamed.txt")));
    }

    #[test]
    fn rename_dir_carries_subtree() {
        let mut r = demo_repo();
        r.add_cite(&path("d"), cite("dir")).unwrap();
        r.add_cite(&path("d/f2.txt"), cite("file")).unwrap();
        r.rename(&path("d"), &path("moved/dir")).unwrap();
        assert_eq!(
            r.function().get(&path("moved/dir")).unwrap().repo_name,
            "dir"
        );
        assert_eq!(
            r.function()
                .get(&path("moved/dir/f2.txt"))
                .unwrap()
                .repo_name,
            "file"
        );
    }

    #[test]
    fn behind_the_back_rename_reconciled_at_commit() {
        let mut r = demo_repo();
        r.add_cite(&path("f1.txt"), cite("c")).unwrap();
        // Bypass the wrapper: rename directly on the worktree.
        r.repo_mut()
            .worktree_mut()
            .rename(&path("f1.txt"), &path("sneaky.txt"))
            .unwrap();
        let out = r.commit(sig("Leshang", 200), "sneaky rename").unwrap();
        assert_eq!(
            out.carry.renamed,
            vec![(path("f1.txt"), path("sneaky.txt"))]
        );
        assert!(r.function().contains(&path("sneaky.txt")));
    }

    #[test]
    fn remove_drops_citations_and_strict_policy_errors() {
        let mut r = demo_repo();
        r.add_cite(&path("d/f2.txt"), cite("c")).unwrap();
        r.remove(&path("d")).unwrap();
        assert!(!r.function().contains(&path("d/f2.txt")));

        // Strict policy: behind-the-back delete fails the commit.
        let mut r2 = demo_repo();
        r2.add_cite(&path("f1.txt"), cite("c")).unwrap();
        r2.commit(sig("L", 150), "cited").unwrap();
        r2.set_prune_policy(PrunePolicy::Strict);
        r2.repo_mut()
            .worktree_mut()
            .remove_file(&path("f1.txt"))
            .unwrap();
        assert_eq!(
            r2.commit(sig("L", 200), "bad").unwrap_err(),
            CiteError::PathMissing(path("f1.txt"))
        );
    }

    #[test]
    fn citation_file_not_directly_writable() {
        let mut r = demo_repo();
        assert!(matches!(
            r.write_file(&citation_path(), &b"{}"[..]),
            Err(CiteError::ReservedPath(_))
        ));
        assert!(matches!(
            r.remove(&citation_path()),
            Err(CiteError::ReservedPath(_))
        ));
        assert!(matches!(
            r.rename(&citation_path(), &path("x")),
            Err(CiteError::ReservedPath(_))
        ));
    }

    #[test]
    fn commit_reloads_cleanly_across_checkout() {
        let mut r = demo_repo();
        r.add_cite(&path("f1.txt"), cite("on-main")).unwrap();
        r.commit(sig("L", 200), "cite f1").unwrap();
        r.create_branch("dev").unwrap();
        r.checkout_branch("dev").unwrap();
        r.modify_cite(&path("f1.txt"), cite("on-dev")).unwrap();
        r.commit(sig("L", 300), "dev cite").unwrap();
        r.checkout_branch("main").unwrap();
        assert_eq!(r.cite(&path("f1.txt")).unwrap().repo_name, "on-main");
        r.checkout_branch("dev").unwrap();
        assert_eq!(r.cite(&path("f1.txt")).unwrap().repo_name, "on-dev");
    }

    #[test]
    fn publish_stamps_root() {
        let mut r = demo_repo();
        let head = r.repo().head_commit().unwrap();
        let out = r
            .publish(sig("L", 300), Some("v1.0"), Some("10.5281/zenodo.99"))
            .unwrap();
        assert_ne!(out.commit, head);
        let root = r.function().root();
        assert_eq!(root.commit_id, head.short());
        assert_eq!(root.version.as_deref(), Some("v1.0"));
        assert_eq!(root.doi.as_deref(), Some("10.5281/zenodo.99"));
        // The stamped file is in the published version.
        let c = r.cite_at(out.commit, &path("d/f2.txt")).unwrap();
        assert_eq!(c.doi.as_deref(), Some("10.5281/zenodo.99"));
    }

    #[test]
    fn cite_policy_path_union() {
        let mut r = demo_repo();
        r.add_cite(&path("d"), cite("dir")).unwrap();
        r.add_cite(&path("d/f2.txt"), cite("file")).unwrap();
        let chain = r
            .cite_policy(&path("d/f2.txt"), ResolvePolicy::PathUnion)
            .unwrap();
        let names: Vec<&str> = chain.iter().map(|c| c.repo_name.as_str()).collect();
        assert_eq!(names, vec!["file", "dir", "P1"]);
    }
}
