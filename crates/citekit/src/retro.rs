//! Retroactive citations — the paper's future work #2: "since many
//! software repositories have already been developed without being
//! 'citation-enabled', we would like to explore ways of adding retroactive
//! citations and ensuring their consistency and preservation through the
//! project history" (§5).
//!
//! Two entry points:
//!
//! * [`retrofit`] — analyze an uncited repository's history, synthesize a
//!   citation function from commit authorship (who touched what, when),
//!   and commit a `citation.cite` at the tip.
//! * [`retrofit_history`] — rewrite *every* version so each carries the
//!   citation function consistent with the history up to that point
//!   (à la `git filter-branch`; commit ids change, structure/authors/
//!   timestamps are preserved).

use crate::citation::Citation;
use crate::error::{CiteError, Result};
use crate::file::{self, citation_path};
use crate::function::CitationFunction;
use crate::ops::CitedRepo;
use crate::time::format_iso8601;
use gitlite::{
    diff_listings, write_tree_from_listing, Commit, Object, ObjectId, ObjectStoreExt, RepoPath,
    Repository, Signature,
};
use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};

/// Tuning for citation synthesis.
#[derive(Debug, Clone)]
pub struct RetrofitOptions {
    /// Cite directories up to this depth below the root (default 1:
    /// top-level directories, which is where team ownership usually
    /// splits — e.g. the `CoreCover/` and `citation/GUI` components of
    /// the paper's demo project).
    pub max_depth: usize,
    /// Only cite a directory when at least this many files live beneath
    /// it at the target version (default 1).
    pub min_files: usize,
    /// Owner recorded in the synthesized root citation.
    pub owner: String,
    /// URL recorded in the synthesized citations.
    pub url: String,
}

impl RetrofitOptions {
    /// Reasonable defaults for `owner`/`url`.
    pub fn new(owner: impl Into<String>, url: impl Into<String>) -> Self {
        RetrofitOptions {
            max_depth: 1,
            min_files: 1,
            owner: owner.into(),
            url: url.into(),
        }
    }
}

/// What [`retrofit`] produced.
#[derive(Debug, Clone)]
pub struct RetrofitReport {
    /// Directories that received synthesized citations.
    pub cited_dirs: Vec<RepoPath>,
    /// The commit that introduced `citation.cite`.
    pub commit: ObjectId,
}

/// Per-directory authorship accumulated over history.
#[derive(Debug, Clone, Default)]
struct DirStats {
    /// Authors in order of first contribution.
    authors: Vec<String>,
    /// Last commit that touched the directory.
    last_commit: Option<ObjectId>,
    /// Timestamp of that commit.
    last_ts: i64,
}

impl DirStats {
    fn record(&mut self, author: &str, commit: ObjectId, ts: i64) {
        if !self.authors.iter().any(|a| a == author) {
            self.authors.push(author.to_owned());
        }
        if ts >= self.last_ts || self.last_commit.is_none() {
            self.last_commit = Some(commit);
            self.last_ts = ts;
        }
    }
}

/// Walks `commits` (oldest first) and accumulates per-directory stats.
/// Attribution follows first-parent diffs, like `git log` defaults.
fn accumulate_stats(
    repo: &Repository,
    commits: &[ObjectId],
    max_depth: usize,
) -> Result<BTreeMap<RepoPath, DirStats>> {
    let mut stats: BTreeMap<RepoPath, DirStats> = BTreeMap::new();
    let cite = citation_path();
    for &id in commits {
        let commit = repo.commit_obj(id).map_err(CiteError::Git)?;
        // Same root tree as the first parent (a graph-record read when a
        // commit-graph is loaded) → empty diff; skip both snapshots.
        if let Some(p) = commit.parents.first() {
            if repo.tree_of(*p).map_err(CiteError::Git)? == commit.tree {
                continue;
            }
        }
        let old = match commit.parents.first() {
            Some(p) => repo.snapshot(*p).map_err(CiteError::Git)?,
            None => BTreeMap::new(),
        };
        let new = repo.snapshot(id).map_err(CiteError::Git)?;
        let diff = diff_listings(&old, &new, repo.odb(), false);
        let touched = diff
            .added
            .keys()
            .chain(diff.deleted.keys())
            .chain(diff.modified.keys());
        for path in touched {
            if *path == cite {
                continue;
            }
            // The root plus every ancestor directory down to max_depth.
            stats.entry(RepoPath::root()).or_default().record(
                &commit.author.name,
                id,
                commit.author.timestamp,
            );
            let comps = path.components();
            for depth in 1..comps.len().min(max_depth + 1) {
                let dir = RepoPath::parse(&comps[..depth].join("/")).expect("valid components");
                stats.entry(dir).or_default().record(
                    &commit.author.name,
                    id,
                    commit.author.timestamp,
                );
            }
        }
    }
    Ok(stats)
}

/// Synthesizes the citation function for the version `at`, given stats
/// accumulated up to it.
fn synthesize_function(
    repo: &Repository,
    at: ObjectId,
    stats: &BTreeMap<RepoPath, DirStats>,
    opts: &RetrofitOptions,
) -> Result<CitationFunction> {
    let commit = repo.commit_obj(at).map_err(CiteError::Git)?;
    let listing = repo.snapshot(at).map_err(CiteError::Git)?;

    let root_stats = stats.get(&RepoPath::root());
    let root = Citation::builder(repo.name(), &opts.owner)
        .commit(at.short(), format_iso8601(commit.author.timestamp))
        .url(&opts.url)
        .authors(root_stats.map(|s| s.authors.clone()).unwrap_or_default())
        .note("retroactive citation synthesized from commit history")
        .build();
    let mut func = CitationFunction::new(root);

    for (dir, dir_stats) in stats {
        if dir.is_root() || dir.depth() > opts.max_depth {
            continue;
        }
        let files_under = listing.keys().filter(|p| p.starts_with(dir)).count();
        if files_under < opts.min_files {
            continue; // directory gone or too small at this version
        }
        // Only cite the directory when its authorship is a *proper*
        // restriction of the whole project's: a dir touched by everyone
        // adds no credit information beyond the root.
        if let Some(rs) = root_stats {
            if rs.authors == dir_stats.authors {
                continue;
            }
        }
        let citation = Citation::builder(repo.name(), &opts.owner)
            .commit(
                dir_stats.last_commit.map(|c| c.short()).unwrap_or_default(),
                format_iso8601(dir_stats.last_ts),
            )
            .url(&opts.url)
            .authors(dir_stats.authors.clone())
            .note("retroactive citation synthesized from commit history")
            .build();
        func.set(dir.clone(), citation, true);
    }
    Ok(func)
}

/// Citation-enables an uncited repository: synthesizes citations from its
/// history and commits the resulting `citation.cite` at the tip.
pub fn retrofit(
    repo: Repository,
    opts: &RetrofitOptions,
    author: Signature,
) -> Result<(CitedRepo, RetrofitReport)> {
    let head = repo.head_commit().map_err(CiteError::Git)?;
    if repo.file_at(head, &citation_path()).is_ok() {
        return Err(CiteError::BadCitationFile(
            "repository is already citation-enabled".into(),
        ));
    }
    let mut commits = repo.log(head).map_err(CiteError::Git)?;
    commits.reverse(); // oldest first
    let stats = accumulate_stats(&repo, &commits, opts.max_depth)?;
    let func = synthesize_function(&repo, head, &stats, opts)?;
    let cited_dirs: Vec<RepoPath> = func.paths().filter(|p| !p.is_root()).cloned().collect();

    let mut repo = repo;
    file::write_worktree(repo.worktree_mut(), &func)?;
    let commit = repo
        .commit(author, "retrofit: add retroactive citation.cite")
        .map_err(CiteError::Git)?;
    let cited = CitedRepo::open(repo)?;
    Ok((cited, RetrofitReport { cited_dirs, commit }))
}

/// Rewrites the full history of `src` so *every* version carries a
/// `citation.cite` consistent with the history up to that version.
///
/// Returns the rewritten repository plus the old-commit → new-commit map.
/// All branches are rewritten; authors, messages and timestamps are
/// preserved; every commit id necessarily changes (the tree changed).
pub fn retrofit_history(
    src: &Repository,
    opts: &RetrofitOptions,
) -> Result<(Repository, HashMap<ObjectId, ObjectId>)> {
    // Collect every commit reachable from any branch, in parents-first
    // topological order (Kahn's algorithm).
    let mut all: HashSet<ObjectId> = HashSet::new();
    let mut stack: Vec<ObjectId> = src.branches().map(|(_, tip)| tip).collect();
    if stack.is_empty() {
        return Err(CiteError::Git(gitlite::GitError::EmptyRepository));
    }
    while let Some(id) = stack.pop() {
        if all.insert(id) {
            for p in src.commit_obj(id).map_err(CiteError::Git)?.parents {
                stack.push(p);
            }
        }
    }
    let mut children: HashMap<ObjectId, Vec<ObjectId>> = HashMap::new();
    let mut indegree: HashMap<ObjectId, usize> = HashMap::new();
    for &id in &all {
        let parents = src.commit_obj(id).map_err(CiteError::Git)?.parents;
        indegree.insert(id, parents.len());
        for p in parents {
            children.entry(p).or_default().push(id);
        }
    }
    let mut ready: VecDeque<ObjectId> = {
        let mut roots: Vec<ObjectId> = indegree
            .iter()
            .filter(|(_, &d)| d == 0)
            .map(|(&id, _)| id)
            .collect();
        roots.sort_by_key(|id| {
            (
                src.commit_obj(*id).map(|c| c.author.timestamp).unwrap_or(0),
                *id,
            )
        });
        roots.into()
    };
    let mut topo: Vec<ObjectId> = Vec::with_capacity(all.len());
    while let Some(id) = ready.pop_front() {
        topo.push(id);
        if let Some(kids) = children.get(&id) {
            let mut unlocked: Vec<ObjectId> = Vec::new();
            for &k in kids {
                let d = indegree.get_mut(&k).expect("known commit");
                *d -= 1;
                if *d == 0 {
                    unlocked.push(k);
                }
            }
            unlocked.sort_by_key(|id| {
                (
                    src.commit_obj(*id).map(|c| c.author.timestamp).unwrap_or(0),
                    *id,
                )
            });
            ready.extend(unlocked);
        }
    }

    // Rewrite each commit: same listing plus a synthesized citation.cite.
    let mut dst = Repository::init(src.name().to_owned());
    let mut map: HashMap<ObjectId, ObjectId> = HashMap::new();
    // Accumulate stats incrementally per topological prefix. Because
    // attribution is first-parent, stats for a commit depend only on the
    // path of first parents; to keep the rewrite single-pass we accumulate
    // over the topological order, which visits every commit once.
    let mut stats: BTreeMap<RepoPath, DirStats> = BTreeMap::new();
    let cite = citation_path();
    for &old_id in &topo {
        let commit = src.commit_obj(old_id).map_err(CiteError::Git)?;
        let new_listing = src.snapshot(old_id).map_err(CiteError::Git)?;
        // Update stats with this commit's first-parent diff — unless the
        // root trees are identical, in which case the diff is provably
        // empty and the parent snapshot need not be materialized.
        let same_as_parent = match commit.parents.first() {
            Some(p) => src.tree_of(*p).map_err(CiteError::Git)? == commit.tree,
            None => false,
        };
        if !same_as_parent {
            let old_listing = match commit.parents.first() {
                Some(p) => src.snapshot(*p).map_err(CiteError::Git)?,
                None => BTreeMap::new(),
            };
            let diff = diff_listings(&old_listing, &new_listing, src.odb(), false);
            for path in diff
                .added
                .keys()
                .chain(diff.deleted.keys())
                .chain(diff.modified.keys())
            {
                if *path == cite {
                    continue;
                }
                stats.entry(RepoPath::root()).or_default().record(
                    &commit.author.name,
                    old_id,
                    commit.author.timestamp,
                );
                let comps = path.components();
                for depth in 1..comps.len().min(opts.max_depth + 1) {
                    let dir = RepoPath::parse(&comps[..depth].join("/")).expect("valid components");
                    stats.entry(dir).or_default().record(
                        &commit.author.name,
                        old_id,
                        commit.author.timestamp,
                    );
                }
            }
        }

        // Build the rewritten tree: original files + synthesized citations.
        let func = synthesize_function(src, old_id, &stats, opts)?;
        gitlite::transfer_objects(src.odb(), dst.odb_mut(), &[commit.tree])
            .map_err(CiteError::Git)?;
        let mut listing = new_listing;
        let blob = dst.odb_mut().put_blob(file::to_text(&func).into_bytes());
        listing.insert(cite.clone(), blob);
        let tree = write_tree_from_listing(dst.odb_mut(), &listing);
        let new_parents: Vec<ObjectId> = commit.parents.iter().map(|p| map[p]).collect();
        let new_commit = Commit {
            tree,
            parents: new_parents,
            author: commit.author.clone(),
            message: commit.message.clone(),
        };
        let new_id = dst.odb_mut().put(Object::Commit(new_commit));
        map.insert(old_id, new_id);
    }

    // Recreate branches and check out the source's current branch.
    for (branch, tip) in src.branches() {
        dst.set_branch(branch, map[&tip]).map_err(CiteError::Git)?;
    }
    if let Some(b) = src.current_branch().map(str::to_owned) {
        if dst.has_branch(&b) {
            dst.checkout_branch(&b).map_err(CiteError::Git)?;
        }
    } else {
        let first = dst.branches().next().map(|(b, _)| b.to_owned());
        if let Some(b) = first {
            dst.checkout_branch(&b).map_err(CiteError::Git)?;
        }
    }
    Ok((dst, map))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gitlite::path;

    fn sig(n: &str, t: i64) -> Signature {
        Signature::new(n, format!("{n}@x"), t)
    }

    /// An uncited project: alice builds `core/`, bob builds `gui/`, both
    /// touch the README.
    fn legacy_repo() -> Repository {
        let mut r = Repository::init("legacy");
        r.worktree_mut()
            .write(&path("README.md"), &b"v1\n"[..])
            .unwrap();
        r.worktree_mut()
            .write(&path("core/a.rs"), &b"a\n"[..])
            .unwrap();
        r.commit(sig("alice", 100), "core start").unwrap();
        r.worktree_mut()
            .write(&path("gui/app.js"), &b"g\n"[..])
            .unwrap();
        r.commit(sig("bob", 200), "gui start").unwrap();
        r.worktree_mut()
            .write(&path("core/b.rs"), &b"b\n"[..])
            .unwrap();
        r.commit(sig("alice", 300), "more core").unwrap();
        r.worktree_mut()
            .write(&path("README.md"), &b"v2\n"[..])
            .unwrap();
        r.commit(sig("bob", 400), "docs").unwrap();
        r
    }

    #[test]
    fn retrofit_synthesizes_per_directory_credit() {
        let repo = legacy_repo();
        let opts = RetrofitOptions::new("maintainer", "https://hub/legacy");
        let (cited, report) = retrofit(repo, &opts, sig("maintainer", 500)).unwrap();
        // Both component dirs got citations (each has a proper subset of
        // the authors).
        assert_eq!(report.cited_dirs, vec![path("core"), path("gui")]);
        let core = cited.function().get(&path("core")).unwrap();
        assert_eq!(core.author_list, vec!["alice".to_owned()]);
        let gui = cited.function().get(&path("gui")).unwrap();
        assert_eq!(gui.author_list, vec!["bob".to_owned()]);
        // Root credits both, in order of first contribution.
        assert_eq!(
            cited.function().root().author_list,
            vec!["alice".to_owned(), "bob".to_owned()]
        );
        // Resolution now credits the right team.
        assert_eq!(
            cited.cite(&path("core/a.rs")).unwrap().author_list,
            vec!["alice".to_owned()]
        );
        assert_eq!(
            cited.cite(&path("gui/app.js")).unwrap().author_list,
            vec!["bob".to_owned()]
        );
    }

    #[test]
    fn retrofit_dir_last_commit_is_latest_touch() {
        let repo = legacy_repo();
        let expected = {
            // alice's t=300 commit is the last to touch core/.
            let log = repo.log_head().unwrap();
            // log is newest first: [400 bob, 300 alice, 200 bob, 100 alice]
            log[1]
        };
        let opts = RetrofitOptions::new("m", "https://hub/legacy");
        let (cited, _) = retrofit(repo, &opts, sig("m", 500)).unwrap();
        let core = cited.function().get(&path("core")).unwrap();
        assert_eq!(core.commit_id, expected.short());
        assert_eq!(core.committed_date, format_iso8601(300));
    }

    #[test]
    fn retrofit_rejects_already_cited() {
        let mut cited = CitedRepo::init("p", "o", "https://x");
        cited.write_file(&path("a.txt"), &b"a\n"[..]).unwrap();
        cited.commit(sig("o", 1), "c").unwrap();
        let opts = RetrofitOptions::new("o", "https://x");
        assert!(matches!(
            retrofit(cited.repo().clone(), &opts, sig("o", 2)),
            Err(CiteError::BadCitationFile(_))
        ));
    }

    #[test]
    fn retrofit_min_files_filters_small_dirs() {
        let repo = legacy_repo();
        let mut opts = RetrofitOptions::new("m", "https://x");
        opts.min_files = 2; // core has 2 files, gui only 1
        let (_, report) = retrofit(repo, &opts, sig("m", 500)).unwrap();
        assert_eq!(report.cited_dirs, vec![path("core")]);
    }

    #[test]
    fn retrofit_history_gives_every_version_a_citation_file() {
        let repo = legacy_repo();
        let original_log = repo.log_head().unwrap();
        let opts = RetrofitOptions::new("m", "https://hub/legacy");
        let (rewritten, map) = retrofit_history(&repo, &opts).unwrap();
        // Same number of commits, all remapped.
        let new_log = rewritten.log_head().unwrap();
        assert_eq!(new_log.len(), original_log.len());
        for old in &original_log {
            assert!(map.contains_key(old));
        }
        // Every rewritten version has a parseable citation.cite.
        for new_id in &new_log {
            let text = rewritten.file_at(*new_id, &citation_path()).unwrap();
            let func = file::parse(&String::from_utf8_lossy(&text)).unwrap();
            assert!(!func.is_empty());
        }
        // The first version (only alice, only core/) must NOT cite core
        // separately — its authorship equals the whole project's then.
        let first_new = map[original_log.last().unwrap()];
        let text = rewritten.file_at(first_new, &citation_path()).unwrap();
        let func = file::parse(&String::from_utf8_lossy(&text)).unwrap();
        assert!(!func.contains(&path("core")));
        // The final version cites both dirs.
        let tip_func = file::parse(&String::from_utf8_lossy(
            &rewritten.file_at(new_log[0], &citation_path()).unwrap(),
        ))
        .unwrap();
        assert!(tip_func.contains(&path("core")));
        assert!(tip_func.contains(&path("gui")));
        // Authors/messages/timestamps preserved.
        let old_c = repo.commit_obj(original_log[0]).unwrap();
        let new_c = rewritten.commit_obj(new_log[0]).unwrap();
        assert_eq!(old_c.author, new_c.author);
        assert_eq!(old_c.message, new_c.message);
    }

    #[test]
    fn retrofit_history_preserves_branch_structure() {
        let mut repo = legacy_repo();
        repo.create_branch("feature").unwrap();
        repo.checkout_branch("feature").unwrap();
        repo.worktree_mut()
            .write(&path("feat.txt"), &b"f\n"[..])
            .unwrap();
        repo.commit(sig("carol", 500), "feature work").unwrap();
        repo.checkout_branch("main").unwrap();
        let opts = RetrofitOptions::new("m", "https://x");
        let (rewritten, map) = retrofit_history(&repo, &opts).unwrap();
        assert!(rewritten.has_branch("feature"));
        assert_eq!(
            rewritten.branch_tip("feature").unwrap(),
            map[&repo.branch_tip("feature").unwrap()]
        );
        // The merge-commit-free DAG shape is preserved: feature tip's
        // parent is main's old tip, remapped.
        let feat_commit = rewritten
            .commit_obj(rewritten.branch_tip("feature").unwrap())
            .unwrap();
        assert_eq!(
            feat_commit.parents,
            vec![map[&repo.branch_tip("main").unwrap()]]
        );
        // The rewritten repo can be opened as a CitedRepo directly.
        let cited = CitedRepo::open(rewritten).unwrap();
        assert_eq!(cited.function().root().repo_name, "legacy");
    }
}
