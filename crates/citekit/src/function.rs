//! The citation function (paper §2): a partial map from paths of a project
//! version to [`Citation`]s, total at the root, with closest-ancestor
//! resolution.

use crate::citation::Citation;
use crate::error::{CiteError, Result};
use gitlite::RepoPath;
use std::collections::BTreeMap;

/// One entry in the active domain of a citation function.
#[derive(Debug, Clone, PartialEq)]
pub struct CiteEntry {
    /// The attached citation.
    pub citation: Citation,
    /// Whether the cited node is a directory (affects only the rendered
    /// key: directories get a trailing `/`, Listing 1 style).
    pub is_dir: bool,
}

/// How `Cite(V,P)(n)` interprets the active domain (paper §2 defines
/// closest-ancestor and notes "there could be other definitions ... e.g.
/// ones that include every citation on the path from n to r").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ResolvePolicy {
    /// The citation of `n` itself, or of its closest cited ancestor — the
    /// paper's default.
    #[default]
    ClosestAncestor,
    /// Every citation on the path from `n` up to the root, nearest first.
    PathUnion,
    /// Only the root citation, regardless of `n`.
    RootOnly,
}

/// A citation function `C(V,P)`: partial map from paths to citations with
/// the root always in the active domain.
#[derive(Debug, Clone, PartialEq)]
pub struct CitationFunction {
    entries: BTreeMap<RepoPath, CiteEntry>,
}

impl CitationFunction {
    /// Creates a citation function whose active domain is just the root.
    pub fn new(root: Citation) -> Self {
        let mut entries = BTreeMap::new();
        entries.insert(
            RepoPath::root(),
            CiteEntry {
                citation: root,
                is_dir: true,
            },
        );
        CitationFunction { entries }
    }

    /// Builds from raw entries. Fails unless the root is present.
    pub fn from_entries(entries: BTreeMap<RepoPath, CiteEntry>) -> Result<Self> {
        if !entries.contains_key(&RepoPath::root()) {
            return Err(CiteError::BadCitationFile(
                "the root entry \"/\" is required".into(),
            ));
        }
        Ok(CitationFunction { entries })
    }

    /// Number of entries in the active domain (≥ 1: the root).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Never true — the root is always present. Provided for API symmetry.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The root citation.
    pub fn root(&self) -> &Citation {
        &self.entries[&RepoPath::root()].citation
    }

    /// Replaces the root citation.
    pub fn set_root(&mut self, citation: Citation) {
        self.entries.insert(
            RepoPath::root(),
            CiteEntry {
                citation,
                is_dir: true,
            },
        );
    }

    /// The explicit citation at `path`, if `path` is in the active domain.
    pub fn get(&self, path: &RepoPath) -> Option<&Citation> {
        self.entries.get(path).map(|e| &e.citation)
    }

    /// The full entry at `path`.
    pub fn entry(&self, path: &RepoPath) -> Option<&CiteEntry> {
        self.entries.get(path)
    }

    /// True when `path` is in the active domain.
    pub fn contains(&self, path: &RepoPath) -> bool {
        self.entries.contains_key(path)
    }

    /// Inserts or replaces the citation at `path`. Returns the previous
    /// citation if any. (The op-level Add/Modify distinction lives in
    /// [`crate::ops`]; this is the raw mutation.)
    pub fn set(&mut self, path: RepoPath, citation: Citation, is_dir: bool) -> Option<Citation> {
        let is_dir = if path.is_root() { true } else { is_dir };
        self.entries
            .insert(path, CiteEntry { citation, is_dir })
            .map(|e| e.citation)
    }

    /// Removes the citation at `path`. The root cannot be removed.
    pub fn remove(&mut self, path: &RepoPath) -> Result<Citation> {
        if path.is_root() {
            return Err(CiteError::RootCitationRequired);
        }
        self.entries
            .remove(path)
            .map(|e| e.citation)
            .ok_or_else(|| CiteError::NotCited(path.clone()))
    }

    /// Iterates `(path, entry)` in path order (root first).
    pub fn iter(&self) -> impl Iterator<Item = (&RepoPath, &CiteEntry)> {
        self.entries.iter()
    }

    /// Iterates the active domain's paths.
    pub fn paths(&self) -> impl Iterator<Item = &RepoPath> {
        self.entries.keys()
    }

    // ----- resolution ---------------------------------------------------

    /// `Cite(V,P)(n)` with the default closest-ancestor policy; also
    /// returns the path of the entry that supplied the citation. Total:
    /// the root always matches.
    pub fn resolve(&self, path: &RepoPath) -> (&RepoPath, &Citation) {
        if let Some((p, e)) = self.entries.get_key_value(path) {
            return (p, &e.citation);
        }
        for anc in path.ancestors() {
            if let Some((p, e)) = self.entries.get_key_value(&anc) {
                return (p, &e.citation);
            }
        }
        // Unreachable in a well-formed function, but stay total regardless.
        let (p, e) = self
            .entries
            .get_key_value(&RepoPath::root())
            .expect("root entry is enforced at construction");
        (p, &e.citation)
    }

    /// Resolution under an explicit [`ResolvePolicy`]. Returns matched
    /// entries nearest-first (always at least one).
    pub fn resolve_policy(
        &self,
        path: &RepoPath,
        policy: ResolvePolicy,
    ) -> Vec<(&RepoPath, &Citation)> {
        match policy {
            ResolvePolicy::ClosestAncestor => vec![self.resolve(path)],
            ResolvePolicy::RootOnly => {
                let (p, e) = self
                    .entries
                    .get_key_value(&RepoPath::root())
                    .expect("root entry is enforced at construction");
                vec![(p, &e.citation)]
            }
            ResolvePolicy::PathUnion => {
                let mut out = Vec::new();
                if let Some((p, e)) = self.entries.get_key_value(path) {
                    out.push((p, &e.citation));
                }
                for anc in path.ancestors() {
                    if let Some((p, e)) = self.entries.get_key_value(&anc) {
                        out.push((p, &e.citation));
                    }
                }
                out
            }
        }
    }

    // ----- key maintenance under tree edits ------------------------------

    /// Rewrites the key `from` to `to` (paper §2: moved/renamed nodes keep
    /// their citations under the new path). No-op when `from` is not in
    /// the active domain.
    pub fn rekey(&mut self, from: &RepoPath, to: &RepoPath) {
        if let Some(entry) = self.entries.remove(from) {
            self.entries.insert(to.clone(), entry);
        }
    }

    /// Rewrites every key under `from` (inclusive) to live under `to` —
    /// used for directory renames and by `CopyCite`'s key migration.
    pub fn rebase_subtree(&mut self, from: &RepoPath, to: &RepoPath) {
        let movers: Vec<RepoPath> = self
            .entries
            .keys()
            .filter(|p| p.starts_with(from) && !p.is_root())
            .cloned()
            .collect();
        for old in movers {
            let new = old.rebase(from, to).expect("starts_with checked");
            let entry = self.entries.remove(&old).expect("present");
            self.entries.insert(new, entry);
        }
    }

    /// Applies a batch of file-level renames.
    pub fn apply_renames(&mut self, renames: &[(RepoPath, RepoPath)]) {
        for (from, to) in renames {
            self.rekey(from, to);
        }
    }

    /// Drops every non-root entry for which `keep` returns false (e.g.
    /// paths deleted from the version). Returns the removed paths.
    pub fn retain(&mut self, mut keep: impl FnMut(&RepoPath, &CiteEntry) -> bool) -> Vec<RepoPath> {
        let doomed: Vec<RepoPath> = self
            .entries
            .iter()
            .filter(|(p, e)| !p.is_root() && !keep(p, e))
            .map(|(p, _)| p.clone())
            .collect();
        for p in &doomed {
            self.entries.remove(p);
        }
        doomed
    }

    /// Consumes the function into its raw entries.
    pub fn into_entries(self) -> BTreeMap<RepoPath, CiteEntry> {
        self.entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gitlite::path;

    fn cite(name: &str) -> Citation {
        Citation::builder(name, "owner")
            .url(format!("https://x/{name}"))
            .build()
    }

    fn sample() -> CitationFunction {
        let mut f = CitationFunction::new(cite("root"));
        f.set(path("src"), cite("src"), true);
        f.set(path("src/core/main.rs"), cite("main"), false);
        f
    }

    #[test]
    fn root_always_present() {
        let f = CitationFunction::new(cite("root"));
        assert_eq!(f.len(), 1);
        assert_eq!(f.root().repo_name, "root");
        assert!(f.contains(&RepoPath::root()));
    }

    #[test]
    fn from_entries_requires_root() {
        let mut entries = BTreeMap::new();
        entries.insert(
            path("a"),
            CiteEntry {
                citation: cite("a"),
                is_dir: false,
            },
        );
        assert!(matches!(
            CitationFunction::from_entries(entries),
            Err(CiteError::BadCitationFile(_))
        ));
    }

    #[test]
    fn root_cannot_be_removed() {
        let mut f = sample();
        assert_eq!(
            f.remove(&RepoPath::root()).unwrap_err(),
            CiteError::RootCitationRequired
        );
        assert!(f.remove(&path("src")).is_ok());
        assert_eq!(
            f.remove(&path("src")).unwrap_err(),
            CiteError::NotCited(path("src"))
        );
    }

    #[test]
    fn resolve_exact_match() {
        let f = sample();
        let (p, c) = f.resolve(&path("src/core/main.rs"));
        assert_eq!(p, &path("src/core/main.rs"));
        assert_eq!(c.repo_name, "main");
    }

    #[test]
    fn resolve_closest_ancestor() {
        let f = sample();
        // src/core has no citation; closest is src.
        let (p, c) = f.resolve(&path("src/core"));
        assert_eq!(p, &path("src"));
        assert_eq!(c.repo_name, "src");
        // src/core/util.rs also resolves to src (sibling file's citation
        // does not leak).
        let (p, c) = f.resolve(&path("src/core/util.rs"));
        assert_eq!(p, &path("src"));
        assert_eq!(c.repo_name, "src");
        // Something outside src resolves to the root.
        let (p, c) = f.resolve(&path("docs/readme.md"));
        assert!(p.is_root());
        assert_eq!(c.repo_name, "root");
    }

    #[test]
    fn resolve_is_total_at_root() {
        let f = CitationFunction::new(cite("root"));
        let (p, _) = f.resolve(&RepoPath::root());
        assert!(p.is_root());
    }

    #[test]
    fn path_union_policy_collects_chain() {
        let f = sample();
        let chain = f.resolve_policy(&path("src/core/main.rs"), ResolvePolicy::PathUnion);
        let names: Vec<&str> = chain.iter().map(|(_, c)| c.repo_name.as_str()).collect();
        assert_eq!(names, vec!["main", "src", "root"]);
        let root_only = f.resolve_policy(&path("src/core/main.rs"), ResolvePolicy::RootOnly);
        assert_eq!(root_only.len(), 1);
        assert_eq!(root_only[0].1.repo_name, "root");
        let closest = f.resolve_policy(&path("src/core"), ResolvePolicy::ClosestAncestor);
        assert_eq!(closest[0].1.repo_name, "src");
    }

    #[test]
    fn set_returns_previous() {
        let mut f = sample();
        let prev = f.set(path("src"), cite("src2"), true);
        assert_eq!(prev.unwrap().repo_name, "src");
        assert_eq!(f.get(&path("src")).unwrap().repo_name, "src2");
        // New path returns None.
        assert!(f.set(path("new.txt"), cite("n"), false).is_none());
    }

    #[test]
    fn root_is_dir_forced() {
        let mut f = sample();
        f.set(RepoPath::root(), cite("r2"), false);
        assert!(f.entry(&RepoPath::root()).unwrap().is_dir);
    }

    #[test]
    fn rekey_moves_citation() {
        let mut f = sample();
        f.rekey(&path("src/core/main.rs"), &path("src/core/app.rs"));
        assert!(!f.contains(&path("src/core/main.rs")));
        assert_eq!(f.get(&path("src/core/app.rs")).unwrap().repo_name, "main");
        // Rekey of uncited path is a no-op.
        f.rekey(&path("ghost"), &path("zzz"));
        assert!(!f.contains(&path("zzz")));
    }

    #[test]
    fn rebase_subtree_moves_whole_prefix() {
        let mut f = sample();
        f.rebase_subtree(&path("src"), &path("lib"));
        assert!(f.contains(&path("lib")));
        assert!(f.contains(&path("lib/core/main.rs")));
        assert!(!f.contains(&path("src")));
        // The root never moves.
        assert!(f.contains(&RepoPath::root()));
    }

    #[test]
    fn retain_drops_non_root_only() {
        let mut f = sample();
        let dropped = f.retain(|_, _| false);
        assert_eq!(dropped.len(), 2);
        assert_eq!(f.len(), 1);
        assert!(f.contains(&RepoPath::root()));
    }

    #[test]
    fn apply_renames_batch() {
        let mut f = sample();
        f.apply_renames(&[
            (path("src/core/main.rs"), path("app/main.rs")),
            (path("src"), path("app")),
        ]);
        assert_eq!(f.get(&path("app/main.rs")).unwrap().repo_name, "main");
        assert_eq!(f.get(&path("app")).unwrap().repo_name, "src");
    }
}
