//! Changed-path Bloom filter equivalence: over random linear histories,
//! `citation_log` and `annotate` must return identical results before
//! (exact tree diffs) and after (Bloom-accelerated) pack maintenance
//! writes the filters — the filter is a skip hint, never an answer.

use citekit::{Citation, CitedRepo};
use gitlite::{annotate, path, ObjectId, PackStore, Signature};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

static COUNTER: AtomicU64 = AtomicU64::new(0);

fn temp_dir(tag: &str) -> PathBuf {
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "citekit-bloom-prop-{tag}-{}-{n}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

proptest! {
    /// Each step is one commit: (kind % 4, payload). Kinds touch the
    /// tracked file's citation, the tracked file's content, or unrelated
    /// paths — so some commits change `citation.cite`, some don't, and
    /// the filtered walk has real skips to get wrong.
    #[test]
    fn audit_scans_are_identical_with_and_without_bloom_filters(
        steps in prop::collection::vec((any::<u8>(), any::<u8>()), 1..14),
    ) {
        let dir = temp_dir("walks");
        let store = PackStore::open(&dir).expect("open");
        let mut cited = CitedRepo::init_with_store("p", "Owner", "https://x/p", Box::new(store));
        let tracked = path("src/lib.rs");
        let mut cited_now = false;

        cited.write_file(&tracked, &b"line one\nline two\n"[..]).unwrap();
        cited.commit(Signature::new("Owner", "o@x", 1), "seed").unwrap();

        for (i, (kind, payload)) in steps.iter().enumerate() {
            match kind % 4 {
                0 => {
                    let c = Citation::builder(format!("c{i}"), "Owner").build();
                    if cited_now {
                        cited.modify_cite(&tracked, c).unwrap();
                    } else {
                        cited.add_cite(&tracked, c).unwrap();
                        cited_now = true;
                    }
                }
                1 if cited_now => {
                    cited.del_cite(&tracked).unwrap();
                    cited_now = false;
                }
                2 => {
                    let text = format!("line one\nedit {i} {payload}\n");
                    cited.write_file(&tracked, text.into_bytes()).unwrap();
                }
                _ => {
                    let p = path(&format!("docs/n{}.md", payload % 5));
                    cited.write_file(&p, format!("noise {i}").into_bytes()).unwrap();
                }
            }
            cited
                .commit(Signature::new("Owner", "o@x", 2 + i as i64), format!("s{i}"))
                .unwrap();
        }

        let head = cited.repo().head_commit().unwrap();
        let log_before = cited.citation_log(&tracked).unwrap();
        let ann_before = annotate(cited.repo(), head, &tracked).unwrap();

        // Maintenance packs the objects and writes the graph with
        // changed-path Bloom filters; both scans must not move.
        let roots: Vec<ObjectId> = cited.repo().branches().map(|(_, tip)| tip).collect();
        cited
            .repo_mut()
            .odb_mut()
            .maintain(&roots)
            .expect("pack store supports maintenance")
            .expect("gc succeeds");
        let graph = cited.repo().odb().commit_graph().expect("graph present");
        prop_assert!(graph.bloom_coverage() > 0, "filters were written");

        let log_after = cited.citation_log(&tracked).unwrap();
        let ann_after = annotate(cited.repo(), head, &tracked).unwrap();
        prop_assert_eq!(log_before, log_after);
        prop_assert_eq!(ann_before, ann_after);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
