//! The citation layer's audit scans (`citation_log`, retrofit's history
//! walk) must return identical results whether or not the backing store
//! carries a commit-graph — the graph is an accelerator, never a
//! behavior change.

use citekit::{Citation, CitedRepo};
use gitlite::{path, ObjectId, PackStore, Signature};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

static COUNTER: AtomicU64 = AtomicU64::new(0);

fn temp_dir(tag: &str) -> PathBuf {
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "citekit-graph-test-{tag}-{}-{n}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn citation_log_is_identical_with_and_without_the_graph() {
    let dir = temp_dir("citation-log");
    let store = PackStore::open(&dir).unwrap();
    let mut cited = CitedRepo::init_with_store("p", "Owner", "https://x/p", Box::new(store));
    let f = path("f.txt");
    cited.write_file(&f, &b"f\n"[..]).unwrap();
    cited
        .commit(Signature::new("Owner", "o@x", 100), "V1")
        .unwrap();
    cited
        .add_cite(&f, Citation::builder("c1", "Alice").build())
        .unwrap();
    cited
        .commit(Signature::new("Alice", "a@x", 200), "V2")
        .unwrap();
    cited
        .modify_cite(&f, Citation::builder("c2", "Bob").build())
        .unwrap();
    cited
        .commit(Signature::new("Bob", "b@x", 300), "V3")
        .unwrap();
    cited.del_cite(&f).unwrap();
    cited
        .commit(Signature::new("Carol", "c@x", 400), "V4")
        .unwrap();

    let before = cited.citation_log(&f).unwrap();
    assert_eq!(before.len(), 3, "add, modify, delete");

    // Maintenance writes the commit-graph; the audit scan must not move.
    let roots: Vec<ObjectId> = cited.repo().branches().map(|(_, tip)| tip).collect();
    cited
        .repo_mut()
        .odb_mut()
        .maintain(&roots)
        .expect("pack store supports maintenance")
        .expect("gc succeeds");
    assert!(
        cited.repo().odb().commit_graph().is_some(),
        "graph present after maintenance"
    );
    let after = cited.citation_log(&f).unwrap();
    assert_eq!(before, after);

    // A version created after the graph was written still shows up —
    // the first-parent walk falls back for uncovered tips.
    cited
        .add_cite(&f, Citation::builder("c3", "Dan").build())
        .unwrap();
    cited
        .commit(Signature::new("Dan", "d@x", 500), "V5")
        .unwrap();
    let extended = cited.citation_log(&f).unwrap();
    assert_eq!(extended.len(), 4);
    assert_eq!(extended.last().unwrap().author, "Dan");
    std::fs::remove_dir_all(&dir).unwrap();
}
