//! Property tests for the citation model's invariants.

use citekit::{
    file, merge::merge_functions, Citation, CitationFunction, CiteIndex, FailOnConflict,
    MergeStrategy, PreferOurs, ResolvePolicy,
};
use gitlite::RepoPath;
use proptest::prelude::*;

fn arb_citation() -> impl Strategy<Value = Citation> {
    (
        "[a-zA-Z0-9_ -]{1,16}",
        "[a-zA-Z ]{1,12}",
        prop::collection::vec("[a-zA-Z .]{1,10}", 0..4),
        prop::option::of("[0-9./a-z]{4,16}"),
    )
        .prop_map(|(name, owner, authors, doi)| {
            let mut b = Citation::builder(name, owner)
                .commit("abc1234", "2020-01-01T00:00:00Z")
                .url("https://example.org/x")
                .authors(authors);
            if let Some(d) = doi {
                b = b.doi(d);
            }
            b.build()
        })
}

fn arb_path() -> impl Strategy<Value = RepoPath> {
    prop::collection::vec("[a-c]{1,2}", 0..4)
        .prop_map(|parts| RepoPath::parse(&parts.join("/")).unwrap())
}

fn arb_function() -> impl Strategy<Value = CitationFunction> {
    (
        arb_citation(),
        prop::collection::vec((arb_path(), arb_citation(), any::<bool>()), 0..10),
    )
        .prop_map(|(root, entries)| {
            let mut f = CitationFunction::new(root);
            for (p, c, d) in entries {
                if !p.is_root() {
                    f.set(p, c, d);
                }
            }
            f
        })
}

/// Reference implementation of closest-ancestor resolution.
fn brute_force_resolve<'a>(f: &'a CitationFunction, q: &RepoPath) -> (&'a RepoPath, &'a Citation) {
    let mut candidates: Vec<&RepoPath> = f
        .paths()
        .filter(|p| q.starts_with(p) || p.is_root())
        .collect();
    candidates.sort_by_key(|p| p.depth());
    let best = candidates.last().expect("root always present");
    (best, f.get(best).unwrap())
}

proptest! {
    /// Citation JSON round trip.
    #[test]
    fn citation_round_trip(c in arb_citation()) {
        let v = c.to_value();
        prop_assert_eq!(Citation::from_value(&v).unwrap(), c);
    }

    /// citation.cite text round trip for whole functions.
    #[test]
    fn function_file_round_trip(f in arb_function()) {
        let text = file::to_text(&f);
        let back = file::parse(&text).expect("our own output parses");
        prop_assert_eq!(back, f);
    }

    /// resolve is total and matches a brute-force reference.
    #[test]
    fn resolve_matches_brute_force(f in arb_function(), q in arb_path()) {
        let (p, c) = f.resolve(&q);
        let (bp, bc) = brute_force_resolve(&f, &q);
        prop_assert_eq!(p, bp);
        prop_assert_eq!(c, bc);
    }

    /// The trie index agrees with the map-walk resolver on every query.
    #[test]
    fn index_agrees_with_resolver(f in arb_function(), queries in prop::collection::vec(arb_path(), 1..12)) {
        let idx = CiteIndex::build(&f);
        for q in &queries {
            let (p, c) = f.resolve(q);
            let (ip, ic) = idx.resolve(q).expect("total");
            prop_assert_eq!(p, ip);
            prop_assert_eq!(c, ic);
        }
    }

    /// PathUnion's first element is exactly the ClosestAncestor result and
    /// its last is always the root.
    #[test]
    fn path_union_structure(f in arb_function(), q in arb_path()) {
        let union = f.resolve_policy(&q, ResolvePolicy::PathUnion);
        let closest = f.resolve(&q);
        prop_assert!(!union.is_empty());
        prop_assert_eq!(union[0].0, closest.0);
        prop_assert!(union.last().unwrap().0.is_root());
        // Nearest-first: depths strictly decrease.
        for w in union.windows(2) {
            prop_assert!(w[0].0.depth() > w[1].0.depth());
        }
    }

    /// Union merge with everything kept: merged domain is exactly the key
    /// union, and agreeing entries never consult the resolver.
    #[test]
    fn union_merge_domain(a in arb_function(), b in arb_function()) {
        let conflict_free = {
            // Count keys where both sides have different values — those
            // need a resolver; use PreferOurs to absorb them.
            let mut n = 0;
            for p in a.paths() {
                if let (Some(x), Some(y)) = (a.get(p), b.get(p)) {
                    if x != y { n += 1; }
                }
            }
            n
        };
        let mut resolver = PreferOurs;
        let (merged, conflicts, dropped) = merge_functions(
            &a, &b, None, MergeStrategy::Union, &mut resolver, |_, _| true,
        ).unwrap();
        prop_assert_eq!(conflicts.len(), conflict_free);
        prop_assert!(dropped.is_empty());
        for p in a.paths() {
            prop_assert!(merged.contains(p), "missing ours key {:?}", p);
        }
        for p in b.paths() {
            prop_assert!(merged.contains(p), "missing theirs key {:?}", p);
        }
        for p in merged.paths() {
            prop_assert!(a.contains(p) || b.contains(p), "invented key {:?}", p);
        }
    }

    /// Merging a function with itself is the identity and conflict-free,
    /// under every strategy.
    #[test]
    fn self_merge_identity(f in arb_function()) {
        for strategy in [MergeStrategy::Union, MergeStrategy::Ours, MergeStrategy::Theirs, MergeStrategy::ThreeWay] {
            let (merged, conflicts, dropped) = merge_functions(
                &f, &f, Some(&f), strategy, &mut FailOnConflict, |_, _| true,
            ).unwrap();
            prop_assert_eq!(&merged, &f);
            prop_assert!(conflicts.is_empty());
            prop_assert!(dropped.is_empty());
        }
    }

    /// rebase_subtree then rebasing back is the identity on the function.
    #[test]
    fn rebase_round_trip(f in arb_function()) {
        let from = RepoPath::parse("a").unwrap();
        let to = RepoPath::parse("z/q").unwrap();
        // Only meaningful when no key already lives under `to`.
        prop_assume!(!f.paths().any(|p| p.starts_with(&to)));
        let mut g = f.clone();
        g.rebase_subtree(&from, &to);
        g.rebase_subtree(&to, &from);
        prop_assert_eq!(g, f);
    }
}
