//! The CLI's remote path: `gitcite hub ...` subcommands driving an
//! out-of-process hub over the line-framed TCP transport — register,
//! import, negotiated push, and the paginated `hub log` / `hub repos`
//! reads.

use gitcite_cli::run;
use hub::{Hub, SocketServer};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

static COUNTER: AtomicU64 = AtomicU64::new(0);

fn temp_dir() -> PathBuf {
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("gitcite-remote-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn ok(dir: &Path, args: &[&str]) -> String {
    let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
    run(&args, dir).unwrap_or_else(|e| panic!("command {args:?} failed: {e}"))
}

fn serve() -> (SocketServer, String) {
    let server = SocketServer::bind(Arc::new(Hub::new("https://hub.local")), "127.0.0.1:0")
        .expect("bind loopback");
    let addr = server.local_addr().to_string();
    (server, addr)
}

#[test]
fn register_import_log_push_round_trip() {
    let (server, addr) = serve();
    let dir = temp_dir();

    // A local repository with some history.
    ok(
        &dir,
        &["init", "p", "--owner", "Ann", "--url", "https://h/p"],
    );
    for i in 0..8 {
        std::fs::write(dir.join("f.txt"), format!("rev {i}\n")).unwrap();
        ok(&dir, &["commit", "-m", &format!("c{i}"), "--author", "Ann"]);
    }

    // register + import over the wire.
    let out = ok(
        &dir,
        &["hub", "register", "ann", "--name", "Ann", "--remote", &addr],
    );
    assert!(out.contains("registered ann"));
    let out = ok(
        &dir,
        &["hub", "import", "p", "--remote", &addr, "--user", "ann"],
    );
    assert!(out.contains("imported as ann/p"), "{out}");

    // The listing sees it (paginated under the hood).
    let out = ok(&dir, &["hub", "repos", "--remote", &addr]);
    assert_eq!(out.trim(), "ann/p");

    // Default `hub log` fetches one page, not the whole history.
    let out = ok(
        &dir,
        &[
            "hub",
            "log",
            "ann/p",
            "main",
            "--remote",
            &addr,
            "--page-size",
            "3",
        ],
    );
    assert_eq!(out.lines().filter(|l| l.contains("Ann")).count(), 3);
    assert!(out.contains("more history"), "{out}");
    // --all walks every page.
    let out = ok(
        &dir,
        &[
            "hub",
            "log",
            "ann/p",
            "main",
            "--remote",
            &addr,
            "--page-size",
            "3",
            "--all",
            "true",
        ],
    );
    assert_eq!(out.lines().filter(|l| l.contains("Ann")).count(), 8);
    assert!(!out.contains("more history"));

    // Advance locally, push the increment (negotiated v2 on the wire).
    std::fs::write(dir.join("f.txt"), "rev 8\n").unwrap();
    ok(&dir, &["commit", "-m", "c8", "--author", "Ann"]);
    let out = ok(
        &dir,
        &[
            "hub", "push", "ann/p", "main", "--remote", &addr, "--user", "ann",
        ],
    );
    assert!(out.contains("pushed main -> ann/p:main"), "{out}");
    let out = ok(
        &dir,
        &[
            "hub",
            "log",
            "ann/p",
            "main",
            "--remote",
            &addr,
            "--page-size",
            "1",
        ],
    );
    assert!(out.contains("c8"), "{out}");

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn remote_errors_surface_as_op_errors() {
    let (server, addr) = serve();
    let dir = temp_dir();
    // Unknown user: the hub's typed error comes through the CLI.
    let err = run(
        &["hub", "log", "nobody/none", "main", "--remote", &addr]
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>(),
        &dir,
    )
    .unwrap_err();
    assert!(err.to_string().contains("no") || err.to_string().contains("repository"));
    // Unreachable hub: a clear connection error, not a hang.
    server.shutdown();
    let err = run(
        &["hub", "repos", "--remote", "127.0.0.1:1"]
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>(),
        &dir,
    )
    .unwrap_err();
    assert!(err.to_string().contains("cannot reach hub"), "{err}");
    let _ = std::fs::remove_dir_all(&dir);
}
