//! `GITCITE_AUTO_GC` override of the auto-gc threshold. Lives in its own
//! integration-test binary because the environment is process-global:
//! here nothing else races the variable.

use gitcite_cli::{run, storage};
use std::path::{Path, PathBuf};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gitcite-autogc-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn ok(dir: &Path, args: &[&str]) -> String {
    let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
    run(&args, dir).unwrap_or_else(|e| panic!("command {args:?} failed: {e}"))
}

fn init(dir: &Path) {
    ok(
        dir,
        &["init", "p", "--owner", "Ann", "--url", "https://h/p"],
    );
}

fn commit(dir: &Path, i: usize) -> String {
    std::fs::write(dir.join("f.txt"), format!("rev {i}\n")).unwrap();
    ok(dir, &["commit", "-m", &format!("c{i}"), "--author", "Ann"])
}

// One test function: the three scenarios share the env var, so they must
// run sequentially in a known order.
#[test]
fn env_var_overrides_auto_gc_threshold() {
    // 1. A tiny threshold compacts after a single commit (the default 64
    //    would never fire this early).
    std::env::set_var("GITCITE_AUTO_GC", "1");
    assert_eq!(storage::auto_gc_threshold(), Some(1));
    let dir = temp_dir("low");
    init(&dir);
    let out = commit(&dir, 0);
    assert!(
        out.contains("auto-gc: packed"),
        "threshold 1 did not trigger auto-gc: {out}"
    );

    // 2. Zero disables auto-gc entirely, however much piles up.
    std::env::set_var("GITCITE_AUTO_GC", "0");
    assert_eq!(storage::auto_gc_threshold(), None);
    let dir = temp_dir("off");
    init(&dir);
    for i in 0..30 {
        let out = commit(&dir, i);
        assert!(
            !out.contains("auto-gc"),
            "auto-gc ran while disabled: {out}"
        );
    }
    // Manual gc still works with auto-gc off.
    assert!(ok(&dir, &["gc"]).contains("packed"));

    // 3. Garbage falls back to the default threshold instead of
    //    accidentally disabling compaction.
    std::env::set_var("GITCITE_AUTO_GC", "not-a-number");
    assert_eq!(
        storage::auto_gc_threshold(),
        Some(storage::AUTO_GC_THRESHOLD)
    );

    // 4. Unset: the default applies.
    std::env::remove_var("GITCITE_AUTO_GC");
    assert_eq!(
        storage::auto_gc_threshold(),
        Some(storage::AUTO_GC_THRESHOLD)
    );
}
