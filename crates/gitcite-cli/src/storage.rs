//! On-disk persistence for the local tool.
//!
//! The paper's second component is "a local executable tool" used "when a
//! project member downloads a copy of the project repository" (§3). A real
//! tool must survive process exits, so repositories are persisted under a
//! `.gitcite/` directory next to the working files:
//!
//! ```text
//! <workdir>/
//!   .gitcite/
//!     objects/pack/pack-<checksum>.pack   # consolidated objects
//!     objects/pack/pack-<checksum>.idx    # fanout index into the pack
//!     objects/pack/commit-graph.glcg      # commit-graph history index
//!     objects/ab/cdef...                  # loose overflow (new writes)
//!     refs                 # "<branch> <hex>" per line
//!     HEAD                 # "branch <name>" | "detached <hex>" | "unborn <name>"
//!     name                 # repository name
//!   src/main.rs ...        # the worktree, as real files
//!   citation.cite
//! ```
//!
//! Object persistence is **not** implemented here: the `objects/`
//! directory is a [`gitlite::PackStore`] — the same pluggable
//! [`gitlite::ObjectStore`] backend the substrate defines — so encoding,
//! packing, sharding, integrity checking and durability live in one
//! place. [`load`] hands the repository a `CachedStore<PackStore>`
//! backend, which means objects are read lazily (buffered packs + loose
//! files, with an LRU for hot trees/blobs) and every object written by a
//! later commit is already durable by the time [`save`] runs; `save`
//! only records refs, HEAD, the repository name and the worktree files,
//! plus any objects a memory-backed repository brought along. Metadata
//! files (refs/HEAD/name) are written atomically (temp file + rename),
//! so a crash mid-save can never leave a truncated ref file behind.
//!
//! New commits always write *loose* objects; `gitcite gc` ([`gc`])
//! consolidates them into a fresh pack, drops unreachable objects, and
//! rewrites the commit-graph ([`gitlite::CommitGraph`]) so subsequent
//! `log`/`history`/merge-base walks never decode commits. A repository
//! persisted by the older loose-only layout opens unchanged (packs and
//! the graph simply do not exist until the first `gc`).
//!
//! Loading reads the worktree back from the real files, so edits made with
//! any editor are picked up — exactly how Git behaves.

use gitlite::{
    CachedStore, GitError, Head, MaintenanceReport, ObjectId, ObjectStore, PackStore, RepoPath,
    Repository,
};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Name of the metadata directory.
pub const META_DIR: &str = ".gitcite";

fn meta(dir: &Path) -> PathBuf {
    dir.join(META_DIR)
}

fn objects_dir(dir: &Path) -> PathBuf {
    meta(dir).join("objects")
}

/// True when `dir` holds a persisted repository.
pub fn exists(dir: &Path) -> bool {
    meta(dir).join("HEAD").is_file()
}

/// Opens the object-store backend persisted under `dir`: a
/// [`PackStore`] over `.gitcite/objects` (buffered packs + loose
/// overflow), wrapped in a read-through LRU for the hot resolution paths
/// (snapshot, cite, diff/merge walks).
pub fn open_store(dir: &Path) -> Result<CachedStore<PackStore>, GitError> {
    Ok(CachedStore::new(PackStore::open(objects_dir(dir))?))
}

/// Repacks the repository under `dir`: consolidates every object
/// reachable from `roots` into one fresh pack and drops the rest (see
/// [`PackStore::gc`]). Run via `gitcite gc` once enough loose objects
/// accumulate to matter — on the order of hundreds, e.g. after importing
/// or retrofitting a large history.
pub fn gc(dir: &Path, roots: &[ObjectId]) -> Result<MaintenanceReport, GitError> {
    let mut store = PackStore::open(objects_dir(dir))?;
    store.gc(roots)
}

/// Default loose-object count at which the CLI's write paths trigger an
/// automatic [`gc`] after saving: a long edit session (each commit lands
/// ~3-4 loose objects) self-compacts instead of accumulating thousands
/// of files that slow every subsequent load. Override per invocation
/// with the `GITCITE_AUTO_GC` environment variable
/// ([`auto_gc_threshold`]).
pub const AUTO_GC_THRESHOLD: usize = 64;

/// The effective auto-gc threshold: `GITCITE_AUTO_GC` when set to a
/// number (`0` disables auto-gc entirely — `gitcite gc` still works),
/// [`AUTO_GC_THRESHOLD`] otherwise. An unparseable value falls back to
/// the default rather than disabling compaction by accident.
pub fn auto_gc_threshold() -> Option<usize> {
    match std::env::var("GITCITE_AUTO_GC") {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(0) => None,
            Ok(n) => Some(n),
            Err(_) => Some(AUTO_GC_THRESHOLD),
        },
        Err(_) => Some(AUTO_GC_THRESHOLD),
    }
}

/// Runs [`gc`] when the loose overflow has grown past
/// [`auto_gc_threshold`]; returns `None` (cheaply — only the loose area
/// is scanned, no pack is read) when below it or when auto-gc is
/// disabled.
pub fn maybe_gc(dir: &Path, roots: &[ObjectId]) -> Result<Option<MaintenanceReport>, GitError> {
    let Some(threshold) = auto_gc_threshold() else {
        return Ok(None);
    };
    // The loose overflow *is* a DiskStore over the same root, so its
    // object count is exactly the loose count — no pack buffering needed
    // for the common no-op case.
    let loose = gitlite::DiskStore::open(objects_dir(dir))?.len();
    if loose < threshold {
        return Ok(None);
    }
    gc(dir, roots).map(Some)
}

/// Persists `repo` into `dir`: metadata under `.gitcite/`, worktree as
/// real files (stale files from a previous save are removed).
///
/// Works for any backend: objects the on-disk store does not yet hold
/// (e.g. from a memory-backed repository being saved for the first time)
/// are copied in; a disk-backed repository's objects are already there.
pub fn save(dir: &Path, repo: &Repository) -> io::Result<()> {
    let meta_dir = meta(dir);
    fs::create_dir_all(&meta_dir)?;

    // Objects. Fast path: a repository loaded from this very directory
    // is already write-through onto its PackStore — re-opening the store
    // (a shard scan plus pack verification) and re-checking every id
    // would find nothing to do. Recognize that case and skip it.
    let objects = objects_dir(dir);
    let already_durable_here = repo
        .odb()
        .as_any()
        .downcast_ref::<CachedStore<PackStore>>()
        .is_some_and(|c| c.inner().root() == objects && c.inner().is_durable());
    if !already_durable_here {
        // Sync through the PackStore backend (skips ids already packed or
        // on disk — objects are immutable), batching the inserts.
        let mut store = PackStore::open(&objects).map_err(io_err)?;
        let mut missing = Vec::new();
        for id in repo.odb().ids() {
            if !store.contains(id) {
                missing.push((id, repo.odb().get(id).map_err(io_err)?));
            }
        }
        store.put_many(missing);
        store.flush().map_err(io_err)?;
    }

    // Refs. All metadata writes are temp-file + rename, so a crash can
    // truncate neither the ref list nor HEAD.
    let mut refs_text = String::new();
    for (branch, tip) in repo.branches() {
        refs_text.push_str(&format!("{branch} {}\n", tip.to_hex()));
    }
    write_atomic(&meta_dir.join("refs"), refs_text.as_bytes())?;

    // HEAD.
    let head_text = match repo.head() {
        Head::Branch(b) => format!("branch {b}\n"),
        Head::Unborn(b) => format!("unborn {b}\n"),
        Head::Detached(id) => format!("detached {}\n", id.to_hex()),
    };
    write_atomic(&meta_dir.join("HEAD"), head_text.as_bytes())?;
    write_atomic(&meta_dir.join("name"), repo.name().as_bytes())?;

    // Worktree: remove files that disappeared, then write current ones.
    let current: std::collections::BTreeSet<PathBuf> = repo
        .worktree()
        .paths()
        .map(|p| dir.join(p.to_string()))
        .collect();
    let mut on_disk = Vec::new();
    collect_files(dir, &mut on_disk)?;
    for f in on_disk {
        if !current.contains(&f) {
            let _ = fs::remove_file(&f);
        }
    }
    for (path, data) in repo.worktree().iter() {
        let target = dir.join(path.to_string());
        if let Some(parent) = target.parent() {
            fs::create_dir_all(parent)?;
        }
        fs::write(target, data)?;
    }
    prune_empty_dirs(dir)?;
    Ok(())
}

fn io_err(e: GitError) -> io::Error {
    io::Error::other(e.to_string())
}

/// Writes `bytes` to `file` via a temp file in the same directory plus a
/// rename, so readers (and crash recovery) never see a partial file.
fn write_atomic(file: &Path, bytes: &[u8]) -> io::Result<()> {
    let dir = file.parent().expect("metadata files live in .gitcite/");
    let tmp = dir.join(format!(
        ".tmp-{}-{:x}",
        std::process::id(),
        bytes.as_ptr() as usize
    ));
    fs::write(&tmp, bytes)?;
    match fs::rename(&tmp, file) {
        Ok(()) => Ok(()),
        Err(e) => {
            let _ = fs::remove_file(&tmp);
            Err(e)
        }
    }
}

/// Loads the repository persisted in `dir`, reading the worktree from the
/// real files on disk.
///
/// The returned repository stays backed by the on-disk object store (via
/// [`open_store`]): objects are fetched lazily and new commits write
/// through to `.gitcite/objects` immediately.
pub fn load(dir: &Path) -> Result<Repository, GitError> {
    let meta_dir = meta(dir);
    let name = fs::read_to_string(meta_dir.join("name"))
        .map_err(|e| GitError::Io(format!("read name: {e}")))?;
    let store = open_store(dir)?;
    let mut repo = Repository::init_with(name.trim().to_owned(), Box::new(store));

    // Refs.
    let refs_text = fs::read_to_string(meta_dir.join("refs")).unwrap_or_default();
    for line in refs_text.lines() {
        let Some((branch, hex)) = line.split_once(' ') else {
            continue;
        };
        let id = ObjectId::from_hex(hex.trim())
            .ok_or_else(|| GitError::Corrupt(format!("bad ref line {line:?}")))?;
        repo.set_branch(branch, id)?;
    }

    // HEAD — set before loading the worktree so commit parents line up.
    let head_text = fs::read_to_string(meta_dir.join("HEAD"))
        .map_err(|e| GitError::Io(format!("read HEAD: {e}")))?;
    let head_text = head_text.trim();
    match head_text.split_once(' ') {
        Some(("branch", b)) => {
            repo.checkout_branch(b)?;
        }
        Some(("unborn", _)) => {}
        Some(("detached", hex)) => {
            let id = ObjectId::from_hex(hex)
                .ok_or_else(|| GitError::Corrupt(format!("bad HEAD {head_text:?}")))?;
            repo.checkout_commit(id)?;
        }
        _ => return Err(GitError::Corrupt(format!("bad HEAD {head_text:?}"))),
    }

    // Worktree from the real files (user edits included).
    let mut files = Vec::new();
    collect_files(dir, &mut files).map_err(GitError::from)?;
    let mut wt = gitlite::WorkTree::new();
    for file in files {
        let rel = file
            .strip_prefix(dir)
            .expect("collected under dir")
            .to_string_lossy()
            .replace('\\', "/");
        let path = RepoPath::parse(&rel)?;
        let data = fs::read(&file).map_err(GitError::from)?;
        wt.write(&path, data)?;
    }
    *repo.worktree_mut() = wt;
    Ok(repo)
}

/// Recursively collects files under `dir`, skipping `.gitcite/`.
fn collect_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.file_name().map(|n| n == META_DIR).unwrap_or(false) {
            continue;
        }
        if path.is_dir() {
            collect_files(&path, out)?;
        } else if path.is_file() {
            out.push(path);
        }
    }
    Ok(())
}

/// Removes directories that became empty after stale-file cleanup.
fn prune_empty_dirs(dir: &Path) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() && path.file_name().map(|n| n != META_DIR).unwrap_or(false) {
            prune_empty_dirs(&path)?;
            if fs::read_dir(&path)?.next().is_none() {
                fs::remove_dir(&path)?;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gitlite::{path, Signature};
    use std::sync::atomic::{AtomicU64, Ordering};

    static COUNTER: AtomicU64 = AtomicU64::new(0);

    fn temp_dir() -> PathBuf {
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("gitcite-storage-test-{}-{n}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_repo() -> Repository {
        let mut r = Repository::init("disk-test");
        r.worktree_mut()
            .write(&path("a.txt"), &b"alpha\n"[..])
            .unwrap();
        r.worktree_mut()
            .write(&path("src/lib.rs"), &b"pub fn x(){}\n"[..])
            .unwrap();
        r.commit(Signature::new("alice", "a@x", 1), "c1").unwrap();
        r.create_branch("dev").unwrap();
        r.worktree_mut()
            .write(&path("b.txt"), &b"beta\n"[..])
            .unwrap();
        r.commit(Signature::new("alice", "a@x", 2), "c2").unwrap();
        r
    }

    #[test]
    fn save_load_round_trip() {
        let dir = temp_dir();
        let repo = sample_repo();
        save(&dir, &repo).unwrap();
        assert!(exists(&dir));
        let loaded = load(&dir).unwrap();
        assert_eq!(loaded.name(), repo.name());
        assert_eq!(loaded.head_commit().unwrap(), repo.head_commit().unwrap());
        assert_eq!(
            loaded.branches().collect::<Vec<_>>(),
            repo.branches().collect::<Vec<_>>()
        );
        assert_eq!(loaded.worktree(), repo.worktree());
        assert_eq!(loaded.log_head().unwrap(), repo.log_head().unwrap());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn loaded_repo_is_disk_backed_and_lazy() {
        let dir = temp_dir();
        let repo = sample_repo();
        save(&dir, &repo).unwrap();
        let loaded = load(&dir).unwrap();
        // Every object the memory-backed original held is visible through
        // the disk backend without having been eagerly decoded.
        assert_eq!(loaded.odb().len(), repo.odb().len());
        // A commit made on the loaded repo is durable *before* save:
        // write-through means a fresh DiskStore already sees it.
        let mut loaded = loaded;
        loaded
            .worktree_mut()
            .write(&path("new.txt"), &b"fresh\n"[..])
            .unwrap();
        let c = loaded
            .commit(Signature::new("bob", "b@x", 3), "c3")
            .unwrap();
        let fresh = PackStore::open(objects_dir(&dir)).unwrap();
        assert!(
            fresh.contains(c),
            "new commit object persisted at commit time"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn load_picks_up_external_edits() {
        let dir = temp_dir();
        let repo = sample_repo();
        save(&dir, &repo).unwrap();
        // Simulate the user editing with a plain editor.
        fs::write(dir.join("a.txt"), b"edited outside\n").unwrap();
        fs::create_dir_all(dir.join("new")).unwrap();
        fs::write(dir.join("new/file.md"), b"# new\n").unwrap();
        let loaded = load(&dir).unwrap();
        assert_eq!(
            loaded.worktree().read_text(&path("a.txt")).unwrap(),
            "edited outside\n"
        );
        assert!(loaded.worktree().is_file(&path("new/file.md")));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn save_removes_stale_worktree_files() {
        let dir = temp_dir();
        let mut repo = sample_repo();
        save(&dir, &repo).unwrap();
        assert!(dir.join("b.txt").is_file());
        repo.worktree_mut().remove_file(&path("b.txt")).unwrap();
        repo.worktree_mut()
            .remove_file(&path("src/lib.rs"))
            .unwrap();
        save(&dir, &repo).unwrap();
        assert!(!dir.join("b.txt").exists());
        // Emptied directory is pruned.
        assert!(!dir.join("src").exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn detached_head_round_trips() {
        let dir = temp_dir();
        let mut repo = sample_repo();
        let first = *repo.log_head().unwrap().last().unwrap();
        repo.checkout_commit(first).unwrap();
        save(&dir, &repo).unwrap();
        let loaded = load(&dir).unwrap();
        assert_eq!(loaded.head(), &Head::Detached(first));
        assert!(!loaded.worktree().is_file(&path("b.txt")));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn load_missing_dir_fails() {
        let dir = temp_dir();
        assert!(!exists(&dir));
        assert!(load(&dir).is_err());
        fs::remove_dir_all(&dir).unwrap();
    }
}
