//! # gitcite-cli — the GitCite local executable tool
//!
//! The paper's second component: "a local executable tool which, in
//! addition to create/modify/delete functions, carries citations through
//! more complex GitHub functions like fork/merge/copy" (§1). Because it
//! "is based on Git, it is also compatible with any other online project
//! management website which uses Git" (§3) — here, with any repository
//! persisted in the `gitlite` substrate.
//!
//! The crate splits into:
//!
//! * [`storage`] — on-disk persistence (`.gitcite/` metadata + real
//!   worktree files),
//! * [`cli`] — argument parsing and the command implementations, pure
//!   enough to unit-test ([`cli::run`] maps `argv` → output string).
//!
//! The `gitcite` binary in `src/main.rs` is a thin wrapper over
//! [`cli::run`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;
pub mod storage;

pub use cli::{run, CliError, USAGE};

#[cfg(test)]
mod tests {
    use super::cli::run;
    use std::path::{Path, PathBuf};
    use std::sync::atomic::{AtomicU64, Ordering};

    static COUNTER: AtomicU64 = AtomicU64::new(0);

    fn temp_dir() -> PathBuf {
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("gitcite-cli-test-{}-{n}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn cleanup(dir: &Path) {
        let _ = std::fs::remove_dir_all(dir);
    }

    fn gc(dir: &Path, args: &[&str]) -> Result<String, super::CliError> {
        let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        run(&args, dir)
    }

    fn ok(dir: &Path, args: &[&str]) -> String {
        match gc(dir, args) {
            Ok(out) => out,
            Err(e) => panic!("command {args:?} failed: {e}"),
        }
    }

    fn write(dir: &Path, rel: &str, content: &str) {
        let p = dir.join(rel);
        std::fs::create_dir_all(p.parent().unwrap()).unwrap();
        std::fs::write(p, content).unwrap();
    }

    fn init_repo(dir: &Path) {
        ok(
            dir,
            &[
                "init",
                "P1",
                "--owner",
                "Leshang",
                "--url",
                "https://hub/P1",
            ],
        );
    }

    #[test]
    fn help_and_unknown_command() {
        let dir = temp_dir();
        assert!(ok(&dir, &["help"]).contains("USAGE"));
        assert!(ok(&dir, &[]).contains("USAGE"));
        assert!(gc(&dir, &["frobnicate"]).is_err());
        cleanup(&dir);
    }

    #[test]
    fn init_status_commit_log_cycle() {
        let dir = temp_dir();
        init_repo(&dir);
        // citation.cite materialized on disk.
        assert!(dir.join("citation.cite").is_file());
        let status = ok(&dir, &["status"]);
        assert!(status.contains("repository: P1"));
        assert!(status.contains("no commits yet"));

        write(&dir, "f1.txt", "hello\n");
        let out = ok(
            &dir,
            &[
                "commit",
                "-m",
                "V1",
                "--author",
                "Leshang",
                "--date",
                "2018-09-01T00:00:00Z",
            ],
        );
        assert!(out.starts_with("committed "));
        let log = ok(&dir, &["log"]);
        assert!(log.contains("V1"));
        assert!(log.contains("2018-09-01T00:00:00Z"));
        assert!(log.contains("Leshang"));
        // Double init refused.
        assert!(gc(&dir, &["init", "X", "--owner", "o", "--url", "u"]).is_err());
        cleanup(&dir);
    }

    #[test]
    fn cite_add_show_gen_del_flow() {
        let dir = temp_dir();
        init_repo(&dir);
        write(&dir, "f1.txt", "hello\n");
        ok(&dir, &["commit", "-m", "V1", "--author", "Leshang"]);

        // Uncited file resolves to the root.
        let shown = ok(&dir, &["cite", "show", "f1.txt"]);
        assert!(shown.contains("\"repoName\": \"P1\""));

        ok(
            &dir,
            &[
                "cite",
                "add",
                "f1.txt",
                "--repo-name",
                "C2",
                "--owner",
                "Leshang",
                "--authors",
                "Leshang,Susan",
                "--commit",
                "abc1234",
                "--date",
                "2018-09-02T00:00:00Z",
                "--url",
                "https://hub/P1/f1",
            ],
        );
        let shown = ok(&dir, &["cite", "show", "f1.txt"]);
        assert!(shown.contains("\"repoName\": \"C2\""));
        assert!(shown.contains("\"Susan\""));

        // BibTeX generation.
        let bib = ok(&dir, &["cite", "gen", "f1.txt", "--format", "bibtex"]);
        assert!(bib.starts_with("@software{"));
        let cff = ok(&dir, &["cite", "gen", "f1.txt", "--format", "cff"]);
        assert!(cff.starts_with("cff-version:"));

        // Path-union policy lists entry + root.
        let chain = ok(&dir, &["cite", "show", "f1.txt", "--policy", "path-union"]);
        assert!(chain.matches("repoName").count() >= 2);

        // Add twice fails; modify works; delete works.
        assert!(gc(&dir, &["cite", "add", "f1.txt", "--repo-name", "X"]).is_err());
        ok(
            &dir,
            &["cite", "modify", "f1.txt", "--json", r#"{"repoName":"C3"}"#],
        );
        let shown = ok(&dir, &["cite", "show", "f1.txt"]);
        assert!(shown.contains("C3"));
        ok(&dir, &["cite", "del", "f1.txt"]);
        let shown = ok(&dir, &["cite", "show", "f1.txt"]);
        assert!(shown.contains("\"repoName\": \"P1\""));
        cleanup(&dir);
    }

    #[test]
    fn mv_carries_and_validate_passes() {
        let dir = temp_dir();
        init_repo(&dir);
        write(&dir, "old/name.txt", "content\n");
        ok(&dir, &["commit", "-m", "V1", "--author", "L"]);
        ok(&dir, &["cite", "add", "old/name.txt", "--repo-name", "C"]);
        ok(&dir, &["mv", "old/name.txt", "new/renamed.txt"]);
        let shown = ok(&dir, &["cite", "show", "new/renamed.txt"]);
        assert!(shown.contains("\"repoName\": \"C\""));
        assert!(ok(&dir, &["validate"]).contains("consistent"));
        // rm drops the citation.
        ok(&dir, &["rm", "new/renamed.txt"]);
        assert!(ok(&dir, &["validate"]).contains("consistent"));
        cleanup(&dir);
    }

    #[test]
    fn branch_merge_flow() {
        let dir = temp_dir();
        init_repo(&dir);
        write(&dir, "base.txt", "base\n");
        ok(&dir, &["commit", "-m", "base", "--author", "L"]);
        ok(&dir, &["branch", "gui"]);
        ok(&dir, &["checkout", "gui"]);
        write(&dir, "gui/app.js", "app\n");
        ok(
            &dir,
            &[
                "cite",
                "add",
                "gui",
                "--repo-name",
                "GUI",
                "--authors",
                "Yanssie",
            ],
        );
        ok(&dir, &["commit", "-m", "gui work", "--author", "Yanssie"]);
        ok(&dir, &["checkout", "main"]);
        write(&dir, "main.txt", "main\n");
        ok(&dir, &["commit", "-m", "main work", "--author", "L"]);
        let out = ok(&dir, &["merge", "gui", "--author", "L"]);
        assert!(out.starts_with("merged as "), "{out}");
        // Merged branch resolves gui files to the gui citation.
        let shown = ok(&dir, &["cite", "show", "gui/app.js"]);
        assert!(shown.contains("GUI"));
        // Merging again: up to date.
        assert!(ok(&dir, &["merge", "gui", "--author", "L"]).contains("up to date"));
        cleanup(&dir);
    }

    #[test]
    fn copy_between_directories() {
        let src = temp_dir();
        let dst = temp_dir();
        // Source project with a cited subtree.
        ok(
            &src,
            &["init", "P2", "--owner", "Susan", "--url", "https://hub/P2"],
        );
        write(&src, "green/f1.txt", "g1\n");
        write(&src, "green/f2.txt", "g2\n");
        ok(
            &src,
            &[
                "cite",
                "add",
                "green/f1.txt",
                "--repo-name",
                "C3",
                "--owner",
                "Susan",
            ],
        );
        ok(&src, &["commit", "-m", "V3", "--author", "Susan"]);

        ok(
            &dst,
            &[
                "init",
                "P1",
                "--owner",
                "Leshang",
                "--url",
                "https://hub/P1",
            ],
        );
        write(&dst, "f1.txt", "p1\n");
        ok(&dst, &["commit", "-m", "V1", "--author", "Leshang"]);

        let out = ok(
            &dst,
            &[
                "copy",
                "--from",
                src.to_str().unwrap(),
                "--src",
                "green",
                "--dst",
                "imported",
            ],
        );
        assert!(out.contains("copied 2 file(s)"));
        assert!(out.contains("materialized"));
        assert!(dst.join("imported/f1.txt").is_file());
        ok(
            &dst,
            &["commit", "-m", "V4: CopyCite", "--author", "Leshang"],
        );
        let shown = ok(&dst, &["cite", "show", "imported/f1.txt"]);
        assert!(shown.contains("C3"));
        let shown = ok(&dst, &["cite", "show", "imported/f2.txt"]);
        assert!(shown.contains("\"repoName\": \"P2\""));
        cleanup(&src);
        cleanup(&dst);
    }

    #[test]
    fn fork_into_new_directory() {
        let src = temp_dir();
        let dst = temp_dir();
        std::fs::remove_dir_all(&dst).unwrap();
        ok(
            &src,
            &[
                "init",
                "P1",
                "--owner",
                "Leshang",
                "--url",
                "https://hub/P1",
            ],
        );
        write(&src, "a.txt", "a\n");
        ok(&src, &["commit", "-m", "V1", "--author", "Leshang"]);
        let out = ok(
            &src,
            &[
                "fork",
                "--to",
                dst.to_str().unwrap(),
                "--name",
                "P3",
                "--owner",
                "Susan",
                "--url",
                "https://hub/P3",
                "--author",
                "Susan",
            ],
        );
        assert!(out.contains("restamped: true"));
        // The fork is a working repository.
        let status = ok(&dst, &["status"]);
        assert!(status.contains("repository: P3"));
        let root = ok(&dst, &["cite", "show", ""]);
        assert!(root.contains("\"repoName\": \"P3\""));
        assert!(root.contains("forkedFrom"));
        cleanup(&src);
        cleanup(&dst);
    }

    #[test]
    fn publish_stamps_root() {
        let dir = temp_dir();
        init_repo(&dir);
        write(&dir, "a.txt", "a\n");
        ok(
            &dir,
            &[
                "commit",
                "-m",
                "V1",
                "--author",
                "L",
                "--date",
                "2018-09-04T02:35:20Z",
            ],
        );
        let out = ok(
            &dir,
            &[
                "publish",
                "--author",
                "L",
                "--version",
                "v1.0",
                "--doi",
                "10.5281/zenodo.7",
            ],
        );
        assert!(out.contains("2018-09-04T02:35:20Z"));
        let root = ok(&dir, &["cite", "show", ""]);
        assert!(root.contains("10.5281/zenodo.7"));
        assert!(root.contains("v1.0"));
        cleanup(&dir);
    }

    #[test]
    fn retro_on_plain_history() {
        let dir = temp_dir();
        // Build an *uncited* repository by hand through storage.
        let mut repo = gitlite::Repository::init("legacy");
        repo.worktree_mut()
            .write(&gitlite::path("core/a.rs"), &b"a\n"[..])
            .unwrap();
        repo.commit(gitlite::Signature::new("alice", "a@x", 100), "core")
            .unwrap();
        repo.worktree_mut()
            .write(&gitlite::path("gui/b.js"), &b"b\n"[..])
            .unwrap();
        repo.commit(gitlite::Signature::new("bob", "b@x", 200), "gui")
            .unwrap();
        super::storage::save(&dir, &repo).unwrap();

        let out = ok(
            &dir,
            &[
                "retro",
                "--owner",
                "maintainer",
                "--url",
                "https://hub/legacy",
                "--author",
                "m",
            ],
        );
        assert!(out.contains("retrofitted"));
        assert!(out.contains("/core/"));
        assert!(out.contains("/gui/"));
        // Now a first-class cited repository.
        let shown = ok(&dir, &["cite", "show", "core/a.rs"]);
        assert!(shown.contains("alice"));
        cleanup(&dir);
    }

    #[test]
    fn history_credits_annotate_commands() {
        let dir = temp_dir();
        init_repo(&dir);
        write(&dir, "f.txt", "line one\nline two\n");
        ok(
            &dir,
            &[
                "commit",
                "-m",
                "V1",
                "--author",
                "Ada",
                "--date",
                "2020-01-01T00:00:00Z",
            ],
        );
        // Never cited yet.
        assert!(ok(&dir, &["history", "f.txt"]).contains("never explicitly cited"));
        ok(
            &dir,
            &[
                "cite",
                "add",
                "f.txt",
                "--repo-name",
                "C1",
                "--authors",
                "Ada",
            ],
        );
        ok(&dir, &["commit", "-m", "cite", "--author", "Ada"]);
        ok(
            &dir,
            &[
                "cite",
                "modify",
                "f.txt",
                "--repo-name",
                "C2",
                "--authors",
                "Grace",
            ],
        );
        ok(&dir, &["commit", "-m", "recite", "--author", "Grace"]);
        let hist = ok(&dir, &["history", "f.txt"]);
        assert!(hist.contains("repo-C1") || hist.contains("C1"), "{hist}");
        assert!(hist.contains("C2"));
        // Credits lists both the root owner and the cited authors.
        let credits = ok(&dir, &["credits"]);
        assert!(credits.contains("Leshang"));
        assert!(credits.contains("Grace"));
        // Annotate: second line edited by Grace.
        write(&dir, "f.txt", "line one\nline two CHANGED\n");
        ok(&dir, &["commit", "-m", "edit", "--author", "Grace"]);
        let ann = ok(&dir, &["annotate", "f.txt"]);
        let lines: Vec<&str> = ann.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("Ada"));
        assert!(lines[1].contains("Grace"));
        cleanup(&dir);
    }

    #[test]
    fn gc_consolidates_loose_objects_and_keeps_citations_resolving() {
        let dir = temp_dir();
        init_repo(&dir);
        // Enough files that the loose layout holds well over 500 objects
        // (blobs + per-directory trees + commit objects) — far past the
        // auto-gc threshold, so the commit itself self-compacts.
        for i in 0..520 {
            write(
                &dir,
                &format!("d{}/f{i}.txt", i % 10),
                &format!("content {i}\n"),
            );
        }
        let out = ok(&dir, &["commit", "-m", "V1", "--author", "L"]);
        assert!(out.contains("auto-gc: packed "), "{out}");
        let objects = dir.join(".gitcite/objects");
        assert!(count_files(&objects) < 10, "auto-gc left the store compact");
        ok(&dir, &["cite", "add", "d0/f0.txt", "--repo-name", "C9"]);
        ok(&dir, &["commit", "-m", "V2", "--author", "L"]);
        // One abandoned branch commit so gc has something unreachable
        // after the branch is deleted... branches can't be deleted here,
        // so instead orphan objects via an external loose write.
        let orphan = gitlite::Blob::new(&b"orphan"[..]);
        {
            use gitlite::ObjectStore;
            let mut loose = gitlite::DiskStore::open(&objects).unwrap();
            loose.put_with_id(
                orphan.id(),
                std::sync::Arc::new(gitlite::Object::Blob(orphan.clone())),
            );
        }

        let out = ok(&dir, &["gc"]);
        assert!(out.contains("packed "), "{out}");
        assert!(out.contains("dropped 1 unreachable object(s)"), "{out}");

        // A handful of files remain: 1 pack + 1 idx + 1 commit-graph
        // under objects/.
        assert_eq!(count_files(&objects), 3, "pack + idx + graph only");
        assert!(out.contains("commit graph: "), "{out}");
        assert!(
            objects.join("pack").join(gitlite::GRAPH_FILE).is_file(),
            "gc wrote the commit-graph sidecar"
        );
        // And the reopened store actually serves walks from it.
        {
            use gitlite::ObjectStore;
            let store = gitlite::PackStore::open(&objects).unwrap();
            assert!(store.commit_graph().is_some());
        }

        // Everything still works: log, resolution, new commits.
        assert!(ok(&dir, &["log"]).contains("V2"));
        let shown = ok(&dir, &["cite", "show", "d0/f0.txt"]);
        assert!(shown.contains("\"repoName\": \"C9\""));
        let shown = ok(&dir, &["cite", "show", "d1/f1.txt"]);
        assert!(shown.contains("\"repoName\": \"P1\""));
        write(&dir, "after-gc.txt", "fresh\n");
        ok(&dir, &["commit", "-m", "V3", "--author", "L"]);
        assert!(ok(&dir, &["log"]).contains("V3"));
        // The orphan really is gone.
        {
            use gitlite::ObjectStore;
            let store = gitlite::PackStore::open(&objects).unwrap();
            assert!(!store.contains(orphan.id()));
        }
        cleanup(&dir);
    }

    fn count_files(dir: &Path) -> usize {
        let mut n = 0;
        for entry in std::fs::read_dir(dir).unwrap() {
            let path = entry.unwrap().path();
            if path.is_dir() {
                n += count_files(&path);
            } else {
                n += 1;
            }
        }
        n
    }

    #[test]
    fn long_edit_session_self_compacts() {
        use super::storage::AUTO_GC_THRESHOLD;
        let dir = temp_dir();
        init_repo(&dir);
        write(&dir, "notes.txt", "revision -1\n");
        ok(&dir, &["commit", "-m", "start", "--author", "L"]);
        ok(
            &dir,
            &["cite", "add", "notes.txt", "--repo-name", "P1-notes"],
        );
        // A long session of small commits (~3 loose objects each). The
        // save path must trigger gc on its own once the loose overflow
        // crosses the threshold — the user never runs `gitcite gc`.
        let mut auto_gc_runs = 0;
        for i in 0..30 {
            write(&dir, "notes.txt", &format!("revision {i}\n"));
            let out = ok(
                &dir,
                &["commit", "-m", &format!("edit {i}"), "--author", "L"],
            );
            if out.contains("auto-gc: packed ") {
                auto_gc_runs += 1;
            }
        }
        assert!(
            auto_gc_runs >= 1,
            "30 commits crossed the {AUTO_GC_THRESHOLD}-object threshold at least once"
        );
        // The store stays bounded: at most one pack + idx plus fewer than
        // a threshold's worth of fresh loose objects.
        let objects = dir.join(".gitcite/objects");
        assert!(
            count_files(&objects) < AUTO_GC_THRESHOLD + 2,
            "store self-compacted (found {} files)",
            count_files(&objects)
        );
        // Nothing was lost: full history and citations still resolve.
        let log = ok(&dir, &["log"]);
        assert!(log.contains("edit 0") && log.contains("edit 29"));
        let shown = ok(&dir, &["cite", "show", "notes.txt"]);
        assert!(shown.contains("\"repoName\": \"P1-notes\""));
        cleanup(&dir);
    }

    #[test]
    fn usage_errors_are_reported() {
        let dir = temp_dir();
        init_repo(&dir);
        assert!(matches!(
            gc(&dir, &["commit", "--author", "x"]),
            Err(super::CliError::Usage(_))
        ));
        assert!(matches!(
            gc(&dir, &["commit", "-m"]),
            Err(super::CliError::Usage(_))
        ));
        assert!(matches!(
            gc(&dir, &["cite", "frobnicate"]),
            Err(super::CliError::Usage(_))
        ));
        assert!(matches!(
            gc(&dir, &["cite", "show", "x", "--policy", "bogus"]),
            Err(super::CliError::Usage(_))
        ));
        cleanup(&dir);
    }
}
