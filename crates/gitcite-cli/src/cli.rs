//! Command-line surface of the local tool.
//!
//! Parsing is hand-rolled (no third-party argument parser): positional
//! words first, then `--flag value` pairs in any order. Every command
//! returns its human-readable output as a `String` so the whole surface is
//! unit-testable without capturing stdout.

use crate::storage;
use bibformat::Format;
use citekit::{
    fork_cite, retrofit, validate, Citation, CitedRepo, FailOnConflict, ForkOptions,
    MergeCiteOutcome, MergeStrategy, PreferOurs, PreferTheirs, ResolvePolicy, RetrofitOptions,
};
use gitlite::{RepoPath, Signature};
use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};

/// CLI failure: either a usage problem (message + exit code 2) or an
/// operational error (message + exit code 1).
#[derive(Debug)]
pub enum CliError {
    /// The invocation itself was malformed.
    Usage(String),
    /// The operation failed.
    Op(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(m) => write!(f, "usage error: {m}"),
            CliError::Op(m) => write!(f, "error: {m}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<citekit::CiteError> for CliError {
    fn from(e: citekit::CiteError) -> Self {
        CliError::Op(e.to_string())
    }
}

impl From<gitlite::GitError> for CliError {
    fn from(e: gitlite::GitError) -> Self {
        CliError::Op(e.to_string())
    }
}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Op(e.to_string())
    }
}

/// Result alias for CLI operations.
pub type Result<T> = std::result::Result<T, CliError>;

/// Parsed invocation: positionals plus `--key value` flags.
struct Parsed {
    positionals: Vec<String>,
    flags: BTreeMap<String, String>,
}

fn parse_args(args: &[String]) -> Result<Parsed> {
    let mut positionals = Vec::new();
    let mut flags = BTreeMap::new();
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if let Some(key) = a.strip_prefix("--") {
            let value = args
                .get(i + 1)
                .ok_or_else(|| CliError::Usage(format!("flag --{key} needs a value")))?;
            flags.insert(key.to_owned(), value.clone());
            i += 2;
        } else if a == "-m" {
            let value = args
                .get(i + 1)
                .ok_or_else(|| CliError::Usage("-m needs a message".into()))?;
            flags.insert("message".to_owned(), value.clone());
            i += 2;
        } else {
            positionals.push(a.clone());
            i += 1;
        }
    }
    Ok(Parsed { positionals, flags })
}

impl Parsed {
    fn pos(&self, idx: usize, what: &str) -> Result<&str> {
        self.positionals
            .get(idx)
            .map(String::as_str)
            .ok_or_else(|| CliError::Usage(format!("missing <{what}>")))
    }

    fn flag(&self, key: &str) -> Option<&str> {
        self.flags.get(key).map(String::as_str)
    }

    fn required_flag(&self, key: &str) -> Result<&str> {
        self.flag(key)
            .ok_or_else(|| CliError::Usage(format!("missing --{key}")))
    }

    fn path_pos(&self, idx: usize, what: &str) -> Result<RepoPath> {
        RepoPath::parse(self.pos(idx, what)?).map_err(|e| CliError::Usage(e.to_string()))
    }
}

/// Usage text shown by `gitcite help`.
pub const USAGE: &str = "\
gitcite — automating software citation with version control

USAGE: gitcite <command> [args]

repository
  init <name> --owner <o> --url <u>     create a citation-enabled repository here
  status                                summarize worktree and citations
  log                                   list versions, newest first
  commit -m <msg> --author <name> [--email <e>] [--date <ISO8601>]
  branch <name>                         create a branch at HEAD
  checkout <branch>                     switch branches
  mv <from> <to>                        move/rename, carrying citations
  rm <path>                             remove file/dir, dropping its citations
  gc                                    pack loose objects, drop unreachable ones

citations
  cite show <path> [--policy closest|path-union|root]
  cite gen <path> [--format bibtex|cff|plain|json]
  cite add <path> [--json <record>] [field flags]
  cite modify <path> [--json <record>] [field flags]
  cite del <path>
  history <path>                        explicit-citation history of a node
  credits                               all credited authors and their keys
  annotate <path>                       per-line authorship of a file
  validate                              check citation.cite against the tree
  publish --author <name> [--version <v>] [--doi <d>]

  field flags: --repo-name --owner --url --authors a,b --commit --date
               --doi --license --version --note

git-like citation operators
  merge <branch> --author <name> [--strategy union|ours|theirs|three-way]
        [--resolve ours|theirs|fail] [-m <msg>]
  copy --from <dir> --src <path> --dst <path>
  fork --to <dir> --name <n> --owner <o> --url <u> --author <name> [--no-restamp true]
  retro --owner <o> --url <u> --author <name> [--max-depth <n>] [--min-files <n>]

remote hub (wire protocol v3 over TCP; v1/v2 clients still served)
  hub serve --bind <ip:port> [--data-dir <dir>]     run a hub server (blocks;
        [--require-secrets true] [--operator-secret <s>] [--allow-insecure true]
        port 0 picks a free port, the bound address is printed on stdout.
        A non-loopback bind requires --require-secrets true (registration
        and login then demand per-user secrets) unless --allow-insecure
        true is passed explicitly.
        [--follow <addr>] runs this hub as a read-scaling *follower* of
        the primary at <addr>: it continuously replicates every
        repository, serves reads locally, and refuses writes with a
        typed redirect to the primary. [--staleness <secs>] bounds how
        old served reads may be (default 30))
  hub register <username> --name <display> --remote <addr> [--secret <s>]
  hub repos --remote <addr> [--page-size <n>]
  hub log <repo_id> <branch> --remote <addr> [--page-size <n>] [--all true]
  hub import <name> --remote <addr> --user <username> [--secret <s>]
  hub push <repo_id> <branch> --remote <addr> --user <username> [--force true]
        [--secret <s>]
  hub top --remote <addr> [--user <u>] [--secret <s>] [--interval <secs>]
        [--once true] [--prom true]               live server telemetry: method
        latencies (p50/p99), error counts, reactor, store and abuse-limit
        health. Operator-scoped; `hub serve` provisions the operator user
        \"operator\" (the --user default). --once prints one snapshot; --prom
        emits Prometheus text exposition

environment
  GITCITE_AUTO_GC=<n>   loose-object count that triggers auto-gc on save
                        (default 64; 0 disables)
";

/// Page size the remote `hub log` / `hub repos` commands request per
/// round trip when `--page-size` is not given.
pub const REMOTE_PAGE_SIZE: u32 = 50;

/// Entry point: runs one invocation against the repository in `cwd`.
pub fn run(args: &[String], cwd: &Path) -> Result<String> {
    let Some(command) = args.first().map(String::as_str) else {
        return Ok(USAGE.to_owned());
    };
    let rest = &args[1..];
    match command {
        "help" | "--help" | "-h" => Ok(USAGE.to_owned()),
        "init" => cmd_init(rest, cwd),
        "status" => with_repo(cwd, |repo, _| cmd_status(repo)),
        "log" => with_repo(cwd, |repo, _| cmd_log(repo)),
        "commit" => with_repo_mut(cwd, rest, cmd_commit),
        "branch" => with_repo_mut(cwd, rest, |repo, p| {
            repo.create_branch(p.pos(0, "name")?)?;
            Ok(format!("created branch {}\n", p.pos(0, "name")?))
        }),
        "checkout" => with_repo_mut(cwd, rest, |repo, p| {
            let b = p.pos(0, "branch")?;
            repo.checkout_branch(b)?;
            Ok(format!("switched to {b}\n"))
        }),
        "mv" => with_repo_mut(cwd, rest, |repo, p| {
            let from = p.path_pos(0, "from")?;
            let to = p.path_pos(1, "to")?;
            repo.rename(&from, &to)?;
            Ok(format!("moved {from} -> {to} (citations carried)\n"))
        }),
        "rm" => with_repo_mut(cwd, rest, |repo, p| {
            let path = p.path_pos(0, "path")?;
            let n = repo.remove(&path)?;
            Ok(format!("removed {n} file(s) under {path}\n"))
        }),
        "gc" => cmd_gc(cwd),
        "cite" => cmd_cite(rest, cwd),
        "history" => with_repo(cwd, |repo, _| {
            let p = parse_args(rest)?;
            cmd_history(repo, &p)
        }),
        "credits" => with_repo(cwd, |repo, _| cmd_credits(repo)),
        "annotate" => with_repo(cwd, |repo, _| {
            let p = parse_args(rest)?;
            cmd_annotate(repo, &p)
        }),
        "validate" => with_repo(cwd, |repo, _| cmd_validate(repo)),
        "publish" => with_repo_mut(cwd, rest, cmd_publish),
        "merge" => with_repo_mut(cwd, rest, cmd_merge),
        "copy" => with_repo_mut(cwd, rest, cmd_copy),
        "fork" => cmd_fork(rest, cwd),
        "retro" => cmd_retro(rest, cwd),
        "hub" => cmd_hub(rest, cwd),
        other => Err(CliError::Usage(format!(
            "unknown command {other:?}; try `gitcite help`"
        ))),
    }
}

// ----- helpers ------------------------------------------------------------

fn open(cwd: &Path) -> Result<CitedRepo> {
    if !storage::exists(cwd) {
        return Err(CliError::Op(format!(
            "no gitcite repository in {} (run `gitcite init` first)",
            cwd.display()
        )));
    }
    let repo = storage::load(cwd)?;
    CitedRepo::open(repo).map_err(CliError::from)
}

fn with_repo(cwd: &Path, f: impl FnOnce(&CitedRepo, &Path) -> Result<String>) -> Result<String> {
    let repo = open(cwd)?;
    f(&repo, cwd)
}

fn with_repo_mut(
    cwd: &Path,
    args: &[String],
    f: impl FnOnce(&mut CitedRepo, &Parsed) -> Result<String>,
) -> Result<String> {
    let parsed = parse_args(args)?;
    let mut repo = open(cwd)?;
    let mut out = f(&mut repo, &parsed)?;
    storage::save(cwd, repo.repo())?;
    // Long edit sessions self-compact: once enough loose objects pile up,
    // the save path runs the same gc `gitcite gc` would.
    let roots = gc_roots(repo.repo());
    drop(repo); // release the store handle before rewriting its files
    if let Some(report) = storage::maybe_gc(cwd, &roots)? {
        out.push_str(&format!(
            "auto-gc: packed {} object(s), dropped {} unreachable\n",
            report.packed, report.dropped
        ));
    }
    Ok(out)
}

/// Everything a gc must keep: every branch tip, plus HEAD when detached.
fn gc_roots(repo: &gitlite::Repository) -> Vec<gitlite::ObjectId> {
    let mut roots: Vec<gitlite::ObjectId> = repo.branches().map(|(_, tip)| tip).collect();
    if let gitlite::Head::Detached(id) = repo.head() {
        roots.push(*id);
    }
    roots
}

fn signature(p: &Parsed, repo: &CitedRepo) -> Result<Signature> {
    let author = p.required_flag("author")?;
    let email = p
        .flag("email")
        .map(str::to_owned)
        .unwrap_or_else(|| format!("{}@local", author.replace(' ', ".").to_lowercase()));
    let ts = match p.flag("date") {
        Some(d) => citekit::parse_iso8601(d)
            .ok_or_else(|| CliError::Usage(format!("--date {d:?} is not YYYY-MM-DDTHH:MM:SSZ")))?,
        None => match repo.repo().head_commit() {
            Ok(head) => repo
                .repo()
                .commit_obj(head)
                .map(|c| c.author.timestamp + 1)
                .unwrap_or(1),
            Err(_) => 1,
        },
    };
    Ok(Signature::new(author, email, ts))
}

fn citation_from_flags(p: &Parsed) -> Result<Citation> {
    if let Some(json) = p.flag("json") {
        let v = sjson::parse(json).map_err(|e| CliError::Usage(format!("--json: {e}")))?;
        return Citation::from_value(&v).map_err(|e| CliError::Usage(e.to_string()));
    }
    let mut b = Citation::builder(
        p.flag("repo-name").unwrap_or_default(),
        p.flag("owner").unwrap_or_default(),
    );
    if let Some(u) = p.flag("url") {
        b = b.url(u);
    }
    if let (Some(c), Some(d)) = (p.flag("commit"), p.flag("date")) {
        b = b.commit(c, d);
    } else if let Some(c) = p.flag("commit") {
        b = b.commit(c, "");
    } else if let Some(d) = p.flag("date") {
        b = b.commit("", d);
    }
    if let Some(a) = p.flag("authors") {
        b = b.authors(a.split(',').map(str::trim).filter(|s| !s.is_empty()));
    }
    if let Some(x) = p.flag("doi") {
        b = b.doi(x);
    }
    if let Some(x) = p.flag("license") {
        b = b.license(x);
    }
    if let Some(x) = p.flag("version") {
        b = b.version(x);
    }
    if let Some(x) = p.flag("note") {
        b = b.note(x);
    }
    Ok(b.build())
}

// ----- commands -------------------------------------------------------------

fn cmd_init(args: &[String], cwd: &Path) -> Result<String> {
    let p = parse_args(args)?;
    if storage::exists(cwd) {
        return Err(CliError::Op(
            "a gitcite repository already exists here".into(),
        ));
    }
    let name = p.pos(0, "name")?;
    let owner = p.required_flag("owner")?;
    let url = p.required_flag("url")?;
    let repo = CitedRepo::init(name, owner, url);
    storage::save(cwd, repo.repo())?;
    Ok(format!(
        "initialized citation-enabled repository {name} (owner {owner})\n\
         default root citation written to citation.cite\n"
    ))
}

fn cmd_status(repo: &CitedRepo) -> Result<String> {
    let mut out = String::new();
    out.push_str(&format!("repository: {}\n", repo.repo().name()));
    match repo.repo().current_branch() {
        Some(b) => out.push_str(&format!("branch: {b}\n")),
        None => out.push_str("branch: (detached)\n"),
    }
    match repo.repo().head_commit() {
        Ok(head) => out.push_str(&format!("HEAD: {}\n", head.short())),
        Err(_) => out.push_str("HEAD: (no commits yet)\n"),
    }
    out.push_str(&format!(
        "worktree: {} file(s)\ncitations: {} entries\n",
        repo.repo().worktree().len(),
        repo.function().len()
    ));
    for (path, entry) in repo.function().iter() {
        out.push_str(&format!(
            "  {}  -> {}\n",
            path.to_cite_key(entry.is_dir),
            entry.citation
        ));
    }
    Ok(out)
}

fn cmd_log(repo: &CitedRepo) -> Result<String> {
    let mut out = String::new();
    for id in repo.repo().log_head()? {
        let c = repo.repo().commit_obj(id)?;
        out.push_str(&format!(
            "{} {} <{}> {} {}\n",
            id.short(),
            c.author.name,
            c.author.email,
            citekit::format_iso8601(c.author.timestamp),
            c.message.lines().next().unwrap_or("")
        ));
    }
    Ok(out)
}

fn cmd_commit(repo: &mut CitedRepo, p: &Parsed) -> Result<String> {
    let message = p
        .flag("message")
        .ok_or_else(|| CliError::Usage("missing -m <message>".into()))?
        .to_owned();
    let sig = signature(p, repo)?;
    let outcome = repo.commit(sig, message)?;
    let mut out = format!("committed {}\n", outcome.commit.short());
    for (from, to) in &outcome.carry.renamed {
        out.push_str(&format!("  citation carried: {from} -> {to}\n"));
    }
    for (from, to) in &outcome.carry.dir_renamed {
        out.push_str(&format!("  citation subtree carried: {from}/ -> {to}/\n"));
    }
    for pruned in &outcome.carry.pruned {
        out.push_str(&format!("  citation pruned (path deleted): {pruned}\n"));
    }
    Ok(out)
}

fn cmd_gc(cwd: &Path) -> Result<String> {
    if !storage::exists(cwd) {
        return Err(CliError::Op(format!(
            "no gitcite repository in {} (run `gitcite init` first)",
            cwd.display()
        )));
    }
    // Roots: every branch tip, plus HEAD when detached. Everything else
    // is unreachable and gets dropped.
    let repo = storage::load(cwd)?;
    let roots = gc_roots(&repo);
    drop(repo); // release the store handle before rewriting its files
    let report = storage::gc(cwd, &roots)?;
    let mut out = match &report.pack_path {
        Some(path) => format!(
            "packed {} object(s) into {}\n",
            report.packed,
            path.file_name().unwrap_or_default().to_string_lossy()
        ),
        None => "nothing to pack (empty repository)\n".to_owned(),
    };
    out.push_str(&format!(
        "dropped {} unreachable object(s); removed {} loose file(s) and {} old pack(s)\n",
        report.dropped, report.loose_removed, report.packs_removed
    ));
    if report.pack_bytes > 0 && report.canonical_bytes > 0 {
        out.push_str(&format!(
            "delta compression: {} of {} record(s) deltified, {} -> {} bytes ({:.2}x)\n",
            report.delta_objects,
            report.packed,
            report.canonical_bytes,
            report.pack_bytes,
            report.canonical_bytes as f64 / report.pack_bytes as f64
        ));
    }
    out.push_str(&format!(
        "commit graph: {} commit(s) indexed, {} with changed-path Bloom filter(s)\n",
        report.graph_commits, report.bloom_commits
    ));
    Ok(out)
}

fn cmd_cite(args: &[String], cwd: &Path) -> Result<String> {
    let Some(sub) = args.first().map(String::as_str) else {
        return Err(CliError::Usage(
            "cite needs a subcommand: show|gen|add|modify|del".into(),
        ));
    };
    let rest = &args[1..];
    match sub {
        "show" => with_repo(cwd, |repo, _| {
            let p = parse_args(rest)?;
            let path = p.path_pos(0, "path")?;
            let policy = match p.flag("policy").unwrap_or("closest") {
                "closest" => ResolvePolicy::ClosestAncestor,
                "path-union" => ResolvePolicy::PathUnion,
                "root" => ResolvePolicy::RootOnly,
                other => return Err(CliError::Usage(format!("unknown policy {other:?}"))),
            };
            let citations = repo.cite_policy(&path, policy)?;
            let mut out = String::new();
            for c in citations {
                out.push_str(&c.to_value().to_string_pretty());
                out.push('\n');
            }
            Ok(out)
        }),
        "gen" => with_repo(cwd, |repo, _| {
            let p = parse_args(rest)?;
            let path = p.path_pos(0, "path")?;
            let format = match p.flag("format") {
                None => Format::Bibtex,
                Some(f) => Format::parse(f)
                    .ok_or_else(|| CliError::Usage(format!("unknown format {f:?}")))?,
            };
            let citation = repo.cite(&path)?;
            Ok(bibformat::render(&citation, format))
        }),
        "add" => with_repo_mut(cwd, rest, |repo, p| {
            let path = p.path_pos(0, "path")?;
            let citation = citation_from_flags(p)?;
            repo.add_cite(&path, citation)?;
            Ok(format!("citation added at {}\n", path.to_cite_key(false)))
        }),
        "modify" => with_repo_mut(cwd, rest, |repo, p| {
            let path = p.path_pos(0, "path")?;
            let citation = citation_from_flags(p)?;
            repo.modify_cite(&path, citation)?;
            Ok(format!(
                "citation modified at {}\n",
                path.to_cite_key(false)
            ))
        }),
        "del" => with_repo_mut(cwd, rest, |repo, p| {
            let path = p.path_pos(0, "path")?;
            repo.del_cite(&path)?;
            Ok(format!(
                "citation deleted from {}\n",
                path.to_cite_key(false)
            ))
        }),
        other => Err(CliError::Usage(format!(
            "unknown cite subcommand {other:?}"
        ))),
    }
}

fn cmd_history(repo: &CitedRepo, p: &Parsed) -> Result<String> {
    let path = p.path_pos(0, "path")?;
    let events = repo.citation_log(&path)?;
    if events.is_empty() {
        return Ok(format!(
            "{} was never explicitly cited\n",
            path.to_cite_key(false)
        ));
    }
    let mut out = format!("citation history of {}:\n", path.to_cite_key(false));
    for e in events {
        match &e.explicit {
            Some(c) => out.push_str(&format!(
                "  {} {} by {}: {}\n",
                e.commit.short(),
                citekit::format_iso8601(e.timestamp),
                e.author,
                c
            )),
            None => out.push_str(&format!(
                "  {} {} by {}: citation removed\n",
                e.commit.short(),
                citekit::format_iso8601(e.timestamp),
                e.author
            )),
        }
    }
    Ok(out)
}

fn cmd_credits(repo: &CitedRepo) -> Result<String> {
    let mut out = String::from("credited authors:\n");
    for (author, paths) in repo.credited_authors() {
        let keys: Vec<String> = paths.iter().map(|p| p.to_cite_key(false)).collect();
        out.push_str(&format!("  {author}: {}\n", keys.join(", ")));
    }
    Ok(out)
}

fn cmd_annotate(repo: &CitedRepo, p: &Parsed) -> Result<String> {
    let path = p.path_pos(0, "path")?;
    let head = repo.repo().head_commit()?;
    let lines = gitlite::annotate(repo.repo(), head, &path)?;
    let mut out = String::new();
    for (i, line) in lines.iter().enumerate() {
        out.push_str(&format!(
            "{} ({:>12} {}) {:>4}| {}\n",
            line.commit.short(),
            line.author,
            citekit::format_iso8601(line.timestamp),
            i + 1,
            line.text
        ));
    }
    Ok(out)
}

fn cmd_validate(repo: &CitedRepo) -> Result<String> {
    let violations = validate(repo.function(), repo.repo().worktree());
    if violations.is_empty() {
        Ok("citation.cite is consistent with the tree\n".to_owned())
    } else {
        let mut out = format!("{} violation(s):\n", violations.len());
        for v in violations {
            out.push_str(&format!("  {v}\n"));
        }
        Err(CliError::Op(out))
    }
}

fn cmd_publish(repo: &mut CitedRepo, p: &Parsed) -> Result<String> {
    let sig = signature(p, repo)?;
    let outcome = repo.publish(sig, p.flag("version"), p.flag("doi"))?;
    let root = repo.function().root();
    Ok(format!(
        "published: root citation now pins commit {} ({})\nnew version: {}\n",
        root.commit_id,
        root.committed_date,
        outcome.commit.short()
    ))
}

fn cmd_merge(repo: &mut CitedRepo, p: &Parsed) -> Result<String> {
    let branch = p.pos(0, "branch")?.to_owned();
    let sig = signature(p, repo)?;
    let message = p
        .flag("message")
        .map(str::to_owned)
        .unwrap_or_else(|| format!("Merge branch '{branch}'"));
    let strategy = match p.flag("strategy").unwrap_or("union") {
        "union" => MergeStrategy::Union,
        "ours" => MergeStrategy::Ours,
        "theirs" => MergeStrategy::Theirs,
        "three-way" => MergeStrategy::ThreeWay,
        other => return Err(CliError::Usage(format!("unknown strategy {other:?}"))),
    };
    let report = match p.flag("resolve").unwrap_or("fail") {
        "ours" => repo.merge_cite(&branch, sig, message, strategy, &mut PreferOurs),
        "theirs" => repo.merge_cite(&branch, sig, message, strategy, &mut PreferTheirs),
        "fail" => repo.merge_cite(&branch, sig, message, strategy, &mut FailOnConflict),
        other => return Err(CliError::Usage(format!("unknown resolver {other:?}"))),
    }?;
    let mut out = String::new();
    match &report.outcome {
        MergeCiteOutcome::AlreadyUpToDate => out.push_str("already up to date\n"),
        MergeCiteOutcome::FastForwarded(id) => {
            out.push_str(&format!("fast-forwarded to {}\n", id.short()));
        }
        MergeCiteOutcome::Merged(id) => out.push_str(&format!("merged as {}\n", id.short())),
        MergeCiteOutcome::FileConflicts { conflicts, .. } => {
            out.push_str(&format!(
                "merge stopped: {} file conflict(s); fix the marked files, then commit\n",
                conflicts.len()
            ));
            for c in conflicts {
                out.push_str(&format!("  conflict: {}\n", c.path));
            }
        }
    }
    for cc in &report.citation_conflicts {
        out.push_str(&format!(
            "  citation conflict at {} resolved: {:?}\n",
            cc.path.to_cite_key(false),
            cc.taken
        ));
    }
    for d in &report.dropped {
        out.push_str(&format!(
            "  citation dropped (file deleted by merge): {d}\n"
        ));
    }
    Ok(out)
}

fn cmd_copy(repo: &mut CitedRepo, p: &Parsed) -> Result<String> {
    let from_dir = PathBuf::from(p.required_flag("from")?);
    let src_path =
        RepoPath::parse(p.required_flag("src")?).map_err(|e| CliError::Usage(e.to_string()))?;
    let dst_path =
        RepoPath::parse(p.required_flag("dst")?).map_err(|e| CliError::Usage(e.to_string()))?;
    let src_repo = storage::load(&from_dir)?;
    let src_version = src_repo.head_commit()?;
    let report = repo.copy_cite(&dst_path, &src_repo, src_version, &src_path)?;
    let mut out = format!(
        "copied {} file(s) from {}:{} to {}\n",
        report.files_copied,
        from_dir.display(),
        src_path.to_cite_key(false),
        dst_path.to_cite_key(false)
    );
    for m in &report.citations_migrated {
        out.push_str(&format!("  citation migrated: {}\n", m.to_cite_key(false)));
    }
    if let Some(c) = &report.materialized {
        out.push_str(&format!(
            "  effective citation materialized at destination: {c}\n"
        ));
    }
    out.push_str("run `gitcite commit` to create the new version\n");
    Ok(out)
}

fn cmd_fork(args: &[String], cwd: &Path) -> Result<String> {
    let p = parse_args(args)?;
    let to = PathBuf::from(p.required_flag("to")?);
    let name = p.required_flag("name")?;
    let owner = p.required_flag("owner")?;
    let url = p.required_flag("url")?;
    let src = open(cwd)?;
    let sig = signature(&p, &src)?;
    if storage::exists(&to) {
        return Err(CliError::Op(format!(
            "{} already holds a repository",
            to.display()
        )));
    }
    std::fs::create_dir_all(&to)?;
    let mut opts = ForkOptions::new(name, owner, url);
    if p.flag("no-restamp").is_some() {
        opts.restamp_root = false;
    }
    let outcome = fork_cite(src.repo(), &opts, sig).map_err(CliError::from)?;
    storage::save(&to, outcome.fork.repo())?;
    Ok(format!(
        "forked {} at {} into {} (restamped: {})\n",
        src.repo().name(),
        outcome.fork_point.short(),
        to.display(),
        outcome.restamp_commit.is_some()
    ))
}

// ----- remote hub ----------------------------------------------------------

impl From<hub::HubError> for CliError {
    fn from(e: hub::HubError) -> Self {
        CliError::Op(e.to_string())
    }
}

/// Connects to a remote hub named by `--remote`.
fn remote_client(p: &Parsed) -> Result<hub::HubClient<hub::TcpTransport>> {
    let addr = p.required_flag("remote")?;
    hub::HubClient::connect(addr)
        .map_err(|e| CliError::Op(format!("cannot reach hub at {addr}: {e}")))
}

/// Logs `--user` in on this connection (tokens are connection-scoped:
/// the server only honors tokens minted on the connection that uses
/// them, so every invocation authenticates afresh). `--secret` rides
/// along for accounts registered with one.
fn remote_login(client: &hub::HubClient<hub::TcpTransport>, p: &Parsed) -> Result<hub::Token> {
    let user = p.required_flag("user")?;
    Ok(match p.flag("secret") {
        Some(secret) => client.login_with_secret(user, secret)?,
        None => client.login(user)?,
    })
}

fn page_size(p: &Parsed) -> Result<u32> {
    match p.flag("page-size") {
        None => Ok(REMOTE_PAGE_SIZE),
        Some(n) => n
            .parse()
            .map_err(|_| CliError::Usage("--page-size must be a number".into())),
    }
}

/// The `gitcite hub` family: serve a hub over TCP, or drive a remote one
/// through the wire protocol (v2: negotiated pushes, paginated reads).
fn cmd_hub(args: &[String], cwd: &Path) -> Result<String> {
    let Some(sub) = args.first().map(String::as_str) else {
        return Err(CliError::Usage(
            "hub needs a subcommand: serve|register|repos|log|import|push|top".into(),
        ));
    };
    let p = parse_args(&args[1..])?;
    match sub {
        "serve" => cmd_hub_serve(&p),
        "top" => cmd_hub_top(&p),
        "register" => {
            let client = remote_client(&p)?;
            let username = p.pos(0, "username")?;
            let display = p.required_flag("name")?;
            match p.flag("secret") {
                Some(secret) => client.register_user_with_secret(username, display, secret)?,
                None => client.register_user(username, display)?,
            }
            Ok(format!("registered {username}\n"))
        }
        "repos" => {
            let client = remote_client(&p)?;
            let limit = page_size(&p)?;
            let mut out = String::new();
            let mut cursor: Option<String> = None;
            loop {
                let page = client.list_repos_page(cursor.as_deref(), Some(limit))?;
                for id in &page.items {
                    out.push_str(id);
                    out.push('\n');
                }
                match page.next {
                    Some(next) => cursor = Some(next),
                    None => break,
                }
            }
            Ok(out)
        }
        "log" => {
            let client = remote_client(&p)?;
            let repo_id = p.pos(0, "repo_id")?;
            let branch = p.pos(1, "branch")?;
            let limit = page_size(&p)?;
            let all = p.flag("all").is_some();
            let mut out = String::new();
            let mut cursor: Option<String> = None;
            loop {
                let page = client.log_page(repo_id, branch, cursor.as_deref(), Some(limit))?;
                for e in &page.items {
                    out.push_str(&format!(
                        "{} {} {} {}\n",
                        e.id.short(),
                        e.author,
                        citekit::format_iso8601(e.timestamp),
                        e.message.lines().next().unwrap_or("")
                    ));
                }
                cursor = page.next;
                if cursor.is_none() || !all {
                    break;
                }
            }
            if cursor.is_some() {
                out.push_str("... more history; pass --all true to fetch every page\n");
            }
            Ok(out)
        }
        "import" => {
            let client = remote_client(&p)?;
            let name = p.pos(0, "name")?;
            let local = storage::load(cwd)?;
            let token = remote_login(&client, &p)?;
            let repo_id = client.import_repo(&token, name, &local)?;
            Ok(format!("imported as {repo_id}\n"))
        }
        "push" => {
            let client = remote_client(&p)?;
            let repo_id = p.pos(0, "repo_id")?;
            let branch = p.pos(1, "branch")?;
            let local = storage::load(cwd)?;
            let local_branch = local
                .current_branch()
                .map(str::to_owned)
                .unwrap_or_else(|| branch.to_owned());
            let token = remote_login(&client, &p)?;
            let force = p.flag("force").is_some();
            // Negotiated (v2) with automatic full-bundle fallback.
            let tip = client.push(&token, repo_id, branch, &local, &local_branch, force)?;
            Ok(format!(
                "pushed {local_branch} -> {repo_id}:{branch} at {}\n",
                tip.short()
            ))
        }
        other => Err(CliError::Usage(format!("unknown hub subcommand {other:?}"))),
    }
}

/// Whether every address `addr` resolves to is loopback. Unresolvable
/// addresses count as non-loopback: the bind will fail with its own
/// error, and erring on the strict side costs nothing.
fn is_loopback_bind(addr: &str) -> bool {
    use std::net::ToSocketAddrs;
    match addr.to_socket_addrs() {
        Ok(mut addrs) => addrs.all(|a| a.ip().is_loopback()),
        Err(_) => false,
    }
}

fn cmd_hub_serve(p: &Parsed) -> Result<String> {
    // `--bind` is the documented spelling; `--addr` stays as an alias
    // for scripts written against earlier releases.
    let addr = match p.flag("bind").or_else(|| p.flag("addr")) {
        Some(addr) => addr,
        None => return Err(CliError::Usage("missing required flag --bind".into())),
    };
    let require_secrets = p.flag("require-secrets").is_some();
    let allow_insecure = p.flag("allow-insecure").is_some();
    // An open (secretless) login on a non-loopback bind hands every
    // registered account to the whole network. Refuse it unless the
    // operator opted out in so many words.
    if !is_loopback_bind(addr) && !require_secrets {
        if !allow_insecure {
            return Err(CliError::Usage(format!(
                "refusing to bind {addr}: a non-loopback address without \
                 --require-secrets true serves secretless logins to the \
                 network. Pass --require-secrets true (and register users \
                 with --secret), or --allow-insecure true to proceed anyway."
            )));
        }
        eprintln!(
            "warning: serving {addr} with secretless logins (--allow-insecure); \
             anyone who can reach the port can act as any registered user"
        );
    }
    let platform = match p.flag("data-dir") {
        Some(dir) => hub::Hub::with_pack_storage("https://hub.local", dir)
            .map_err(|e| CliError::Op(format!("cannot open data dir: {e}")))?,
        None => hub::Hub::new("https://hub.local"),
    };
    // Every served hub gets an operator account so `gitcite hub top`
    // (and any other operator-scoped wire method) can authenticate. On
    // an open hub the grant exposes telemetry, not control (the
    // destructive seams stay refused on the socket); on a
    // --require-secrets hub the operator account is protected like any
    // other, by the secret provided here.
    if require_secrets {
        let operator_secret = p.flag("operator-secret").ok_or_else(|| {
            CliError::Usage(
                "--require-secrets true needs --operator-secret <s> \
                 to protect the provisioned operator account"
                    .into(),
            )
        })?;
        let _ = platform.register_user_with_secret("operator", "Hub Operator", operator_secret);
        platform.set_auth_required(true);
    } else {
        match p.flag("operator-secret") {
            Some(secret) => {
                let _ = platform.register_user_with_secret("operator", "Hub Operator", secret);
            }
            None => {
                let _ = platform.register_user("operator", "Hub Operator");
            }
        }
    }
    platform
        .grant_operator("operator")
        .map_err(|e| CliError::Op(format!("cannot provision the operator account: {e}")))?;
    let platform = std::sync::Arc::new(platform);
    // --follow flips this hub into a replication follower *after* the
    // operator account above exists locally (a follower's login only
    // serves locally-provisioned users; everyone else is redirected to
    // the primary).
    let engine = match p.flag("follow") {
        Some(primary) => {
            let staleness: u64 = match p.flag("staleness") {
                None => 30,
                Some(s) => s.parse().map_err(|_| {
                    CliError::Usage("--staleness must be a number of seconds".into())
                })?,
            };
            let transport = hub::TcpTransport::connect(primary)
                .map_err(|e| CliError::Op(format!("cannot reach primary {primary}: {e}")))?;
            Some(
                hub::Follower::new(
                    std::sync::Arc::clone(&platform),
                    transport,
                    primary,
                    staleness,
                )
                .spawn(),
            )
        }
        None => None,
    };
    let server = hub::SocketServer::bind(platform, addr)
        .map_err(|e| CliError::Op(format!("cannot bind {addr}: {e}")))?;
    // Print (and flush) the *resolved* address eagerly: with `--bind
    // 127.0.0.1:0` the OS picks the port, a supervising script reads it
    // from stdout, and this command then blocks for the server's
    // lifetime.
    match p.flag("follow") {
        Some(primary) => println!(
            "gitcite hub listening on {} (follower of {primary})",
            server.local_addr()
        ),
        None => println!("gitcite hub listening on {}", server.local_addr()),
    }
    let _ = std::io::Write::flush(&mut std::io::stdout());
    server.join();
    drop(engine);
    Ok(String::new())
}

/// `gitcite hub top`: live server telemetry, fed entirely by the
/// operator-scoped `server_metrics` wire method. `--once` renders one
/// snapshot and returns (the scriptable health-probe mode); otherwise
/// the command polls every `--interval` seconds until interrupted.
fn cmd_hub_top(p: &Parsed) -> Result<String> {
    let client = remote_client(p)?;
    let user = p.flag("user").unwrap_or("operator");
    let token = match p.flag("secret") {
        Some(secret) => client.login_with_secret(user, secret)?,
        None => client.login(user)?,
    };
    let prom = p.flag("prom").is_some();
    let render = |snap: &hub::MetricsSnapshot| {
        if prom {
            snap.to_prometheus()
        } else {
            render_top(snap)
        }
    };
    if p.flag("once").is_some() {
        return Ok(render(&client.server_metrics(Some(&token))?));
    }
    let interval: f64 = match p.flag("interval") {
        None => 2.0,
        Some(s) => s
            .parse()
            .map_err(|_| CliError::Usage("--interval must be a number of seconds".into()))?,
    };
    loop {
        print!("{}", render(&client.server_metrics(Some(&token))?));
        println!("---");
        let _ = std::io::Write::flush(&mut std::io::stdout());
        std::thread::sleep(std::time::Duration::from_secs_f64(
            interval.clamp(0.1, 3600.0),
        ));
    }
}

/// Human-readable rendering of a telemetry snapshot: one row per wire
/// method with bucket-derived latency quantiles, then reactor and store
/// health.
fn render_top(snap: &hub::MetricsSnapshot) -> String {
    let mut out = format!(
        "{:<20} {:>8} {:>9} {:>9} {:>9} {:>7}\n",
        "method", "calls", "p50(us)", "p99(us)", "max(us)", "errors"
    );
    for m in &snap.methods {
        let h = m.latency.to_snapshot();
        let errors: u64 = m.errors.iter().map(|(_, n)| n).sum();
        out.push_str(&format!(
            "{:<20} {:>8} {:>9} {:>9} {:>9} {:>7}\n",
            m.method,
            m.calls,
            h.p50(),
            h.p99(),
            m.latency.max_us,
            errors
        ));
        for (code, n) in &m.errors {
            out.push_str(&format!("{:<20}   {code}: {n}\n", ""));
        }
    }
    match &snap.transport {
        Some(t) => {
            out.push_str(&format!(
                "\ntransport: {} open connection(s), queue depth {}, {} busy worker(s)\n",
                t.open_connections, t.queue_depth, t.busy_workers
            ));
            out.push_str(&format!(
                "  bytes in: {} line / {} binary   bytes out: {} line / {} binary\n",
                t.bytes_in_line, t.bytes_in_binary, t.bytes_out_line, t.bytes_out_binary
            ));
            out.push_str(&format!(
                "  frames rejected: {}   abrupt closes: {}\n",
                t.frames_rejected, t.transport_closed
            ));
            if t.obj_raw_bytes > 0 {
                out.push_str(&format!(
                    "  objects_ext compression: {} raw -> {} wire ({:.1}%)\n",
                    t.obj_raw_bytes,
                    t.obj_deflate_bytes,
                    100.0 * t.obj_deflate_bytes as f64 / t.obj_raw_bytes as f64
                ));
            }
        }
        None => out.push_str("\ntransport: (no socket server attached)\n"),
    }
    if let Some(s) = &snap.store {
        let rate = match s.cache_hit_rate() {
            Some(r) => format!("{:.1}%", 100.0 * r),
            None => "n/a".to_owned(),
        };
        out.push_str(&format!(
            "store: {} repo(s), cache hit rate {rate} ({} hits / {} misses)\n",
            s.repos, s.cache_hits, s.cache_misses
        ));
        out.push_str(&format!(
            "  reads: {} pack / {} loose   walks: {} graph / {} decode-fallback\n",
            s.pack_reads, s.loose_reads, s.graph_walks, s.fallback_walks
        ));
        out.push_str(&format!(
            "  deltas resolved: {}   bloom: {} skip(s) / {} hit(s) / {} false positive(s)\n",
            s.delta_resolutions, s.bloom_skips, s.bloom_hits, s.bloom_false_positives
        ));
    }
    if let Some(l) = &snap.limits {
        out.push_str(&format!(
            "limits: {} auth failure(s), {} rate / {} quota rejection(s), {} conn(s) shed\n",
            l.auth_failures, l.rate_rejections, l.quota_rejections, l.conns_shed
        ));
    }
    if let Some(r) = &snap.repl {
        let lag = match r.lag_seconds {
            -1 => "never synced".to_owned(),
            s => format!("lag {s}s"),
        };
        out.push_str(&format!(
            "repl: following {} ({lag}, epoch {}), {} repo(s) behind, \
             {} round(s) / {} reconnect(s)\n",
            r.primary, r.epoch, r.repos_behind, r.rounds, r.reconnects
        ));
        for (repo, n) in &r.behind {
            out.push_str(&format!("  behind: {repo} ({n} ref(s))\n"));
        }
    }
    out
}

fn cmd_retro(args: &[String], cwd: &Path) -> Result<String> {
    let p = parse_args(args)?;
    if !storage::exists(cwd) {
        return Err(CliError::Op("no repository here".into()));
    }
    let repo = storage::load(cwd)?;
    let mut opts = RetrofitOptions::new(p.required_flag("owner")?, p.required_flag("url")?);
    if let Some(d) = p.flag("max-depth") {
        opts.max_depth = d
            .parse()
            .map_err(|_| CliError::Usage("--max-depth must be a number".into()))?;
    }
    if let Some(m) = p.flag("min-files") {
        opts.min_files = m
            .parse()
            .map_err(|_| CliError::Usage("--min-files must be a number".into()))?;
    }
    let author = p.required_flag("author")?;
    let ts = repo
        .head_commit()
        .and_then(|h| repo.commit_obj(h))
        .map(|c| c.author.timestamp + 1)
        .unwrap_or(1);
    let (cited, report) = retrofit(
        repo,
        &opts,
        Signature::new(author, format!("{author}@local"), ts),
    )?;
    storage::save(cwd, cited.repo())?;
    let mut out = format!(
        "retrofitted: citation.cite synthesized from history ({} directory citation(s))\n",
        report.cited_dirs.len()
    );
    for d in &report.cited_dirs {
        out.push_str(&format!("  cited: {}\n", d.to_cite_key(true)));
    }
    out.push_str(&format!("commit: {}\n", report.commit.short()));
    Ok(out)
}
