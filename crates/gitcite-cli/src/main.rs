//! The `gitcite` binary: thin wrapper over [`gitcite_cli::run`].

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cwd = match std::env::current_dir() {
        Ok(d) => d,
        Err(e) => {
            eprintln!("error: cannot determine working directory: {e}");
            return ExitCode::from(1);
        }
    };
    match gitcite_cli::run(&args, &cwd) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(gitcite_cli::CliError::Usage(msg)) => {
            eprintln!("usage error: {msg}");
            ExitCode::from(2)
        }
        Err(gitcite_cli::CliError::Op(msg)) => {
            eprintln!("error: {msg}");
            ExitCode::from(1)
        }
    }
}
