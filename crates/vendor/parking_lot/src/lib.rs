//! Vendored stand-in for `parking_lot` (see `crates/vendor/README.md`).
//!
//! Wraps `std::sync::Mutex` with `parking_lot`'s non-poisoning API: `lock`
//! returns the guard directly and a panicked holder does not poison the lock.

#![forbid(unsafe_code)]

use std::fmt;

/// A mutual-exclusion lock that does not poison on panic.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// A reader-writer lock that does not poison on panic: any number of
/// concurrent readers, or one writer.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Shared guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;

/// Exclusive guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available. Never
    /// poisons.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access, blocking until available. Never
    /// poisons.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Tries to acquire read access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Tries to acquire write access without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn not_poisoned_after_panic() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(1);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a + *b, 2);
            assert!(l.try_write().is_none(), "readers block the writer");
        }
        *l.write() += 1;
        assert_eq!(*l.read(), 2);
        assert_eq!(l.into_inner(), 2);
    }

    #[test]
    fn rwlock_not_poisoned_after_panic() {
        let l = std::sync::Arc::new(RwLock::new(0));
        let l2 = l.clone();
        let _ = std::thread::spawn(move || {
            let _g = l2.write();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*l.read(), 0);
    }
}
