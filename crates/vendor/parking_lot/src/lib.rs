//! Vendored stand-in for `parking_lot` (see `crates/vendor/README.md`).
//!
//! Wraps `std::sync::Mutex` with `parking_lot`'s non-poisoning API: `lock`
//! returns the guard directly and a panicked holder does not poison the lock.

#![forbid(unsafe_code)]

use std::fmt;

/// A mutual-exclusion lock that does not poison on panic.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn not_poisoned_after_panic() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0);
    }
}
