//! Vendored stand-in for `rand` (see `crates/vendor/README.md`).
//!
//! Deterministic SplitMix64 generator behind the `Rng`/`SeedableRng` API
//! surface the workspace uses (`gen_range`, `gen_bool`). Not
//! cryptographically secure — it exists for reproducible workloads.

#![forbid(unsafe_code)]

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The sampling surface used by this workspace.
pub trait Rng {
    /// Next raw 64 bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform integer in `[range.start, range.end)`. Panics on an empty
    /// range, matching `rand`.
    fn gen_range(&mut self, range: std::ops::Range<usize>) -> usize {
        assert!(range.start < range.end, "gen_range on empty range");
        let span = (range.end - range.start) as u64;
        // Multiply-shift mapping; bias is negligible for the small spans
        // the benchmarks use.
        let hi = ((self.next_u64() as u128 * span as u128) >> 64) as u64;
        range.start + hi as usize
    }

    /// True with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }

    /// Uniform float in `[0, 1)`.
    fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Concrete generators.
pub mod rngs {
    /// SplitMix64: tiny, fast, and statistically fine for workload shaping.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl super::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl super::Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.gen_range(3..17);
            assert!((3..17).contains(&v));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(2);
        assert!((0..64).all(|_| !r.gen_bool(0.0)));
        assert!((0..64).all(|_| r.gen_bool(1.0)));
    }
}
