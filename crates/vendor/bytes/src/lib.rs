//! Vendored stand-in for the `bytes` crate (see `crates/vendor/README.md`).
//!
//! Provides the one type this workspace uses: [`Bytes`], an immutable byte
//! buffer whose clones share the underlying allocation.

#![forbid(unsafe_code)]

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// An immutable, reference-counted byte buffer. Cloning is O(1) and never
/// copies the payload.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Bytes {
            data: Arc::from(&[][..]),
        }
    }

    /// Copies `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: Arc::from(data),
        }
    }

    /// Creates a buffer from a static slice (copies; the real crate borrows).
    pub fn from_static(data: &'static [u8]) -> Self {
        Self::copy_from_slice(data)
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The bytes as a slice (also available via `AsRef`/`Deref`; the
    /// inherent method mirrors the real crate's API).
    #[allow(clippy::should_implement_trait)]
    pub fn as_ref(&self) -> &[u8] {
        &self.data
    }

    /// Copies the bytes into a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.data
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.data[..] == other.data[..]
    }
}

impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.data[..].cmp(&other.data[..])
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.data[..].hash(state)
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.data[..] == *other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.data[..] == **other
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes {
            data: Arc::from(v.into_boxed_slice()),
        }
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(v: Box<[u8]>) -> Self {
        Bytes { data: Arc::from(v) }
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl From<&str> for Bytes {
    fn from(s: &str) -> Self {
        Bytes::copy_from_slice(s.as_bytes())
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Self {
        Bytes::copy_from_slice(s)
    }
}

impl<const N: usize> From<&[u8; N]> for Bytes {
    fn from(s: &[u8; N]) -> Self {
        Bytes::copy_from_slice(s)
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<T: IntoIterator<Item = u8>>(iter: T) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_shares_payload() {
        let a = Bytes::from("hello".to_owned());
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(b.as_ref(), b"hello");
        assert_eq!(a.len(), 5);
    }

    #[test]
    fn conversions() {
        assert_eq!(Bytes::from(vec![1, 2]), Bytes::copy_from_slice(&[1, 2]));
        assert_eq!(Bytes::from("x"), Bytes::from_static(b"x"));
        assert!(Bytes::new().is_empty());
    }

    #[test]
    fn debug_escapes() {
        let b = Bytes::copy_from_slice(b"a\n\0");
        assert_eq!(format!("{b:?}"), "b\"a\\n\\x00\"");
    }
}
