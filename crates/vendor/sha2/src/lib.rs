//! Vendored stand-in for the `sha2` crate: a real FIPS 180-4 SHA-256.
//!
//! Unlike most of the stand-ins in `crates/vendor/`, this one is **not** a
//! simplified fake — credential hashes must not be forgeable by exploiting a
//! weak digest, so the compression function below is the genuine SHA-256
//! algorithm, validated against the NIST test vectors in this file's tests.
//! The API mirrors the upstream `Digest` surface the workspace calls
//! (`Sha256::new` / `update` / `finalize` plus a `digest` one-shot).
//!
//! One deliberate divergence, documented in the vendor README: upstream puts
//! HMAC in the separate `hmac` crate. Vendoring a generic-over-digest HMAC
//! for one call site is not worth it, so [`hmac_sha256`] and the
//! constant-time [`ct_eq`] live here. Both ends of the hub wire always run
//! this implementation, so the placement stays a private detail.

/// Initial hash values: the first 32 bits of the fractional parts of the
/// square roots of the first 8 primes (FIPS 180-4 §5.3.3).
const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Round constants: the first 32 bits of the fractional parts of the cube
/// roots of the first 64 primes (FIPS 180-4 §4.2.2).
const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// Streaming SHA-256 hasher mirroring the upstream `Digest` API surface.
#[derive(Clone)]
pub struct Sha256 {
    state: [u32; 8],
    /// Partially filled message block.
    block: [u8; 64],
    block_len: usize,
    /// Total message length in bytes (the padding trailer encodes bits).
    total_len: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    pub fn new() -> Self {
        Sha256 {
            state: H0,
            block: [0u8; 64],
            block_len: 0,
            total_len: 0,
        }
    }

    /// One-shot convenience: `Sha256::digest(data)`.
    pub fn digest(data: &[u8]) -> [u8; 32] {
        let mut h = Sha256::new();
        h.update(data);
        h.finalize()
    }

    pub fn update(&mut self, mut data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        if self.block_len > 0 {
            let take = (64 - self.block_len).min(data.len());
            self.block[self.block_len..self.block_len + take].copy_from_slice(&data[..take]);
            self.block_len += take;
            data = &data[take..];
            if self.block_len == 64 {
                let block = self.block;
                self.compress(&block);
                self.block_len = 0;
            }
        }
        while data.len() >= 64 {
            let (block, rest) = data.split_at(64);
            self.compress(block.try_into().expect("64-byte split"));
            data = rest;
        }
        if !data.is_empty() {
            self.block[..data.len()].copy_from_slice(data);
            self.block_len = data.len();
        }
    }

    pub fn finalize(mut self) -> [u8; 32] {
        let bit_len = self.total_len.wrapping_mul(8);
        // Append 0x80, pad with zeros to 56 mod 64, then the 64-bit length.
        self.update(&[0x80]);
        while self.block_len != 56 {
            self.update(&[0]);
        }
        let mut tail = self.block;
        tail[56..64].copy_from_slice(&bit_len.to_be_bytes());
        self.compress(&tail);
        let mut out = [0u8; 32];
        for (i, w) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&w.to_be_bytes());
        }
        out
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }

        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }

        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
        self.state[5] = self.state[5].wrapping_add(f);
        self.state[6] = self.state[6].wrapping_add(g);
        self.state[7] = self.state[7].wrapping_add(h);
    }
}

/// HMAC-SHA256 (RFC 2104): `H((K' ^ opad) || H((K' ^ ipad) || msg))`.
pub fn hmac_sha256(key: &[u8], msg: &[u8]) -> [u8; 32] {
    let mut key_block = [0u8; 64];
    if key.len() > 64 {
        key_block[..32].copy_from_slice(&Sha256::digest(key));
    } else {
        key_block[..key.len()].copy_from_slice(key);
    }

    let mut inner = Sha256::new();
    let ipad: Vec<u8> = key_block.iter().map(|b| b ^ 0x36).collect();
    inner.update(&ipad);
    inner.update(msg);
    let inner_hash = inner.finalize();

    let mut outer = Sha256::new();
    let opad: Vec<u8> = key_block.iter().map(|b| b ^ 0x5c).collect();
    outer.update(&opad);
    outer.update(&inner_hash);
    outer.finalize()
}

/// Constant-time equality for digests and tokens: the comparison touches
/// every byte regardless of where the first mismatch sits, so timing does
/// not leak a prefix length. Length mismatch returns false immediately —
/// lengths here are public (both sides are 32-byte digests).
pub fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut diff = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        diff |= x ^ y;
    }
    // black_box keeps the accumulator from being short-circuited away.
    std::hint::black_box(diff) == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn nist_empty_vector() {
        assert_eq!(
            hex(&Sha256::digest(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn nist_abc_vector() {
        assert_eq!(
            hex(&Sha256::digest(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn nist_two_block_vector() {
        assert_eq!(
            hex(&Sha256::digest(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn million_a_vector() {
        let mut h = Sha256::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&chunk);
        }
        assert_eq!(
            hex(&h.finalize()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn streaming_matches_one_shot_across_split_points() {
        let data: Vec<u8> = (0..255u8).cycle().take(1000).collect();
        let want = Sha256::digest(&data);
        for split in [0, 1, 63, 64, 65, 127, 500, 999, 1000] {
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), want, "split at {split}");
        }
    }

    #[test]
    fn rfc4231_hmac_vectors() {
        // RFC 4231 test case 1.
        assert_eq!(
            hex(&hmac_sha256(&[0x0b; 20], b"Hi There")),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
        // RFC 4231 test case 2 ("Jefe").
        assert_eq!(
            hex(&hmac_sha256(b"Jefe", b"what do ya want for nothing?")),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
        // RFC 4231 test case 6: key longer than one block.
        assert_eq!(
            hex(&hmac_sha256(
                &[0xaa; 131],
                b"Test Using Larger Than Block-Size Key - Hash Key First"
            )),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn ct_eq_behaviour() {
        assert!(ct_eq(b"same-bytes", b"same-bytes"));
        assert!(!ct_eq(b"same-bytes", b"same-bytez"));
        assert!(!ct_eq(b"short", b"longer-value"));
        assert!(ct_eq(b"", b""));
    }
}
