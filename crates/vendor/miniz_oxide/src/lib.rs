//! Vendored stand-in for `miniz_oxide` (see `crates/vendor/README.md`).
//!
//! Exposes the two entry points the workspace calls —
//! [`deflate::compress_to_vec`] and [`inflate::decompress_to_vec`] (plus
//! the `_with_limit` variant) — backed by a small self-describing LZ77
//! format instead of RFC 1951 DEFLATE. The stream is **not** zlib/deflate
//! compatible; it only promises `decompress(compress(x)) == x` and a
//! worthwhile ratio on repetitive payloads (text, sjson, source trees).
//! Swapping in the real crate keeps call sites unchanged: the byte format
//! is a private detail of whichever implementation sits behind the API,
//! and both ends of the wire always use the same one.
//!
//! ## Stream format
//!
//! ```text
//! byte 0: method — 0 = stored, 1 = LZ
//! stored: raw bytes follow verbatim
//! LZ:     u32 BE uncompressed length, then tokens:
//!           tag < 0x80  → literal run of (tag + 1) bytes (1..=128), bytes follow
//!           tag >= 0x80 → back-reference: length (tag & 0x7f) + 4 (4..=131),
//!                         then u16 BE distance (1..=65535)
//! ```
//!
//! The compressor is a greedy hash-chain matcher over a 64 KiB window; a
//! stream that would not shrink is emitted as `stored`, so compression
//! never costs more than one byte of overhead.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

const METHOD_STORED: u8 = 0;
const METHOD_LZ: u8 = 1;
const MIN_MATCH: usize = 4;
const MAX_MATCH: usize = 131;
const WINDOW: usize = 65_535;
const HASH_BITS: u32 = 15;

/// Compression entry points.
pub mod deflate {
    use super::*;

    /// Compresses `data`. The `level` parameter exists for API
    /// compatibility with the real crate; this stand-in has a single
    /// speed/ratio point and ignores it (level 0 still means "stored").
    pub fn compress_to_vec(data: &[u8], level: u8) -> Vec<u8> {
        if level == 0 || data.len() < MIN_MATCH {
            return stored(data);
        }
        match lz_compress(data) {
            Some(lz) if lz.len() < data.len() + 1 => lz,
            _ => stored(data),
        }
    }

    fn stored(data: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(data.len() + 1);
        out.push(METHOD_STORED);
        out.extend_from_slice(data);
        out
    }

    fn hash4(window: &[u8]) -> usize {
        let v = u32::from_le_bytes([window[0], window[1], window[2], window[3]]);
        (v.wrapping_mul(0x9E37_79B1) >> (32 - HASH_BITS)) as usize
    }

    fn lz_compress(data: &[u8]) -> Option<Vec<u8>> {
        let len = u32::try_from(data.len()).ok()?;
        let mut out = Vec::with_capacity(data.len() / 2 + 16);
        out.push(METHOD_LZ);
        out.extend_from_slice(&len.to_be_bytes());

        // head[h] holds (position + 1) of the latest occurrence of the
        // 4-byte sequence hashing to h; 0 means empty.
        let mut head = vec![0u32; 1 << HASH_BITS];
        let mut literal_start = 0usize;
        let mut pos = 0usize;

        while pos + MIN_MATCH <= data.len() {
            let h = hash4(&data[pos..]);
            let candidate = head[h] as usize;
            head[h] = (pos + 1) as u32;

            let mut match_len = 0usize;
            if candidate > 0 {
                let cand = candidate - 1;
                let dist = pos - cand;
                if (1..=WINDOW).contains(&dist) {
                    let limit = (data.len() - pos).min(MAX_MATCH);
                    while match_len < limit && data[cand + match_len] == data[pos + match_len] {
                        match_len += 1;
                    }
                }
            }

            if match_len >= MIN_MATCH {
                flush_literals(&mut out, &data[literal_start..pos]);
                let dist = pos - (candidate - 1);
                out.push(0x80 | (match_len - MIN_MATCH) as u8);
                out.extend_from_slice(&(dist as u16).to_be_bytes());
                // Index the covered positions so later matches can land
                // inside this one, then continue after it.
                let end = pos + match_len;
                pos += 1;
                while pos < end && pos + MIN_MATCH <= data.len() {
                    head[hash4(&data[pos..])] = (pos + 1) as u32;
                    pos += 1;
                }
                pos = end;
                literal_start = end;
            } else {
                pos += 1;
            }

            if out.len() > data.len() + 8 {
                return None; // incompressible; caller falls back to stored
            }
        }
        flush_literals(&mut out, &data[literal_start..]);
        Some(out)
    }

    fn flush_literals(out: &mut Vec<u8>, mut run: &[u8]) {
        while !run.is_empty() {
            let take = run.len().min(128);
            out.push((take - 1) as u8);
            out.extend_from_slice(&run[..take]);
            run = &run[take..];
        }
    }
}

/// Decompression entry points.
pub mod inflate {
    use super::*;

    /// Decompression failure: truncated stream, bad token, or a payload
    /// larger than the caller's limit.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct DecompressError(pub String);

    impl std::fmt::Display for DecompressError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "decompress: {}", self.0)
        }
    }

    impl std::error::Error for DecompressError {}

    /// Decompresses a stream produced by [`deflate::compress_to_vec`].
    pub fn decompress_to_vec(data: &[u8]) -> Result<Vec<u8>, DecompressError> {
        decompress_to_vec_with_limit(data, usize::MAX)
    }

    /// Like [`decompress_to_vec`] but refuses (before allocating) any
    /// stream whose uncompressed size exceeds `max_size`.
    pub fn decompress_to_vec_with_limit(
        data: &[u8],
        max_size: usize,
    ) -> Result<Vec<u8>, DecompressError> {
        let (&method, rest) = data
            .split_first()
            .ok_or_else(|| DecompressError("empty stream".into()))?;
        match method {
            METHOD_STORED => {
                if rest.len() > max_size {
                    return Err(DecompressError(format!(
                        "stored payload of {} bytes exceeds limit {max_size}",
                        rest.len()
                    )));
                }
                Ok(rest.to_vec())
            }
            METHOD_LZ => lz_decompress(rest, max_size),
            other => Err(DecompressError(format!("unknown method byte {other}"))),
        }
    }

    fn lz_decompress(data: &[u8], max_size: usize) -> Result<Vec<u8>, DecompressError> {
        if data.len() < 4 {
            return Err(DecompressError("truncated header".into()));
        }
        let orig_len = u32::from_be_bytes([data[0], data[1], data[2], data[3]]) as usize;
        if orig_len > max_size {
            return Err(DecompressError(format!(
                "declared size {orig_len} exceeds limit {max_size}"
            )));
        }
        let mut out = Vec::with_capacity(orig_len);
        let mut pos = 4usize;
        while pos < data.len() {
            let tag = data[pos];
            pos += 1;
            if tag < 0x80 {
                let run = tag as usize + 1;
                let bytes = data
                    .get(pos..pos + run)
                    .ok_or_else(|| DecompressError("truncated literal run".into()))?;
                if out.len() + run > orig_len {
                    return Err(DecompressError("output overruns declared size".into()));
                }
                out.extend_from_slice(bytes);
                pos += run;
            } else {
                let len = (tag & 0x7f) as usize + MIN_MATCH;
                let dist_bytes = data
                    .get(pos..pos + 2)
                    .ok_or_else(|| DecompressError("truncated distance".into()))?;
                pos += 2;
                let dist = u16::from_be_bytes([dist_bytes[0], dist_bytes[1]]) as usize;
                if dist == 0 || dist > out.len() {
                    return Err(DecompressError(format!(
                        "distance {dist} outside the {} bytes produced",
                        out.len()
                    )));
                }
                if out.len() + len > orig_len {
                    return Err(DecompressError("output overruns declared size".into()));
                }
                // Byte-at-a-time so overlapping copies (dist < len)
                // replicate the just-written bytes, RLE-style.
                let start = out.len() - dist;
                for i in 0..len {
                    let b = out[start + i];
                    out.push(b);
                }
            }
        }
        if out.len() != orig_len {
            return Err(DecompressError(format!(
                "declared size {orig_len}, produced {}",
                out.len()
            )));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::{deflate::compress_to_vec, inflate::*};

    fn round_trip(data: &[u8]) {
        let packed = compress_to_vec(data, 6);
        assert_eq!(
            decompress_to_vec(&packed).unwrap(),
            data,
            "len {}",
            data.len()
        );
    }

    #[test]
    fn round_trips_basic_shapes() {
        round_trip(b"");
        round_trip(b"a");
        round_trip(b"abc");
        round_trip(b"aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa");
        round_trip("répétition répétition répétition".as_bytes());
        round_trip(
            &(0u16..=2048)
                .flat_map(|v| v.to_le_bytes())
                .collect::<Vec<_>>(),
        );
    }

    #[test]
    fn repetitive_text_shrinks() {
        let data = "{\"v\":2,\"method\":\"push_objects\",\"params\":{}}\n".repeat(200);
        let packed = compress_to_vec(data.as_bytes(), 6);
        assert!(
            packed.len() < data.len() / 4,
            "expected >4x on repetitive sjson, got {} -> {}",
            data.len(),
            packed.len()
        );
        assert_eq!(decompress_to_vec(&packed).unwrap(), data.as_bytes());
    }

    #[test]
    fn incompressible_data_costs_one_byte() {
        // A SplitMix-ish scramble: no 4-byte repeats land in the window.
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let data: Vec<u8> = (0..4096)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                (state >> 33) as u8
            })
            .collect();
        let packed = compress_to_vec(&data, 6);
        assert_eq!(packed.len(), data.len() + 1);
        assert_eq!(decompress_to_vec(&packed).unwrap(), data);
    }

    #[test]
    fn level_zero_stores() {
        let data = b"aaaaaaaaaaaaaaaa";
        let packed = compress_to_vec(data, 0);
        assert_eq!(packed.len(), data.len() + 1);
        assert_eq!(decompress_to_vec(&packed).unwrap(), data);
    }

    #[test]
    fn limit_is_enforced_before_allocation() {
        let data = vec![7u8; 100_000];
        let packed = compress_to_vec(&data, 6);
        assert!(decompress_to_vec_with_limit(&packed, 99_999).is_err());
        assert!(decompress_to_vec_with_limit(&packed, 100_000).is_ok());
    }

    #[test]
    fn corrupt_streams_are_rejected() {
        assert!(decompress_to_vec(&[]).is_err());
        assert!(decompress_to_vec(&[9, 1, 2, 3]).is_err(), "unknown method");
        assert!(decompress_to_vec(&[1, 0, 0]).is_err(), "truncated header");
        // Declared 4 bytes but a match token reaches back before output.
        assert!(decompress_to_vec(&[1, 0, 0, 0, 4, 0x80, 0, 1]).is_err());
        // Literal run truncated mid-stream.
        assert!(decompress_to_vec(&[1, 0, 0, 0, 8, 7, b'a', b'b']).is_err());
    }

    #[test]
    fn overlapping_match_replicates() {
        // "ab" * 300 forces dist=2 matches with len > dist.
        let data: Vec<u8> = std::iter::repeat_n([b'a', b'b'], 300).flatten().collect();
        round_trip(&data);
    }
}
