//! Vendored stand-in for `mio` (see `crates/vendor/README.md`).
//!
//! A minimal level-triggered readiness reactor covering exactly the
//! surface `hub::transport` uses: [`Poll`] / [`Registry`] over any
//! [`AsRawFd`] source, [`Interest`] flags, [`Events`] iteration, and a
//! cross-thread [`Waker`]. On Linux the selector is `epoll(7)` — the FFI
//! shim in this crate is the only unsafe code in the workspace; other
//! unix platforms fall back to `poll(2)` with a registration table.
//! Windows is not supported.
//!
//! Divergences from upstream `mio` (all minor, all at call sites we own):
//! sources are plain `&impl AsRawFd` rather than `event::Source`
//! implementors, readiness is always level-triggered, and [`Waker`]
//! exposes an explicit [`Waker::drain`] for the reactor to call when the
//! waker's token fires (upstream drains internally in the selector).

#![warn(missing_docs)]

use std::io::{self, Read, Write};
use std::os::unix::io::AsRawFd;
use std::os::unix::net::UnixStream;
use std::sync::Arc;
use std::time::Duration;

/// Caller-chosen identifier attached to a registered source and handed
/// back on every [`Event`] that source produces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Token(pub usize);

/// Which readiness states a registration subscribes to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest(u8);

impl Interest {
    /// Interest in read readiness (and peer hangup).
    pub const READABLE: Interest = Interest(0b01);
    /// Interest in write readiness.
    pub const WRITABLE: Interest = Interest(0b10);

    /// Combines two interests (named after the real mio's
    /// `Interest::add`, intentionally not `ops::Add`).
    #[must_use]
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, other: Interest) -> Interest {
        Interest(self.0 | other.0)
    }

    /// True if this interest includes read readiness.
    pub fn is_readable(self) -> bool {
        self.0 & 0b01 != 0
    }

    /// True if this interest includes write readiness.
    pub fn is_writable(self) -> bool {
        self.0 & 0b10 != 0
    }
}

impl std::ops::BitOr for Interest {
    type Output = Interest;
    fn bitor(self, rhs: Interest) -> Interest {
        self.add(rhs)
    }
}

/// One readiness notification for a registered source.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    token: usize,
    readable: bool,
    writable: bool,
    error: bool,
    read_closed: bool,
}

impl Event {
    /// The token the source was registered with.
    pub fn token(&self) -> Token {
        Token(self.token)
    }

    /// True if the source is ready for reading.
    pub fn is_readable(&self) -> bool {
        self.readable
    }

    /// True if the source is ready for writing.
    pub fn is_writable(&self) -> bool {
        self.writable
    }

    /// True if the source is in an error state.
    pub fn is_error(&self) -> bool {
        self.error
    }

    /// True if the peer closed its write half (or the connection hung up);
    /// a read will observe EOF once the buffered bytes are drained.
    pub fn is_read_closed(&self) -> bool {
        self.read_closed
    }
}

/// A reusable buffer of [`Event`]s filled by [`Poll::poll`].
#[derive(Debug)]
pub struct Events {
    inner: Vec<Event>,
    capacity: usize,
}

impl Events {
    /// Creates a buffer that receives at most `capacity` events per poll.
    pub fn with_capacity(capacity: usize) -> Events {
        Events {
            inner: Vec::with_capacity(capacity),
            capacity: capacity.max(1),
        }
    }

    /// Iterates over the events from the most recent poll.
    pub fn iter(&self) -> std::slice::Iter<'_, Event> {
        self.inner.iter()
    }

    /// True if the most recent poll produced no events.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }
}

impl<'a> IntoIterator for &'a Events {
    type Item = &'a Event;
    type IntoIter = std::slice::Iter<'a, Event>;
    fn into_iter(self) -> Self::IntoIter {
        self.inner.iter()
    }
}

/// Registers sources with the selector; cheaply clonable so helper
/// objects (e.g. [`Waker`]) can hold their own handle.
#[derive(Debug, Clone)]
pub struct Registry {
    selector: Arc<sys::Selector>,
}

impl Registry {
    /// Starts watching `source` for `interests`, tagging events `token`.
    pub fn register(
        &self,
        source: &impl AsRawFd,
        token: Token,
        interests: Interest,
    ) -> io::Result<()> {
        self.selector
            .register(source.as_raw_fd(), token.0, interests)
    }

    /// Changes the interests (or token) of an already-registered source.
    pub fn reregister(
        &self,
        source: &impl AsRawFd,
        token: Token,
        interests: Interest,
    ) -> io::Result<()> {
        self.selector
            .reregister(source.as_raw_fd(), token.0, interests)
    }

    /// Stops watching `source`.
    pub fn deregister(&self, source: &impl AsRawFd) -> io::Result<()> {
        self.selector.deregister(source.as_raw_fd())
    }

    /// Returns another handle to the same selector.
    pub fn try_clone(&self) -> io::Result<Registry> {
        Ok(self.clone())
    }
}

/// The selector: waits for readiness on every registered source.
#[derive(Debug)]
pub struct Poll {
    registry: Registry,
}

impl Poll {
    /// Creates a new selector.
    pub fn new() -> io::Result<Poll> {
        Ok(Poll {
            registry: Registry {
                selector: Arc::new(sys::Selector::new()?),
            },
        })
    }

    /// The registration handle for this selector.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Blocks until at least one source is ready or `timeout` elapses
    /// (`None` blocks indefinitely), filling `events`. A signal
    /// interruption is surfaced as an empty event set, not an error.
    pub fn poll(&mut self, events: &mut Events, timeout: Option<Duration>) -> io::Result<()> {
        events.inner.clear();
        let capacity = events.capacity;
        self.registry
            .selector
            .wait(&mut events.inner, capacity, timeout)
    }
}

/// Wakes a [`Poll`] blocked in [`Poll::poll`] from another thread, by
/// making a socketpair readable. The reactor must call [`Waker::drain`]
/// when the waker's token fires, or the (level-triggered) selector will
/// keep reporting it ready.
#[derive(Debug)]
pub struct Waker {
    tx: UnixStream,
    rx: UnixStream,
}

impl Waker {
    /// Creates a waker and registers its read half with `registry`.
    pub fn new(registry: &Registry, token: Token) -> io::Result<Waker> {
        let (tx, rx) = UnixStream::pair()?;
        tx.set_nonblocking(true)?;
        rx.set_nonblocking(true)?;
        registry.register(&rx, token, Interest::READABLE)?;
        Ok(Waker { tx, rx })
    }

    /// Makes the poller return. Saturating: if the pair's buffer is full
    /// the poller is already overdue to wake, and the call is a no-op.
    pub fn wake(&self) -> io::Result<()> {
        match (&self.tx).write(&[1u8]) {
            Ok(_) => Ok(()),
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::Interrupted =>
            {
                Ok(())
            }
            Err(e) => Err(e),
        }
    }

    /// Consumes queued wakeups so the waker's token stops reporting ready.
    pub fn drain(&self) {
        let mut buf = [0u8; 64];
        while matches!((&self.rx).read(&mut buf), Ok(n) if n > 0) {}
    }
}

fn timeout_millis(timeout: Option<Duration>) -> i32 {
    match timeout {
        None => -1,
        Some(d) => {
            if d.is_zero() {
                0
            } else {
                // Round sub-millisecond waits up so a tiny timeout still
                // yields the CPU instead of spinning.
                let ms = d.as_millis().max(1);
                ms.min(i32::MAX as u128) as i32
            }
        }
    }
}

#[cfg(target_os = "linux")]
mod sys {
    //! `epoll(7)` selector. The `extern "C"` declarations below are the
    //! workspace's only unsafe code; every other crate is
    //! `#![forbid(unsafe_code)]`.

    use super::{timeout_millis, Event, Interest};
    use std::io;
    use std::os::raw::c_int;
    use std::os::unix::io::RawFd;
    use std::time::Duration;

    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;
    const EPOLL_CTL_ADD: c_int = 1;
    const EPOLL_CTL_DEL: c_int = 2;
    const EPOLL_CTL_MOD: c_int = 3;
    const EPOLL_CLOEXEC: c_int = 0o2000000;

    /// Mirrors `struct epoll_event`; packed on x86/x86_64, naturally
    /// aligned everywhere else, exactly as the kernel ABI declares it.
    #[repr(C)]
    #[cfg_attr(any(target_arch = "x86", target_arch = "x86_64"), repr(packed))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: c_int) -> c_int;
        fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        fn close(fd: c_int) -> c_int;
    }

    fn interest_bits(interests: Interest) -> u32 {
        let mut bits = EPOLLRDHUP;
        if interests.is_readable() {
            bits |= EPOLLIN;
        }
        if interests.is_writable() {
            bits |= EPOLLOUT;
        }
        bits
    }

    #[derive(Debug)]
    pub(super) struct Selector {
        epfd: RawFd,
    }

    impl Selector {
        pub(super) fn new() -> io::Result<Selector> {
            // SAFETY: plain syscall; the returned fd is owned by Selector
            // and closed exactly once in Drop.
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Selector { epfd })
        }

        fn ctl(&self, op: c_int, fd: RawFd, token: usize, interests: Interest) -> io::Result<()> {
            let mut ev = EpollEvent {
                events: interest_bits(interests),
                data: token as u64,
            };
            // SAFETY: `ev` is a valid epoll_event for the duration of the
            // call; DEL ignores the event pointer.
            let rc = unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        pub(super) fn register(
            &self,
            fd: RawFd,
            token: usize,
            interests: Interest,
        ) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, token, interests)
        }

        pub(super) fn reregister(
            &self,
            fd: RawFd,
            token: usize,
            interests: Interest,
        ) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, token, interests)
        }

        pub(super) fn deregister(&self, fd: RawFd) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, 0, Interest::READABLE)
        }

        pub(super) fn wait(
            &self,
            out: &mut Vec<Event>,
            capacity: usize,
            timeout: Option<Duration>,
        ) -> io::Result<()> {
            let mut buf = vec![EpollEvent { events: 0, data: 0 }; capacity];
            // SAFETY: `buf` holds `capacity` writable epoll_event slots;
            // the kernel fills at most `capacity` of them.
            let n = unsafe {
                epoll_wait(
                    self.epfd,
                    buf.as_mut_ptr(),
                    capacity as c_int,
                    timeout_millis(timeout),
                )
            };
            if n < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    return Ok(());
                }
                return Err(err);
            }
            for raw in buf.iter().take(n as usize) {
                let bits = { raw.events };
                let data = { raw.data };
                out.push(Event {
                    token: data as usize,
                    readable: bits & (EPOLLIN | EPOLLHUP | EPOLLRDHUP) != 0,
                    writable: bits & EPOLLOUT != 0,
                    error: bits & EPOLLERR != 0,
                    read_closed: bits & (EPOLLHUP | EPOLLRDHUP) != 0,
                });
            }
            Ok(())
        }
    }

    impl Drop for Selector {
        fn drop(&mut self) {
            // SAFETY: epfd was returned by epoll_create1 and is closed
            // exactly once.
            unsafe {
                close(self.epfd);
            }
        }
    }
}

#[cfg(all(unix, not(target_os = "linux")))]
mod sys {
    //! Portable `poll(2)` fallback with an interest table. Slower than the
    //! epoll path (O(registered fds) per wait) but correct on any unix.

    use super::{timeout_millis, Event, Interest};
    use std::collections::HashMap;
    use std::io;
    use std::os::raw::{c_int, c_short, c_ulong};
    use std::os::unix::io::RawFd;
    use std::sync::Mutex;
    use std::time::Duration;

    const POLLIN: c_short = 0x001;
    const POLLOUT: c_short = 0x004;
    const POLLERR: c_short = 0x008;
    const POLLHUP: c_short = 0x010;

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct PollFd {
        fd: c_int,
        events: c_short,
        revents: c_short,
    }

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
    }

    #[derive(Debug)]
    pub(super) struct Selector {
        table: Mutex<HashMap<RawFd, (usize, Interest)>>,
    }

    impl Selector {
        pub(super) fn new() -> io::Result<Selector> {
            Ok(Selector {
                table: Mutex::new(HashMap::new()),
            })
        }

        pub(super) fn register(
            &self,
            fd: RawFd,
            token: usize,
            interests: Interest,
        ) -> io::Result<()> {
            let mut table = self.table.lock().unwrap();
            if table.insert(fd, (token, interests)).is_some() {
                return Err(io::Error::new(
                    io::ErrorKind::AlreadyExists,
                    "fd already registered",
                ));
            }
            Ok(())
        }

        pub(super) fn reregister(
            &self,
            fd: RawFd,
            token: usize,
            interests: Interest,
        ) -> io::Result<()> {
            let mut table = self.table.lock().unwrap();
            match table.get_mut(&fd) {
                Some(slot) => {
                    *slot = (token, interests);
                    Ok(())
                }
                None => Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered")),
            }
        }

        pub(super) fn deregister(&self, fd: RawFd) -> io::Result<()> {
            match self.table.lock().unwrap().remove(&fd) {
                Some(_) => Ok(()),
                None => Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered")),
            }
        }

        pub(super) fn wait(
            &self,
            out: &mut Vec<Event>,
            capacity: usize,
            timeout: Option<Duration>,
        ) -> io::Result<()> {
            let mut fds: Vec<PollFd> = {
                let table = self.table.lock().unwrap();
                table
                    .iter()
                    .map(|(&fd, &(_, interests))| {
                        let mut events = 0;
                        if interests.is_readable() {
                            events |= POLLIN;
                        }
                        if interests.is_writable() {
                            events |= POLLOUT;
                        }
                        PollFd {
                            fd,
                            events,
                            revents: 0,
                        }
                    })
                    .collect()
            };
            if fds.is_empty() {
                if let Some(d) = timeout {
                    std::thread::sleep(d);
                }
                return Ok(());
            }
            // SAFETY: `fds` is a valid array of `fds.len()` pollfd entries.
            let n = unsafe {
                poll(
                    fds.as_mut_ptr(),
                    fds.len() as c_ulong,
                    timeout_millis(timeout),
                )
            };
            if n < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    return Ok(());
                }
                return Err(err);
            }
            let table = self.table.lock().unwrap();
            for pfd in fds.iter().filter(|p| p.revents != 0) {
                if out.len() == capacity {
                    break;
                }
                let Some(&(token, _)) = table.get(&pfd.fd) else {
                    continue;
                };
                out.push(Event {
                    token,
                    readable: pfd.revents & (POLLIN | POLLHUP) != 0,
                    writable: pfd.revents & POLLOUT != 0,
                    error: pfd.revents & POLLERR != 0,
                    read_closed: pfd.revents & POLLHUP != 0,
                });
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};
    use std::time::Instant;

    #[test]
    fn listener_becomes_readable_on_connect() {
        let mut poll = Poll::new().unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        poll.registry()
            .register(&listener, Token(7), Interest::READABLE)
            .unwrap();

        let mut events = Events::with_capacity(8);
        poll.poll(&mut events, Some(Duration::from_millis(50)))
            .unwrap();
        assert!(events.is_empty(), "no connection yet");

        let _client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        poll.poll(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        let ev = events.iter().next().expect("accept readiness");
        assert_eq!(ev.token(), Token(7));
        assert!(ev.is_readable());
    }

    #[test]
    fn connected_stream_is_writable_and_sees_peer_data() {
        let mut poll = Poll::new().unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut peer = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (stream, _) = listener.accept().unwrap();
        stream.set_nonblocking(true).unwrap();
        poll.registry()
            .register(&stream, Token(3), Interest::READABLE | Interest::WRITABLE)
            .unwrap();

        let mut events = Events::with_capacity(8);
        poll.poll(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events
            .iter()
            .any(|e| e.token() == Token(3) && e.is_writable()));

        peer.write_all(b"hi").unwrap();
        // Narrow to read interest so the event below is about the data.
        poll.registry()
            .reregister(&stream, Token(3), Interest::READABLE)
            .unwrap();
        poll.poll(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events
            .iter()
            .any(|e| e.token() == Token(3) && e.is_readable()));

        poll.registry().deregister(&stream).unwrap();
        poll.poll(&mut events, Some(Duration::from_millis(50)))
            .unwrap();
        assert!(events.is_empty(), "deregistered source still firing");
    }

    #[test]
    fn waker_unblocks_poll_from_another_thread() {
        let mut poll = Poll::new().unwrap();
        let waker = Arc::new(Waker::new(poll.registry(), Token(0)).unwrap());
        let remote = Arc::clone(&waker);
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            remote.wake().unwrap();
        });

        let start = Instant::now();
        let mut events = Events::with_capacity(8);
        poll.poll(&mut events, Some(Duration::from_secs(10)))
            .unwrap();
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "poll missed the wake"
        );
        assert!(events.iter().any(|e| e.token() == Token(0)));

        waker.drain();
        poll.poll(&mut events, Some(Duration::from_millis(30)))
            .unwrap();
        assert!(events.is_empty(), "waker not drained");
        handle.join().unwrap();
    }
}
