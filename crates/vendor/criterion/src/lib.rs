//! Vendored stand-in for `criterion` (see `crates/vendor/README.md`).
//!
//! A minimal wall-clock harness behind Criterion's API shape: groups,
//! `bench_function` / `bench_with_input`, `iter` / `iter_batched`, and the
//! `criterion_group!` / `criterion_main!` macros. Each benchmark does a
//! short warm-up, then runs for the configured measurement time and prints
//! the mean time per iteration. No statistics, plots, or comparisons.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies one benchmark within a group: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Throughput annotation; recorded for the report line.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// How `iter_batched` amortizes setup cost. The stand-in runs one setup
/// per iteration regardless; the variant only matches the upstream API.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Explicit batch count.
    NumBatches(u64),
}

/// Top-level harness configuration and entry point.
#[derive(Debug, Clone)]
pub struct Criterion {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warm_up: Duration::from_millis(100),
            measurement: Duration::from_millis(500),
            sample_size: 10,
        }
    }
}

impl Criterion {
    /// Sets the number of samples (kept for API compatibility; the
    /// stand-in measures by time, not sample count).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the warm-up duration.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Sets the measurement duration.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let cfg = self.clone();
        run_benchmark(&cfg, None, &id.into().id, None, f);
        self
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotates subsequent benchmarks with a throughput figure.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs a benchmark identified by `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(
            self.criterion,
            Some(&self.name),
            &id.into().id,
            self.throughput,
            f,
        );
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_benchmark(
            self.criterion,
            Some(&self.name),
            &id.into().id,
            self.throughput,
            |b| f(b, input),
        );
        self
    }

    /// Ends the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// Passed to benchmark closures; drives the measured loop.
pub struct Bencher<'a> {
    cfg: &'a Criterion,
    iters: u64,
    total: Duration,
}

impl Bencher<'_> {
    /// Measures `routine` repeatedly until the measurement window closes.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let warm_until = Instant::now() + self.cfg.warm_up;
        while Instant::now() < warm_until {
            black_box(routine());
        }
        let measure_until = Instant::now() + self.cfg.measurement;
        while Instant::now() < measure_until {
            let start = Instant::now();
            black_box(routine());
            self.total += start.elapsed();
            self.iters += 1;
        }
    }

    /// Measures `routine` on fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let warm_until = Instant::now() + self.cfg.warm_up;
        while Instant::now() < warm_until {
            black_box(routine(setup()));
        }
        let measure_until = Instant::now() + self.cfg.measurement;
        while Instant::now() < measure_until {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.total += start.elapsed();
            self.iters += 1;
        }
    }
}

fn run_benchmark<F>(
    cfg: &Criterion,
    group: Option<&str>,
    id: &str,
    throughput: Option<Throughput>,
    mut f: F,
) where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        cfg,
        iters: 0,
        total: Duration::ZERO,
    };
    f(&mut bencher);
    let label = match group {
        Some(g) => format!("{g}/{id}"),
        None => id.to_owned(),
    };
    if bencher.iters == 0 {
        println!("{label:<56} (no iterations measured)");
        return;
    }
    let mean_ns = bencher.total.as_nanos() as f64 / bencher.iters as f64;
    let mut line = format!(
        "{label:<56} {:>14}/iter  ({} iters)",
        fmt_ns(mean_ns),
        bencher.iters
    );
    if let Some(t) = throughput {
        let per_sec = match t {
            Throughput::Bytes(n) => format!("{}/s", fmt_bytes(n as f64 * 1e9 / mean_ns)),
            Throughput::Elements(n) => format!("{:.0} elem/s", n as f64 * 1e9 / mean_ns),
        };
        line.push_str(&format!("  {per_sec}"));
    }
    println!("{line}");
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

fn fmt_bytes(bps: f64) -> String {
    if bps < 1024.0 * 1024.0 {
        format!("{:.1} KiB", bps / 1024.0)
    } else if bps < 1024.0 * 1024.0 * 1024.0 {
        format!("{:.1} MiB", bps / (1024.0 * 1024.0))
    } else {
        format!("{:.2} GiB", bps / (1024.0 * 1024.0 * 1024.0))
    }
}

/// Declares a benchmark group runner, mirroring criterion's macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_counts_iterations() {
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut g = c.benchmark_group("shim");
        let mut ran = 0u64;
        g.bench_function("noop", |b| b.iter(|| ()));
        g.bench_with_input(BenchmarkId::new("with_input", 3), &3u32, |b, &n| {
            b.iter_batched(
                || n,
                |v| {
                    ran += v as u64;
                    v
                },
                BatchSize::SmallInput,
            )
        });
        g.finish();
        assert!(ran > 0);
    }
}
