//! Vendored stand-in for `crossbeam` (see `crates/vendor/README.md`).
//!
//! Provides `crossbeam::scope` on top of `std::thread::scope`. One behavior
//! difference: a panic in a spawned thread propagates when the scope exits
//! (std semantics) instead of being collected into the returned `Result`.

#![forbid(unsafe_code)]

use std::thread;

/// Handle passed to the `scope` closure; spawns threads that may borrow
/// from the enclosing scope.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread. The closure receives the scope again so it
    /// can spawn nested threads, mirroring crossbeam's signature.
    pub fn spawn<F, T>(&self, f: F) -> thread::ScopedJoinHandle<'scope, T>
    where
        F: for<'a> FnOnce(&'a Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        self.inner.spawn(move || f(&Scope { inner }))
    }
}

/// Creates a scope in which borrowed data can be shared with spawned
/// threads; all threads are joined before `scope` returns.
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(thread::scope(|s| f(&Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_threads_borrow_and_join() {
        let counter = AtomicUsize::new(0);
        super::scope(|s| {
            for _ in 0..4 {
                let counter = &counter;
                s.spawn(move |_| counter.fetch_add(1, Ordering::Relaxed));
            }
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let counter = AtomicUsize::new(0);
        super::scope(|s| {
            let counter = &counter;
            s.spawn(move |s2| {
                s2.spawn(move |_| counter.fetch_add(1, Ordering::Relaxed));
            });
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::Relaxed), 1);
    }
}
