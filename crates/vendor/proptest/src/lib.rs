//! Vendored stand-in for `proptest` (see `crates/vendor/README.md`).
//!
//! Implements the strategy combinators and macros this workspace's property
//! tests use: `proptest!`, `prop_assert*`, `prop_assume!`, `prop_oneof!`,
//! `Just`, `any`, tuple/collection/option strategies, `prop_map`,
//! `prop_filter`, `prop_recursive`, and a regex-lite string strategy
//! supporting the `[class]{m,n}` and `\PC{m,n}` patterns found in tests.
//!
//! Each property runs a fixed number of cases from a deterministic
//! per-test seed. There is no shrinking: a failing case reports its seed
//! and case number, which is enough to reproduce it (the generator is
//! fully deterministic).

#![forbid(unsafe_code)]

/// Deterministic RNG and case-runner plumbing.
pub mod test_runner {
    /// Cases run per property.
    pub const CASES: u64 = 64;

    /// SplitMix64 generator driving all strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates a generator from a seed.
        pub fn new(seed: u64) -> Self {
            TestRng {
                state: seed ^ 0x5851_f42d_4c95_7f2d,
            }
        }

        /// Next raw 64 bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, n)`; `n` must be nonzero.
        pub fn below(&mut self, n: usize) -> usize {
            ((self.next_u64() as u128 * n as u128) >> 64) as usize
        }

        /// Uniform value in `[lo, hi)`.
        pub fn in_range(&mut self, lo: usize, hi: usize) -> usize {
            debug_assert!(lo < hi);
            lo + self.below(hi - lo)
        }

        /// True with probability `num/denom`.
        pub fn chance(&mut self, num: usize, denom: usize) -> bool {
            self.below(denom) < num
        }
    }

    /// Why a test case did not pass.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum TestCaseError {
        /// The property is violated.
        Fail(String),
        /// The generated inputs do not satisfy a precondition
        /// (`prop_assume!`); the case is skipped, not failed.
        Reject(String),
    }

    impl TestCaseError {
        /// A failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// A rejection (skipped case) with the given reason.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "test case failed: {m}"),
                TestCaseError::Reject(m) => write!(f, "test case rejected: {m}"),
            }
        }
    }

    fn fnv(name: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Runs `CASES` deterministic cases of a property, panicking on the
    /// first failure. Used by the `proptest!` macro.
    pub fn run_cases<F>(name: &str, mut case: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        let base = fnv(name);
        let mut rejected = 0u64;
        for i in 0..CASES {
            let seed = base.wrapping_add(i.wrapping_mul(0x9e37_79b9_7f4a_7c15));
            let mut rng = TestRng::new(seed);
            match case(&mut rng) {
                Ok(()) => {}
                Err(TestCaseError::Reject(_)) => rejected += 1,
                Err(TestCaseError::Fail(msg)) => {
                    panic!("property '{name}' failed at case {i} (seed {seed:#x}): {msg}")
                }
            }
        }
        if rejected == CASES {
            panic!("property '{name}': every generated case was rejected by prop_assume!");
        }
    }
}

/// The `Strategy` trait and combinators.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::rc::Rc;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms generated values through `f`.
        fn prop_map<T, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> T,
        {
            Map { inner: self, f }
        }

        /// Keeps only values satisfying `pred` (regenerating otherwise).
        fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                whence,
                pred,
            }
        }

        /// Builds a recursive strategy: `self` generates leaves and `f`
        /// wraps an inner strategy into branches, nested up to `depth`.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            f: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let leaf = self.boxed();
            let mut level = leaf.clone();
            for _ in 0..depth {
                let branch = f(level).boxed();
                level = LeafOrBranch {
                    leaf: leaf.clone(),
                    branch,
                }
                .boxed();
            }
            level
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
        {
            BoxedStrategy(Rc::new(self))
        }
    }

    /// A cheaply clonable, type-erased strategy.
    pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

    trait DynStrategy<T> {
        fn generate_dyn(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate_dyn(rng)
        }
    }

    /// Always produces a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        inner: S,
        whence: &'static str,
        pred: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.inner.generate(rng);
                if (self.pred)(&v) {
                    return v;
                }
            }
            panic!(
                "prop_filter({:?}): 1000 consecutive values rejected",
                self.whence
            )
        }
    }

    /// Chooses uniformly among type-erased alternatives (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union; `arms` must be nonempty.
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.arms.len());
            self.arms[i].generate(rng)
        }
    }

    struct LeafOrBranch<T> {
        leaf: BoxedStrategy<T>,
        branch: BoxedStrategy<T>,
    }

    impl<T> Strategy for LeafOrBranch<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            if rng.chance(1, 2) {
                self.leaf.generate(rng)
            } else {
                self.branch.generate(rng)
            }
        }
    }

    macro_rules! tuple_strategy {
        ($($S:ident/$idx:tt),+) => {
            impl<$($S: Strategy),+> Strategy for ($($S,)+) {
                type Value = ($($S::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A / 0);
    tuple_strategy!(A / 0, B / 1);
    tuple_strategy!(A / 0, B / 1, C / 2);
    tuple_strategy!(A / 0, B / 1, C / 2, D / 3);
    tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4);
    tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5);

    /// Regex-lite string strategy: `&str` patterns of the shapes
    /// `[class]{m,n}`, `[class]{n}`, `[class]`, or `\PC{m,n}`.
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let (ranges, min, max) = parse_pattern(self);
            let len = if max > min {
                rng.in_range(min, max + 1)
            } else {
                min
            };
            let mut out = String::with_capacity(len);
            for _ in 0..len {
                let (lo, hi) = ranges[rng.below(ranges.len())];
                let span = hi as u32 - lo as u32 + 1;
                let mut c = char::from_u32(lo as u32 + rng.below(span as usize) as u32);
                while c.is_none() {
                    // Skipped a surrogate gap; retry within the range.
                    c = char::from_u32(lo as u32 + rng.below(span as usize) as u32);
                }
                out.push(c.unwrap());
            }
            out
        }
    }

    /// Parses the supported pattern subset into inclusive char ranges plus
    /// a length interval.
    fn parse_pattern(pat: &str) -> (Vec<(char, char)>, usize, usize) {
        let (ranges, rest) = if let Some(rest) = pat.strip_prefix("\\PC") {
            // "Not control": printable ASCII plus a slice of the BMP.
            (
                vec![(' ', '~'), ('\u{a1}', '\u{2ff}'), ('\u{400}', '\u{4ff}')],
                rest,
            )
        } else if let Some(body) = pat.strip_prefix('[') {
            let close = body.find(']').unwrap_or_else(|| bad(pat));
            (parse_class(&body[..close]), &body[close + 1..])
        } else {
            bad(pat)
        };
        let (min, max) = parse_counts(rest, pat);
        (ranges, min, max)
    }

    fn parse_class(class: &str) -> Vec<(char, char)> {
        let mut ranges = Vec::new();
        let chars: Vec<char> = class.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            if i + 2 < chars.len() && chars[i + 1] == '-' {
                ranges.push((chars[i], chars[i + 2]));
                i += 3;
            } else {
                ranges.push((chars[i], chars[i]));
                i += 1;
            }
        }
        assert!(!ranges.is_empty(), "empty character class");
        ranges
    }

    fn parse_counts(rest: &str, pat: &str) -> (usize, usize) {
        if rest.is_empty() {
            return (1, 1);
        }
        let body = rest
            .strip_prefix('{')
            .and_then(|r| r.strip_suffix('}'))
            .unwrap_or_else(|| bad(pat));
        match body.split_once(',') {
            Some((m, n)) => (
                m.trim().parse().unwrap_or_else(|_| bad(pat)),
                n.trim().parse().unwrap_or_else(|_| bad(pat)),
            ),
            None => {
                let n = body.trim().parse().unwrap_or_else(|_| bad(pat));
                (n, n)
            }
        }
    }

    fn bad(pat: &str) -> ! {
        panic!(
            "string pattern {pat:?} is outside the vendored proptest subset \
             ([class]{{m,n}} or \\PC{{m,n}})"
        )
    }
}

/// `any::<T>()` for primitive types.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical generation strategy.
    pub trait Arbitrary {
        /// Generates an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// The strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    /// A strategy producing arbitrary values of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for u8 {
        fn arbitrary(rng: &mut TestRng) -> u8 {
            rng.next_u64() as u8
        }
    }

    impl Arbitrary for u64 {
        fn arbitrary(rng: &mut TestRng) -> u64 {
            rng.next_u64()
        }
    }

    impl Arbitrary for i64 {
        fn arbitrary(rng: &mut TestRng) -> i64 {
            rng.next_u64() as i64
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Mix raw bit patterns (extremes, subnormals, NaN/Inf — callers
            // filter) with tame magnitudes so both regimes get exercised.
            if rng.chance(1, 2) {
                f64::from_bits(rng.next_u64())
            } else {
                let mantissa = (rng.next_u64() % 2_000_001) as f64 - 1_000_000.0;
                let scale = [1.0, 0.001, 1000.0][rng.below(3)];
                mantissa * scale
            }
        }
    }

    impl Arbitrary for char {
        fn arbitrary(rng: &mut TestRng) -> char {
            match rng.below(10) {
                // Mostly printable ASCII...
                0..=5 => char::from_u32(0x20 + rng.below(0x5f) as u32).unwrap(),
                // ...escape-relevant controls and specials...
                6 => ['\n', '\t', '\r', '"', '\\', '\u{0}', '\u{8}', '\u{c}'][rng.below(8)],
                // ...BMP text...
                7 | 8 => {
                    let mut c = char::from_u32(0xa1 + rng.below(0xd7ff - 0xa1) as u32);
                    while c.is_none() {
                        c = char::from_u32(0xa1 + rng.below(0xd7ff - 0xa1) as u32);
                    }
                    c.unwrap()
                }
                // ...and the occasional astral-plane scalar.
                _ => {
                    let mut c = char::from_u32(0x1_0000 + rng.below(0x10_0000) as u32);
                    while c.is_none() {
                        c = char::from_u32(0x1_0000 + rng.below(0x10_0000) as u32);
                    }
                    c.unwrap()
                }
            }
        }
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeMap;
    use std::ops::Range;

    /// Strategy for `Vec<T>` with a size drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates vectors of values from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.in_range(self.size.start, self.size.end);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeMap<K, V>`; duplicate keys collapse, so maps may
    /// come out smaller than the drawn size (as with upstream proptest).
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: Range<usize>,
    }

    /// Generates ordered maps from key/value strategies.
    pub fn btree_map<K, V>(key: K, value: V, size: Range<usize>) -> BTreeMapStrategy<K, V>
    where
        K: Strategy,
        V: Strategy,
        K::Value: Ord,
    {
        BTreeMapStrategy { key, value, size }
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        V: Strategy,
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = rng.in_range(self.size.start, self.size.end);
            let mut out = BTreeMap::new();
            for _ in 0..n {
                out.insert(self.key.generate(rng), self.value.generate(rng));
            }
            out
        }
    }
}

/// Option strategies (`prop::option`).
pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Option<T>`.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// Generates `Some` three times out of four.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.chance(3, 4) {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }
}

/// The glob-import surface mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::TestCaseError;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Namespace for collection/option strategies (`prop::collection::vec`).
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
    }
}

/// Defines property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a test running [`test_runner::CASES`] deterministic cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::test_runner::run_cases(stringify!($name), |__rng| {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), __rng);)+
                    let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    __result
                });
            }
        )*
    };
}

/// Asserts a condition inside `proptest!`, failing the case (not
/// panicking) so the runner can report the seed.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Equality assertion inside `proptest!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right
            )));
        }
    }};
}

/// Inequality assertion inside `proptest!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left == right {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{}` != `{}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                left
            )));
        }
    }};
}

/// Skips the current case when its inputs do not satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn string_pattern_subset() {
        let mut rng = crate::test_runner::TestRng::new(42);
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-c]{1,3}", &mut rng);
            assert!((1..=3).contains(&s.chars().count()));
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
            let t = Strategy::generate(&"[a-zA-Z0-9_ -]{1,16}", &mut rng);
            assert!(t
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || " _-".contains(c)));
            let u = Strategy::generate(&"\\PC{0,8}", &mut rng);
            assert!(u.chars().all(|c| !c.is_control()));
        }
    }

    proptest! {
        #[test]
        fn vec_sizes_respect_bounds(v in prop::collection::vec(any::<u8>(), 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
        }

        #[test]
        fn assume_skips_cases(x in any::<u8>()) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn oneof_and_recursion_terminate(n in prop_oneof![Just(1usize), Just(2usize)]) {
            prop_assert!(n == 1 || n == 2);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_report_case_and_seed() {
        crate::test_runner::run_cases("always_fails", |_rng| Err(TestCaseError::fail("nope")));
    }
}
