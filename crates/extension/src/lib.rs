//! # extension — the GitCite browser-extension popup, headless
//!
//! The paper's first component is "a browser extension which can be used
//! online to enable users to get citations, and owners to
//! create/modify/delete citations" (§1), deployed on Chrome against the
//! GitHub REST API. This crate reproduces the popup of Figure 2 as a
//! library: the same states, the same buttons, the same member/non-member
//! behavior — driven against the [`hub`] platform instead of a browser.
//!
//! Behavior reproduced from §3:
//!
//! * "Users provide their credentials ... and may then click on a node."
//! * Non-member: "the browser extension immediately generates the
//!   citation (shown in the text window)"; Add/Delete are disabled.
//! * Member: "the text box will display the citation explicitly attached
//!   to the node, if it exists ... If such a citation does not exist, the
//!   text box will remain empty. The user may then either enter a
//!   citation, or use the 'Generate Citation' button to see the citation
//!   of its closest ancestor, which can then be modified for the current
//!   node."

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use bibformat::Format;
use citekit::Citation;
use gitlite::RepoPath;
use hub::{
    ApiRequest, ApiResponse, Hub, HubClient, HubError, InProcess, LogEntry, Token, Transport,
};
use std::fmt;

/// Page size the popup's log pane requests: enough for a screenful,
/// never the whole history (a popular repository may have hundreds of
/// thousands of commits — the popup pulls them a page at a time).
pub const LOG_PAGE_SIZE: u32 = 25;

/// Extension-level errors.
#[derive(Debug, Clone, PartialEq)]
pub enum ExtError {
    /// No node is selected in the popup.
    NoSelection,
    /// The action needs a signed-in project member.
    NotSignedIn,
    /// The text box does not contain a parseable citation record.
    BadCitationText(String),
    /// The platform refused or failed.
    Hub(HubError),
}

impl fmt::Display for ExtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExtError::NoSelection => write!(f, "no node selected"),
            ExtError::NotSignedIn => write!(f, "sign in with a personal access token first"),
            ExtError::BadCitationText(msg) => write!(f, "invalid citation text: {msg}"),
            ExtError::Hub(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ExtError {}

impl From<HubError> for ExtError {
    fn from(e: HubError) -> Self {
        ExtError::Hub(e)
    }
}

/// Result alias for extension operations.
pub type Result<T> = std::result::Result<T, ExtError>;

/// Which buttons the popup currently enables — Figure 2's Add / Delete /
/// Generate Citation row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ButtonStates {
    /// "Generate Citation" (always available once a node is selected).
    pub generate: bool,
    /// "Add" — members only, and only when no explicit citation exists.
    pub add: bool,
    /// "Modify" — members only, on explicitly cited nodes.
    pub modify: bool,
    /// "Delete" — members only, on explicitly cited nodes.
    pub delete: bool,
}

/// What the popup window shows.
#[derive(Debug, Clone, PartialEq)]
pub struct PopupView {
    /// Repository the popup is open on.
    pub repo_id: String,
    /// Branch being browsed.
    pub branch: String,
    /// Signed-in user, if any.
    pub signed_in_as: Option<String>,
    /// Whether the signed-in user may edit citations here.
    pub is_member: bool,
    /// Currently selected node.
    pub selected: Option<RepoPath>,
    /// Contents of the citation text window.
    pub text_box: String,
    /// Button enablement.
    pub buttons: ButtonStates,
    /// One-line status message from the last action.
    pub status: String,
    /// The log pane: recent commits of the browsed branch, loaded a page
    /// at a time ([`Popup::load_history`] / [`Popup::more_history`]).
    pub history: Vec<LogEntry>,
}

enum Session {
    Anonymous,
    SignedIn { token: Token, is_member: bool },
}

/// The popup state machine, bound to one repository page.
///
/// All platform traffic goes through a [`HubClient`] speaking the
/// versioned wire protocol ([`hub::api`]) — the popup never calls the
/// hub's typed methods directly, exactly as the real extension only ever
/// sees the REST API. Generic over the [`Transport`]: [`Popup::open`]
/// binds to an in-process hub, [`Popup::open_with`] to any client,
/// including one dialed over TCP (`HubClient::connect`) against a
/// `gitcite hub serve` process.
pub struct Popup<T: Transport> {
    client: HubClient<T>,
    session: Session,
    view: PopupView,
    /// Cursor for the next history page; `None` once exhausted (or
    /// before the first load).
    history_cursor: Option<String>,
}

impl<'h> Popup<InProcess<'h>> {
    /// Opens the popup on a repository page of an in-process hub
    /// (anonymous).
    pub fn open(hub: &'h Hub, repo_id: &str, branch: &str) -> Result<Popup<InProcess<'h>>> {
        Popup::open_with(HubClient::in_process(hub), repo_id, branch)
    }
}

impl<T: Transport> Popup<T> {
    /// Opens the popup over an arbitrary client — the path a real
    /// deployment takes, with the client speaking TCP to a remote hub.
    pub fn open_with(client: HubClient<T>, repo_id: &str, branch: &str) -> Result<Popup<T>> {
        // Probe the repository so a bad id fails at open time.
        client.branches(repo_id)?;
        Ok(Popup {
            client,
            session: Session::Anonymous,
            view: PopupView {
                repo_id: repo_id.to_owned(),
                branch: branch.to_owned(),
                signed_in_as: None,
                is_member: false,
                selected: None,
                text_box: String::new(),
                buttons: ButtonStates::default(),
                status: "ready".to_owned(),
                history: Vec::new(),
            },
            history_cursor: None,
        })
    }

    /// Fills the log pane with the newest page of the branch's history
    /// via the paginated v2 endpoint — the popup never materializes the
    /// full log. A reload starts over from the tip.
    pub fn load_history(&mut self) -> Result<()> {
        let page = self.client.log_page(
            &self.view.repo_id,
            &self.view.branch,
            None,
            Some(LOG_PAGE_SIZE),
        )?;
        self.view.history = page.items;
        self.history_cursor = page.next;
        self.refresh_history_status();
        Ok(())
    }

    /// Appends the next page to the log pane; returns `false` when the
    /// history was already fully shown.
    pub fn more_history(&mut self) -> Result<bool> {
        let Some(cursor) = self.history_cursor.clone() else {
            return Ok(false);
        };
        let page = self.client.log_page(
            &self.view.repo_id,
            &self.view.branch,
            Some(&cursor),
            Some(LOG_PAGE_SIZE),
        )?;
        self.view.history.extend(page.items);
        self.history_cursor = page.next;
        self.refresh_history_status();
        Ok(true)
    }

    fn refresh_history_status(&mut self) {
        self.view.status = match &self.history_cursor {
            Some(_) => format!("showing {} most recent commit(s)", self.view.history.len()),
            None => format!("showing all {} commit(s)", self.view.history.len()),
        };
    }

    /// Provides credentials ("Users provide their credentials on GitHub to
    /// obtain access to the repository").
    ///
    /// Against a protocol-v3 hub the whole sign-in render — identity,
    /// write capability, and the selected node's citation state — travels
    /// in one batch envelope: one round trip instead of three. A pre-v3
    /// server refuses the batch with a protocol error and the popup falls
    /// back to the sequential calls transparently.
    pub fn sign_in(&mut self, token: Token) -> Result<()> {
        if self.sign_in_batched(&token)? {
            return Ok(());
        }
        let user = self.client.whoami(&token)?;
        let is_member = self.client.can_write(&token, &self.view.repo_id)?;
        self.finish_sign_in(token, user.username, is_member);
        // Re-run the selection flow under the new identity.
        if let Some(path) = self.view.selected.clone() {
            self.select(&path)?;
        }
        Ok(())
    }

    /// The batched sign-in path. `Ok(false)` means the server refused the
    /// batch envelope (it predates protocol v3) and the caller should go
    /// sequential on the same connection.
    fn sign_in_batched(&mut self, token: &Token) -> Result<bool> {
        let mut requests = vec![
            ApiRequest::Whoami {
                token: token.as_str().to_owned(),
            },
            ApiRequest::CanWrite {
                token: token.as_str().to_owned(),
                repo_id: self.view.repo_id.clone(),
            },
        ];
        if let Some(path) = &self.view.selected {
            // Member and visitor renders need different lookups and
            // membership is only known once the reply lands: ask for
            // both and use whichever applies.
            requests.push(ApiRequest::CitationEntry {
                repo_id: self.view.repo_id.clone(),
                branch: self.view.branch.clone(),
                path: path.clone(),
            });
            requests.push(ApiRequest::GenerateCitation {
                repo_id: self.view.repo_id.clone(),
                branch: self.view.branch.clone(),
                path: path.clone(),
            });
        }
        let responses = match self.client.batch(requests) {
            Ok(responses) => responses,
            Err(HubError::Protocol(_)) => return Ok(false),
            Err(e) => return Err(e.into()),
        };
        let mut responses = responses.into_iter();
        let mut next = || responses.next().expect("batch() verified the length");
        let user = match next().into_result()? {
            ApiResponse::User(u) => u,
            other => return Err(unexpected(&other)),
        };
        let is_member = match next().into_result()? {
            ApiResponse::Bool(b) => b,
            other => return Err(unexpected(&other)),
        };
        self.finish_sign_in(token.clone(), user.username, is_member);
        if self.view.selected.is_some() {
            if is_member {
                match next().into_result()? {
                    ApiResponse::CitationOpt(explicit) => self.render_member_selection(explicit),
                    other => return Err(unexpected(&other)),
                }
            } else {
                let _ = next(); // skip the unused member lookup
                match next().into_result()? {
                    ApiResponse::Citation(citation) => self.render_visitor_selection(&citation),
                    other => return Err(unexpected(&other)),
                }
            }
        }
        Ok(true)
    }

    fn finish_sign_in(&mut self, token: Token, username: String, is_member: bool) {
        self.view.signed_in_as = Some(username.clone());
        self.view.is_member = is_member;
        self.view.status = format!("signed in as {username}");
        self.session = Session::SignedIn { token, is_member };
    }

    /// The full credential flow against a secret-protected hub: log in
    /// with username and secret over the popup's own client (so the
    /// token is minted on this connection — they are connection-scoped
    /// over TCP), then run the normal [`Popup::sign_in`] render.
    pub fn sign_in_with_secret(&mut self, username: &str, secret: &str) -> Result<()> {
        let token = self.client.login_with_secret(username, secret)?;
        self.sign_in(token)
    }

    /// Signs out, returning to the anonymous read-only view.
    pub fn sign_out(&mut self) -> Result<()> {
        self.session = Session::Anonymous;
        self.view.signed_in_as = None;
        self.view.is_member = false;
        self.view.status = "signed out".to_owned();
        if let Some(path) = self.view.selected.clone() {
            self.select(&path)?;
        }
        Ok(())
    }

    /// The current rendering of the popup.
    pub fn view(&self) -> &PopupView {
        &self.view
    }

    /// Clicks a node in the repository tree.
    ///
    /// Non-members immediately see the generated citation; members see the
    /// explicit citation if one exists, else an empty text box.
    pub fn select(&mut self, path: &RepoPath) -> Result<()> {
        self.view.selected = Some(path.clone());
        let is_member = matches!(
            self.session,
            Session::SignedIn {
                is_member: true,
                ..
            }
        );
        if is_member {
            let explicit =
                self.client
                    .citation_entry(&self.view.repo_id, &self.view.branch, path)?;
            self.render_member_selection(explicit);
        } else {
            // Non-member (or anonymous): immediate generation, no editing.
            let citation =
                self.client
                    .generate_citation(&self.view.repo_id, &self.view.branch, path)?;
            self.render_visitor_selection(&citation);
        }
        Ok(())
    }

    fn render_member_selection(&mut self, explicit: Option<Citation>) {
        match explicit {
            Some(c) => {
                self.view.text_box = c.to_value().to_string_pretty();
                self.view.buttons = ButtonStates {
                    generate: true,
                    add: false,
                    modify: true,
                    delete: true,
                };
                self.view.status = "explicit citation shown; you may modify or delete it".into();
            }
            None => {
                self.view.text_box.clear();
                self.view.buttons = ButtonStates {
                    generate: true,
                    add: true,
                    modify: false,
                    delete: false,
                };
                self.view.status =
                    "no explicit citation; enter one or press Generate Citation".into();
            }
        }
    }

    fn render_visitor_selection(&mut self, citation: &Citation) {
        self.view.text_box = citation.to_value().to_string_pretty();
        self.view.buttons = ButtonStates {
            generate: true,
            add: false,
            modify: false,
            delete: false,
        };
        self.view.status = "citation generated; copy it to your bibliography manager".into();
    }

    /// Presses "Generate Citation": fills the text box with the citation
    /// of the node's closest cited ancestor, as a starting point the user
    /// "can then modif\[y\] for the current node".
    pub fn generate(&mut self) -> Result<Citation> {
        let path = self.view.selected.clone().ok_or(ExtError::NoSelection)?;
        let citation =
            self.client
                .generate_citation(&self.view.repo_id, &self.view.branch, &path)?;
        self.view.text_box = citation.to_value().to_string_pretty();
        self.view.status = "generated from closest cited ancestor".into();
        Ok(citation)
    }

    /// Types into the citation text window.
    pub fn edit_text(&mut self, text: impl Into<String>) {
        self.view.text_box = text.into();
    }

    fn parse_text_box(&self) -> Result<Citation> {
        let value = sjson::parse(&self.view.text_box)
            .map_err(|e| ExtError::BadCitationText(e.to_string()))?;
        Citation::from_value(&value).map_err(|e| ExtError::BadCitationText(e.to_string()))
    }

    fn member_token(&self) -> Result<&Token> {
        match &self.session {
            Session::SignedIn { token, .. } => Ok(token),
            Session::Anonymous => Err(ExtError::NotSignedIn),
        }
    }

    /// Presses "Add": attaches the text box's citation to the selected
    /// node. Fails for non-members (the hub enforces it even if a client
    /// re-enabled the button).
    pub fn add(&mut self) -> Result<()> {
        let path = self.view.selected.clone().ok_or(ExtError::NoSelection)?;
        let citation = self.parse_text_box()?;
        let token = self.member_token()?.clone();
        self.client.add_cite(
            &token,
            &self.view.repo_id,
            &self.view.branch,
            &path,
            citation,
        )?;
        self.view.status = format!("citation added to {}", path.to_cite_key(false));
        self.select(&path)
    }

    /// Presses "Modify": replaces the explicit citation with the text
    /// box's content.
    pub fn modify(&mut self) -> Result<()> {
        let path = self.view.selected.clone().ok_or(ExtError::NoSelection)?;
        let citation = self.parse_text_box()?;
        let token = self.member_token()?.clone();
        self.client.modify_cite(
            &token,
            &self.view.repo_id,
            &self.view.branch,
            &path,
            citation,
        )?;
        self.view.status = format!("citation modified at {}", path.to_cite_key(false));
        self.select(&path)
    }

    /// Presses "Delete": removes the explicit citation from the node.
    pub fn delete(&mut self) -> Result<()> {
        let path = self.view.selected.clone().ok_or(ExtError::NoSelection)?;
        let token = self.member_token()?.clone();
        self.client
            .del_cite(&token, &self.view.repo_id, &self.view.branch, &path)?;
        self.view.status = format!("citation deleted from {}", path.to_cite_key(false));
        self.select(&path)
    }

    /// Copies the current citation out of the popup in a bibliography
    /// format (the "copy-pasted to their local bibliography manager" step).
    pub fn export(&mut self, format: Format) -> Result<String> {
        let path = self.view.selected.clone().ok_or(ExtError::NoSelection)?;
        let citation =
            self.client
                .generate_citation(&self.view.repo_id, &self.view.branch, &path)?;
        Ok(bibformat::render(&citation, format))
    }

    /// One-line hub health for the popup footer — total calls, errors,
    /// open connections and cache hit rate — fed by the same
    /// operator-scoped `server_metrics` endpoint `gitcite hub top`
    /// polls. Requires a signed-in session; a user without the operator
    /// capability gets the hub's `permission_denied` back unchanged.
    pub fn hub_health(&self) -> Result<String> {
        let token = match &self.session {
            Session::SignedIn { token, .. } => token,
            Session::Anonymous => return Err(ExtError::NotSignedIn),
        };
        let snap = self.client.server_metrics(Some(token))?;
        let calls: u64 = snap.methods.iter().map(|m| m.calls).sum();
        let errors: u64 = snap
            .methods
            .iter()
            .flat_map(|m| m.errors.iter().map(|(_, n)| *n))
            .sum();
        let conns = snap
            .transport
            .as_ref()
            .map(|t| t.open_connections)
            .unwrap_or(0);
        let mut line =
            format!("hub: {calls} call(s), {errors} error(s), {conns} open connection(s)");
        if let Some(rate) = snap.store.as_ref().and_then(|s| s.cache_hit_rate()) {
            line.push_str(&format!(", cache {:.0}% hit", 100.0 * rate));
        }
        Ok(line)
    }
}

fn unexpected(response: &ApiResponse) -> ExtError {
    ExtError::Hub(HubError::Protocol(format!(
        "batch item shape does not match its request (got {})",
        response.kind()
    )))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gitlite::{path, Signature};

    /// Hub with owner "leshang", repo P1 containing f1.txt (cited) and
    /// d/f2.txt (uncited), plus registered non-member "visitor".
    fn setup() -> (Hub, Token, Token, String) {
        let hub = Hub::new("https://hub.example");
        hub.register_user("leshang", "Leshang Chen").unwrap();
        hub.register_user("visitor", "A Visitor").unwrap();
        let owner = hub.login("leshang").unwrap();
        let visitor = hub.login("visitor").unwrap();
        let repo_id = hub.create_repo(&owner, "P1").unwrap();
        let mut local = hub.clone_repo(&repo_id).unwrap();
        local
            .worktree_mut()
            .write(&path("f1.txt"), &b"f1\n"[..])
            .unwrap();
        local
            .worktree_mut()
            .write(&path("d/f2.txt"), &b"f2\n"[..])
            .unwrap();
        local
            .commit(Signature::new("Leshang Chen", "l@x", 100), "files")
            .unwrap();
        hub.push(&owner, &repo_id, "main", &local, "main", false)
            .unwrap();
        let c2 = Citation::builder("C2", "Leshang Chen")
            .author("Leshang Chen")
            .build();
        hub.add_cite(&owner, &repo_id, "main", &path("f1.txt"), c2)
            .unwrap();
        (hub, owner, visitor, repo_id)
    }

    #[test]
    fn anonymous_selection_generates_immediately() {
        let (hub, _, _, repo_id) = setup();
        let mut popup = Popup::open(&hub, &repo_id, "main").unwrap();
        popup.select(&path("d/f2.txt")).unwrap();
        let v = popup.view();
        // Text box holds the generated (root) citation.
        assert!(v.text_box.contains("\"repoName\": \"P1\""));
        // Only Generate is available.
        assert_eq!(
            v.buttons,
            ButtonStates {
                generate: true,
                add: false,
                modify: false,
                delete: false
            }
        );
        assert!(v.signed_in_as.is_none());
    }

    #[test]
    fn hub_health_is_operator_scoped() {
        let (hub, owner, visitor, repo_id) = setup();
        // Anonymous popups cannot ask at all.
        let popup = Popup::open(&hub, &repo_id, "main").unwrap();
        assert!(matches!(popup.hub_health(), Err(ExtError::NotSignedIn)));
        // A signed-in non-operator is refused by the hub itself.
        let mut popup = Popup::open(&hub, &repo_id, "main").unwrap();
        popup.sign_in(visitor).unwrap();
        assert!(matches!(
            popup.hub_health(),
            Err(ExtError::Hub(HubError::PermissionDenied(_)))
        ));
        // An operator sees the health line, fed by server_metrics.
        hub.grant_operator("leshang").unwrap();
        let mut popup = Popup::open(&hub, &repo_id, "main").unwrap();
        popup.sign_in(owner).unwrap();
        let line = popup.hub_health().unwrap();
        assert!(line.starts_with("hub: "), "{line}");
        assert!(line.contains("call(s)"), "{line}");
    }

    #[test]
    fn non_member_cannot_mutate_even_by_force() {
        let (hub, _, visitor, repo_id) = setup();
        let mut popup = Popup::open(&hub, &repo_id, "main").unwrap();
        popup.sign_in(visitor).unwrap();
        assert!(!popup.view().is_member);
        popup.select(&path("d/f2.txt")).unwrap();
        // Buttons disabled...
        assert!(!popup.view().buttons.add);
        // ...and the flow errors server-side when bypassed.
        popup.edit_text(r#"{"repoName": "sneak"}"#);
        assert!(matches!(
            popup.add(),
            Err(ExtError::Hub(HubError::PermissionDenied(_)))
        ));
    }

    #[test]
    fn member_sees_explicit_citation_or_empty_box() {
        let (hub, owner, _, repo_id) = setup();
        let mut popup = Popup::open(&hub, &repo_id, "main").unwrap();
        popup.sign_in(owner).unwrap();
        assert!(popup.view().is_member);
        // Cited node: explicit citation shown, modify/delete enabled.
        popup.select(&path("f1.txt")).unwrap();
        assert!(popup.view().text_box.contains("\"repoName\": \"C2\""));
        assert_eq!(
            popup.view().buttons,
            ButtonStates {
                generate: true,
                add: false,
                modify: true,
                delete: true
            }
        );
        // Uncited node: empty box, add enabled.
        popup.select(&path("d/f2.txt")).unwrap();
        assert!(popup.view().text_box.is_empty());
        assert_eq!(
            popup.view().buttons,
            ButtonStates {
                generate: true,
                add: true,
                modify: false,
                delete: false
            }
        );
    }

    #[test]
    fn member_generate_then_modify_then_add() {
        let (hub, owner, _, repo_id) = setup();
        let mut popup = Popup::open(&hub, &repo_id, "main").unwrap();
        popup.sign_in(owner).unwrap();
        popup.select(&path("d/f2.txt")).unwrap();
        // Generate fills the box with the closest ancestor's citation...
        let generated = popup.generate().unwrap();
        assert_eq!(generated.repo_name, "P1");
        // ...which the user edits for the current node and adds.
        let mut edited = generated.clone();
        edited.note = Some("the f2 component".into());
        popup.edit_text(edited.to_value().to_string_pretty());
        popup.add().unwrap();
        // The popup re-renders with the new explicit citation.
        assert!(popup.view().buttons.delete);
        assert!(popup.view().text_box.contains("the f2 component"));
        // And the hub agrees.
        let c = hub
            .generate_citation(&repo_id, "main", &path("d/f2.txt"))
            .unwrap();
        assert_eq!(c.note.as_deref(), Some("the f2 component"));
    }

    #[test]
    fn member_delete_flow() {
        let (hub, owner, _, repo_id) = setup();
        let mut popup = Popup::open(&hub, &repo_id, "main").unwrap();
        popup.sign_in(owner).unwrap();
        popup.select(&path("f1.txt")).unwrap();
        popup.delete().unwrap();
        // Back to the uncited state.
        assert!(popup.view().text_box.is_empty());
        assert!(popup.view().buttons.add);
        let c = hub
            .generate_citation(&repo_id, "main", &path("f1.txt"))
            .unwrap();
        assert_eq!(c.repo_name, "P1"); // falls back to the root
    }

    #[test]
    fn add_requires_valid_citation_text() {
        let (hub, owner, _, repo_id) = setup();
        let mut popup = Popup::open(&hub, &repo_id, "main").unwrap();
        popup.sign_in(owner).unwrap();
        popup.select(&path("d/f2.txt")).unwrap();
        popup.edit_text("not json at all");
        assert!(matches!(popup.add(), Err(ExtError::BadCitationText(_))));
        popup.edit_text("[1, 2]");
        assert!(matches!(popup.add(), Err(ExtError::BadCitationText(_))));
    }

    #[test]
    fn actions_need_selection_and_session() {
        let (hub, owner, _, repo_id) = setup();
        let mut popup = Popup::open(&hub, &repo_id, "main").unwrap();
        assert!(matches!(popup.generate(), Err(ExtError::NoSelection)));
        popup.select(&path("f1.txt")).unwrap();
        popup.edit_text("{}");
        assert!(matches!(popup.add(), Err(ExtError::NotSignedIn)));
        popup.sign_in(owner).unwrap();
        popup.sign_out().unwrap();
        assert!(matches!(popup.delete(), Err(ExtError::NotSignedIn)));
    }

    #[test]
    fn export_formats() {
        let (hub, _, _, repo_id) = setup();
        let mut popup = Popup::open(&hub, &repo_id, "main").unwrap();
        popup.select(&path("f1.txt")).unwrap();
        let bib = popup.export(Format::Bibtex).unwrap();
        assert!(bib.starts_with("@software{"));
        assert!(bib.contains("C2"));
        let cff = popup.export(Format::Cff).unwrap();
        assert!(cff.starts_with("cff-version:"));
        let plain = popup.export(Format::Plain).unwrap();
        assert!(plain.contains("[Computer software]"));
    }

    #[test]
    fn history_pane_loads_in_pages() {
        let (hub, owner, _, repo_id) = setup();
        // Grow the history well past one popup page.
        for i in 0..30 {
            let c = Citation::builder(format!("C{i}"), "x").build();
            hub.add_cite(&owner, &repo_id, "main", &path("d/f2.txt"), c)
                .unwrap();
            hub.del_cite(&owner, &repo_id, "main", &path("d/f2.txt"))
                .unwrap();
        }
        let full = hub.log(&repo_id, "main").unwrap();
        assert!(full.len() > LOG_PAGE_SIZE as usize);

        let mut popup = Popup::open(&hub, &repo_id, "main").unwrap();
        assert!(popup.view().history.is_empty());
        popup.load_history().unwrap();
        // First page only — the popup never materializes the full log.
        assert_eq!(popup.view().history.len(), LOG_PAGE_SIZE as usize);
        assert_eq!(popup.view().history[0], full[0]);
        while popup.more_history().unwrap() {}
        assert_eq!(popup.view().history, full);
        // Exhausted: another call is a no-op.
        assert!(!popup.more_history().unwrap());
    }

    #[test]
    fn open_rejects_unknown_repo() {
        let (hub, _, _, _) = setup();
        assert!(matches!(
            Popup::open(&hub, "nobody/none", "main"),
            Err(ExtError::Hub(HubError::RepoNotFound(_)))
        ));
    }

    #[test]
    fn sign_in_with_secret_against_protected_hub() {
        let (hub, _, _, repo_id) = setup();
        hub.set_auth_required(true);
        hub.register_user_with_secret("carol", "Carol", "hunter2")
            .unwrap();
        let mut popup = Popup::open(&hub, &repo_id, "main").unwrap();
        // Wrong secret is a typed auth failure, popup stays anonymous.
        assert!(matches!(
            popup.sign_in_with_secret("carol", "wrong"),
            Err(ExtError::Hub(HubError::AuthFailed))
        ));
        assert!(popup.view().signed_in_as.is_none());
        // Right secret mints a token and renders the signed-in view.
        popup.sign_in_with_secret("carol", "hunter2").unwrap();
        assert_eq!(popup.view().signed_in_as.as_deref(), Some("carol"));
    }

    #[test]
    fn sign_in_rerenders_current_selection() {
        let (hub, owner, _, repo_id) = setup();
        let mut popup = Popup::open(&hub, &repo_id, "main").unwrap();
        popup.select(&path("d/f2.txt")).unwrap();
        // Anonymous: generated citation in the box.
        assert!(!popup.view().text_box.is_empty());
        popup.sign_in(owner).unwrap();
        // Member view of an uncited node: the box is now empty.
        assert!(popup.view().text_box.is_empty());
        assert!(popup.view().buttons.add);
    }
}
