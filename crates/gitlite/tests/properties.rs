//! Property tests for the VCS substrate's core invariants.

use gitlite::{
    diff3_merge, diff_trees, flatten_tree, lcs_matches, read_tree, write_tree, MergeLabels, Odb,
    RepoPath, Repository, Signature, WorkTree,
};
use proptest::prelude::*;

/// Strategy: a small worktree with short alpha paths and small contents.
fn arb_worktree() -> impl Strategy<Value = WorkTree> {
    prop::collection::btree_map(
        prop::collection::vec("[a-d]{1,3}", 1..4).prop_map(|parts| parts.join("/")),
        prop::collection::vec(any::<u8>(), 0..32),
        0..12,
    )
    .prop_map(|files| {
        let mut wt = WorkTree::new();
        for (p, data) in files {
            let Ok(path) = RepoPath::parse(&p) else {
                continue;
            };
            if path.is_root() {
                continue;
            }
            // Skip paths that collide with an existing file/dir.
            let _ = wt.write(&path, data);
        }
        wt
    })
}

fn arb_lines() -> impl Strategy<Value = String> {
    prop::collection::vec("[a-e]{0,6}", 0..12).prop_map(|lines| {
        if lines.is_empty() {
            String::new()
        } else {
            lines.join("\n") + "\n"
        }
    })
}

proptest! {
    /// write_tree → read_tree is the identity on worktrees.
    #[test]
    fn snapshot_round_trip(wt in arb_worktree()) {
        let mut odb = Odb::new();
        let root = write_tree(&mut odb, &wt);
        let back = read_tree(&odb, root).unwrap();
        prop_assert_eq!(back, wt);
    }

    /// Snapshot ids are deterministic and content-derived.
    #[test]
    fn snapshot_deterministic(wt in arb_worktree()) {
        let mut odb1 = Odb::new();
        let mut odb2 = Odb::new();
        prop_assert_eq!(write_tree(&mut odb1, &wt), write_tree(&mut odb2, &wt));
    }

    /// A tree diffed against itself is empty; against another tree, the
    /// changed-path count never exceeds the union of file counts.
    #[test]
    fn diff_sanity(a in arb_worktree(), b in arb_worktree()) {
        let mut odb = Odb::new();
        let ta = write_tree(&mut odb, &a);
        let tb = write_tree(&mut odb, &b);
        let self_diff = diff_trees(&odb, ta, ta, true).unwrap();
        prop_assert!(self_diff.is_empty());
        let d = diff_trees(&odb, ta, tb, true).unwrap();
        prop_assert!(d.len() <= a.len() + b.len());
        // Applying the diff forward must reproduce b's listing: start from
        // a's listing, remove deleted+renamed-from, add added+renamed-to,
        // replace modified.
        let fa = flatten_tree(&odb, ta).unwrap();
        let fb = flatten_tree(&odb, tb).unwrap();
        let mut reconstructed = fa.clone();
        for p in d.deleted.keys() { reconstructed.remove(p); }
        for r in &d.renames {
            reconstructed.remove(&r.from);
            reconstructed.insert(r.to.clone(), fb[&r.to]);
        }
        for (p, id) in &d.added { reconstructed.insert(p.clone(), *id); }
        for (p, (_, new)) in &d.modified { reconstructed.insert(p.clone(), *new); }
        prop_assert_eq!(reconstructed, fb);
    }

    /// LCS matches are strictly increasing and equal elements.
    #[test]
    fn lcs_invariants(a in prop::collection::vec("[a-c]{0,2}", 0..24),
                      b in prop::collection::vec("[a-c]{0,2}", 0..24)) {
        let m = lcs_matches(&a, &b);
        for w in m.windows(2) {
            prop_assert!(w[0].0 < w[1].0);
            prop_assert!(w[0].1 < w[1].1);
        }
        for &(i, j) in &m {
            prop_assert_eq!(&a[i], &b[j]);
        }
    }

    /// diff3 with identical sides returns that side verbatim; merging a
    /// change against an unchanged side applies the change with no
    /// conflicts.
    #[test]
    fn diff3_one_sided(base in arb_lines(), edited in arb_lines()) {
        let same = diff3_merge(&base, &base, &base, MergeLabels::default());
        prop_assert_eq!(same.conflicts, 0);
        prop_assert_eq!(&same.text, &base);

        let ours = diff3_merge(&base, &edited, &base, MergeLabels::default());
        prop_assert_eq!(ours.conflicts, 0);
        prop_assert_eq!(&ours.text, &edited);

        let theirs = diff3_merge(&base, &base, &edited, MergeLabels::default());
        prop_assert_eq!(theirs.conflicts, 0);
        prop_assert_eq!(&theirs.text, &edited);
    }

    /// diff3 is symmetric in conflict count.
    #[test]
    fn diff3_conflict_symmetry(base in arb_lines(), x in arb_lines(), y in arb_lines()) {
        let xy = diff3_merge(&base, &x, &y, MergeLabels::default());
        let yx = diff3_merge(&base, &y, &x, MergeLabels::default());
        prop_assert_eq!(xy.conflicts, yx.conflicts);
        // A clean merge must not contain stray conflict markers we emitted.
        if xy.conflicts == 0 {
            prop_assert!(!xy.text.contains("<<<<<<< "));
        }
    }

    /// Commit/checkout round trip: whatever we commit is what a checkout
    /// of that commit restores, for any sequence of two edits.
    #[test]
    fn commit_checkout_round_trip(wt1 in arb_worktree(), wt2 in arb_worktree()) {
        prop_assume!(!wt1.is_empty());
        prop_assume!(wt1 != wt2);
        let mut repo = Repository::init("prop");
        *repo.worktree_mut() = wt1.clone();
        let c1 = repo.commit(Signature::new("p", "p@p", 1), "c1").unwrap();
        *repo.worktree_mut() = wt2.clone();
        let c2 = match repo.commit(Signature::new("p", "p@p", 2), "c2") {
            Ok(id) => id,
            Err(gitlite::GitError::NothingToCommit) => c1,
            Err(e) => return Err(TestCaseError::fail(format!("{e}"))),
        };
        repo.checkout_commit(c1).unwrap();
        prop_assert_eq!(repo.worktree().clone(), wt1);
        repo.checkout_commit(c2).unwrap();
        if c2 != c1 {
            prop_assert_eq!(repo.worktree().clone(), wt2);
        }
    }
}
