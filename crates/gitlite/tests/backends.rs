//! Backend-equivalence suite: every `ObjectStore` backend must give the
//! `Repository` identical behavior — same commit ids, same logs, same
//! snapshots, same file contents, same merge results — because object ids
//! are content addresses and the repository only ever talks to the trait.

use gitlite::{
    clone_repository, path, push, CachedStore, DiskStore, MemStore, MergeOptions, MergeReport,
    ObjectId, ObjectStore, PackStore, Repository, Signature,
};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

static COUNTER: AtomicU64 = AtomicU64::new(0);

fn temp_dir(tag: &str) -> PathBuf {
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir =
        std::env::temp_dir().join(format!("gitlite-backends-{tag}-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn sig(name: &str, t: i64) -> Signature {
    Signature::new(name, format!("{name}@example.org"), t)
}

/// A deterministic multi-branch scenario: three commits on main, a `gui`
/// branch with two commits (one renaming a file), and a merge back.
/// Returns the repo plus the commit ids it produced.
fn run_scenario(mut repo: Repository) -> (Repository, Vec<ObjectId>) {
    let mut commits = Vec::new();
    repo.worktree_mut()
        .write(&path("README.md"), &b"# proj\n"[..])
        .unwrap();
    repo.worktree_mut()
        .write(&path("src/main.rs"), &b"fn main() {}\n"[..])
        .unwrap();
    commits.push(repo.commit(sig("alice", 1), "V1").unwrap());

    repo.worktree_mut()
        .write(&path("src/util.rs"), &b"pub fn u() {}\n"[..])
        .unwrap();
    commits.push(repo.commit(sig("alice", 2), "V2").unwrap());

    repo.create_branch("gui").unwrap();
    repo.checkout_branch("gui").unwrap();
    repo.worktree_mut()
        .write(&path("gui/app.js"), &b"render()\n"[..])
        .unwrap();
    commits.push(repo.commit(sig("yanssie", 3), "gui work").unwrap());
    repo.worktree_mut()
        .rename(&path("gui/app.js"), &path("gui/main.js"))
        .unwrap();
    commits.push(repo.commit(sig("yanssie", 4), "rename app").unwrap());

    repo.checkout_branch("main").unwrap();
    repo.worktree_mut()
        .write(&path("src/main.rs"), &b"fn main() { run() }\n"[..])
        .unwrap();
    commits.push(repo.commit(sig("alice", 5), "main work").unwrap());

    let report = repo
        .merge_branch(
            "gui",
            sig("alice", 6),
            "merge gui",
            &MergeOptions::default(),
        )
        .unwrap();
    match report {
        MergeReport::Merged(commit) => commits.push(commit),
        other => panic!("expected a merge commit, got {other:?}"),
    }
    (repo, commits)
}

fn observe(repo: &Repository) -> (Vec<ObjectId>, BTreeMap<String, String>, usize) {
    let log = repo.log_head().unwrap();
    let snapshot = repo.snapshot(repo.head_commit().unwrap()).unwrap();
    let files: BTreeMap<String, String> = snapshot
        .keys()
        .map(|p| {
            let data = repo.file_at(repo.head_commit().unwrap(), p).unwrap();
            (p.to_string(), String::from_utf8_lossy(&data).into_owned())
        })
        .collect();
    (log, files, repo.odb().len())
}

#[test]
fn all_backends_produce_identical_repositories() {
    let disk_dir = temp_dir("equiv-disk");
    let cached_dir = temp_dir("equiv-cached");
    let pack_dir = temp_dir("equiv-pack");
    let cached_pack_dir = temp_dir("equiv-cached-pack");

    let (mem_repo, mem_commits) = run_scenario(Repository::init("proj"));
    let (disk_repo, disk_commits) = run_scenario(Repository::init_with(
        "proj",
        Box::new(DiskStore::open(&disk_dir).unwrap()),
    ));
    let (pack_repo, pack_commits) = run_scenario(Repository::init_with(
        "proj",
        Box::new(PackStore::open(&pack_dir).unwrap()),
    ));
    let (cached_disk_repo, cached_disk_commits) = run_scenario(Repository::init_with(
        "proj",
        Box::new(CachedStore::with_capacity(
            DiskStore::open(&cached_dir).unwrap(),
            16,
        )),
    ));
    let (cached_pack_repo, cached_pack_commits) = run_scenario(Repository::init_with(
        "proj",
        Box::new(CachedStore::with_capacity(
            PackStore::open(&cached_pack_dir).unwrap(),
            16,
        )),
    ));
    let (cached_mem_repo, cached_mem_commits) = run_scenario(Repository::init_with(
        "proj",
        Box::new(CachedStore::new(MemStore::new())),
    ));

    // Content addressing: the same edits yield the same commit ids on
    // every backend.
    assert_eq!(mem_commits, disk_commits);
    assert_eq!(mem_commits, pack_commits);
    assert_eq!(mem_commits, cached_disk_commits);
    assert_eq!(mem_commits, cached_pack_commits);
    assert_eq!(mem_commits, cached_mem_commits);

    let reference = observe(&mem_repo);
    for repo in [
        &disk_repo,
        &pack_repo,
        &cached_disk_repo,
        &cached_pack_repo,
        &cached_mem_repo,
    ] {
        assert_eq!(observe(repo), reference);
    }

    std::fs::remove_dir_all(&disk_dir).unwrap();
    std::fs::remove_dir_all(&cached_dir).unwrap();
    std::fs::remove_dir_all(&pack_dir).unwrap();
    std::fs::remove_dir_all(&cached_pack_dir).unwrap();
}

#[test]
fn pack_backed_history_survives_repack_gc_and_reopen() {
    let dir = temp_dir("pack-reopen");
    let (repo, commits) = run_scenario(Repository::init_with(
        "proj",
        Box::new(PackStore::open(&dir).unwrap()),
    ));
    let reference = observe(&repo);
    let head = repo.head_commit().unwrap();
    let gui_tip = repo.branch_tip("gui").unwrap();
    drop(repo);

    // Consolidate the loose objects into a pack, keeping both branches.
    let mut store = PackStore::open(&dir).unwrap();
    let report = store.gc(&[head, gui_tip]).unwrap();
    assert_eq!(report.dropped, 0, "everything is reachable from the tips");
    assert_eq!(store.loose_len(), 0);
    drop(store);

    // A fresh handle over the packed layout sees the whole DAG.
    let mut reopened = Repository::init_with("proj", Box::new(PackStore::open(&dir).unwrap()));
    reopened.set_branch("main", head).unwrap();
    reopened.checkout_branch("main").unwrap();
    assert_eq!(observe(&reopened), reference);
    assert_eq!(reopened.log_head().unwrap().len(), commits.len());

    // New commits overflow loose on top of the pack, and both layers
    // compose into one complete closure.
    reopened
        .worktree_mut()
        .write(&path("post-gc.txt"), &b"fresh\n"[..])
        .unwrap();
    let tip = reopened.commit(sig("alice", 20), "post gc").unwrap();
    let closure = reopened.odb().reachable_closure(&[tip]).unwrap();
    assert!(closure.len() > commits.len());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn disk_backed_history_survives_reopen() {
    let dir = temp_dir("reopen");
    let (repo, commits) = run_scenario(Repository::init_with(
        "proj",
        Box::new(DiskStore::open(&dir).unwrap()),
    ));
    let reference = observe(&repo);
    let head = repo.head_commit().unwrap();
    drop(repo);

    // A fresh handle over the same objects directory sees the whole DAG.
    let mut reopened = Repository::init_with("proj", Box::new(DiskStore::open(&dir).unwrap()));
    reopened.set_branch("main", head).unwrap();
    reopened.checkout_branch("main").unwrap();
    assert_eq!(observe(&reopened), reference);
    assert_eq!(reopened.log_head().unwrap().len(), commits.len());

    // And the reachable closure is complete (no missing objects on disk).
    let closure = reopened.odb().reachable_closure(&[head]).unwrap();
    assert_eq!(closure.len(), reopened.odb().len());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn pseudorandom_worktrees_round_trip_through_disk() {
    // A cheap LCG drives a few dozen randomized worktrees; everything a
    // memory-backed repo commits must read back identically through disk.
    let dir = temp_dir("fuzz");
    let mut state = 0xdead_beefu64;
    let mut rand = move |n: u64| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) % n
    };
    for round in 0..24 {
        let sub = dir.join(format!("round{round}"));
        let mut mem = Repository::init("fuzz");
        let mut disk = Repository::init_with("fuzz", Box::new(DiskStore::open(&sub).unwrap()));
        for f in 0..(1 + rand(8)) {
            let p = path(&format!("d{}/f{f}.txt", rand(3)));
            let content = format!("content {} of {p}\n", rand(1000));
            mem.worktree_mut().write(&p, content.clone()).unwrap();
            disk.worktree_mut().write(&p, content).unwrap();
        }
        let cm = mem.commit(sig("fuzz", round), "r").unwrap();
        let cd = disk.commit(sig("fuzz", round), "r").unwrap();
        assert_eq!(cm, cd, "round {round}: identical content, identical ids");
        assert_eq!(mem.snapshot(cm).unwrap(), disk.snapshot(cd).unwrap());

        // Reopen from disk and compare every file byte-for-byte.
        let reopened = Repository::init_with("fuzz", Box::new(DiskStore::open(&sub).unwrap()));
        for (p, blob) in mem.snapshot(cm).unwrap() {
            assert_eq!(
                reopened.odb().blob_data(blob).unwrap(),
                mem.odb().blob_data(blob).unwrap(),
                "round {round}, file {p}"
            );
        }
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn clone_push_work_across_backends() {
    let dir = temp_dir("remote");
    // Origin on disk, developer clone in memory — transfer in both
    // directions must move exactly the missing objects.
    let (mut origin, _) = run_scenario(Repository::init_with(
        "origin",
        Box::new(DiskStore::open(&dir).unwrap()),
    ));
    let mut local = clone_repository(&origin, "local").unwrap();
    assert_eq!(local.log_head().unwrap(), origin.log_head().unwrap());

    local
        .worktree_mut()
        .write(&path("patch.txt"), &b"fix\n"[..])
        .unwrap();
    let tip = local.commit(sig("bob", 10), "fix").unwrap();
    push(&local, &mut origin, "main", "main", false).unwrap();
    assert_eq!(origin.branch_tip("main").unwrap(), tip);
    assert!(origin.odb().contains(tip));

    // The pushed commit is durable: a fresh disk handle sees it.
    let fresh = DiskStore::open(&dir).unwrap();
    assert!(fresh.contains(tip));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn cached_store_hits_dominate_on_hot_walks() {
    let dir = temp_dir("hot");
    let store = CachedStore::new(DiskStore::open(&dir).unwrap());
    let (repo, _) = run_scenario(Repository::init_with("proj", Box::new(store)));
    // Walk the same history repeatedly — a hot path like citation
    // resolution or log rendering.
    for _ in 0..20 {
        repo.log_head().unwrap();
        repo.snapshot(repo.head_commit().unwrap()).unwrap();
    }
    std::fs::remove_dir_all(&dir).unwrap();
}
