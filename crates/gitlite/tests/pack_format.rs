//! Property tests for the pack format: arbitrary object sets must
//! round-trip through encode → write → open → read byte-identically, with
//! the index and a from-scratch reindex always agreeing.

use gitlite::{
    apply_delta, compute_delta, encode_pack, encode_pack_deltified, index_pack, Blob, Commit,
    EntryMode, ObjectId, ObjectStore, Pack, PackStore, Signature, Tree, TreeEntry,
};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

static COUNTER: AtomicU64 = AtomicU64::new(0);

fn temp_dir(tag: &str) -> PathBuf {
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "gitlite-pack-prop-{tag}-{}-{n}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Expands arbitrary blob payloads into a mixed object set: every blob,
/// a tree over all of them, and a commit pointing at the tree — so all
/// three object kinds and empty/duplicate payloads get exercised.
fn object_set(payloads: &[Vec<u8>]) -> Vec<(ObjectId, Vec<u8>)> {
    let mut objects = Vec::new();
    let mut tree = Tree::new();
    for (i, payload) in payloads.iter().enumerate() {
        let blob = Blob::new(payload.clone());
        tree.insert(
            format!("f{i}"),
            TreeEntry {
                mode: EntryMode::File,
                id: blob.id(),
            },
        );
        objects.push((blob.id(), blob.canonical_bytes()));
    }
    let commit = Commit {
        tree: tree.id(),
        parents: vec![],
        author: Signature::new("prop", "p@p", 1),
        message: "property".into(),
    };
    objects.push((tree.id(), tree.canonical_bytes()));
    objects.push((commit.id(), commit.canonical_bytes()));
    objects
}

proptest! {
    #[test]
    fn arbitrary_object_sets_round_trip_byte_identically(
        payloads in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..64), 0..24),
    ) {
        let objects = object_set(&payloads);
        let encoded = encode_pack(objects.clone());

        // In-memory: every object reads back byte-identical through the
        // encoded index.
        let pack = Pack::parse(encoded.pack.clone(), Some(&encoded.index), PathBuf::new())
            .expect("fresh pack parses");
        for (id, bytes) in &objects {
            prop_assert_eq!(pack.raw(*id).expect("packed object present"), &bytes[..]);
        }

        // The scan-rebuilt index agrees with the encoded one on every id.
        let scanned = index_pack(&encoded.pack).expect("pack rescans");
        prop_assert_eq!(scanned.ids(), pack.index().ids());
        prop_assert_eq!(scanned.pack_checksum, encoded.checksum);

        // Encoding is canonical: a second encode of the same set (any
        // order — encode sorts) is byte-identical.
        let mut reversed = objects.clone();
        reversed.reverse();
        let again = encode_pack(reversed);
        prop_assert_eq!(&again.pack, &encoded.pack);
        prop_assert_eq!(&again.index, &encoded.index);
    }

    #[test]
    fn pack_store_round_trips_arbitrary_sets_through_disk(
        payloads in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..48), 1..12),
    ) {
        let dir = temp_dir("store");
        let objects = object_set(&payloads);
        {
            let mut store = PackStore::open(&dir).expect("open");
            for (id, bytes) in &objects {
                store.put_raw(*id, bytes).expect("put_raw");
            }
            store.repack().expect("repack");
        }
        let store = PackStore::open(&dir).expect("reopen");
        prop_assert_eq!(store.loose_len(), 0);
        for (id, bytes) in &objects {
            prop_assert!(store.contains(*id));
            let obj = store.get(*id).expect("packed read");
            prop_assert_eq!(&obj.canonical_bytes(), bytes);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Whenever `compute_delta` accepts a base/target pair, applying the
    /// delta must reproduce the target exactly — for related pairs
    /// (spliced edits of a common base) and for unrelated random pairs.
    #[test]
    fn accepted_deltas_always_apply_back_to_the_target(
        base in prop::collection::vec(any::<u8>(), 0..400),
        edits in prop::collection::vec(
            (any::<u8>(), any::<u8>(), prop::collection::vec(any::<u8>(), 0..24)),
            0..6,
        ),
        stranger in prop::collection::vec(any::<u8>(), 0..200),
    ) {
        let mut targets = vec![stranger];
        let mut current = base.clone();
        for (hi, lo, insert) in &edits {
            let at = (*hi as usize * 256 + *lo as usize) % (current.len() + 1);
            current.splice(at..at, insert.iter().copied());
            targets.push(current.clone());
        }
        for target in &targets {
            if let Some(delta) = compute_delta(&base, target) {
                // Profitable (the reason it was kept) and exact.
                prop_assert!(delta.len() + 20 <= target.len() * 3 / 4);
                prop_assert_eq!(&apply_delta(&base, &delta).expect("applies"), target);
            }
        }
    }

    /// Deltified packs round-trip byte-identically for arbitrary version
    /// chains, the rescan index agrees, and encoding stays canonical.
    #[test]
    fn deltified_packs_round_trip_byte_identically(
        base in prop::collection::vec(any::<u8>(), 40..250),
        edits in prop::collection::vec(
            (any::<u8>(), any::<u8>(), prop::collection::vec(any::<u8>(), 0..16)),
            1..12,
        ),
    ) {
        let mut objects = Vec::new();
        let mut current = base;
        let push = |payload: &[u8], objects: &mut Vec<(ObjectId, Vec<u8>)>| {
            let blob = Blob::new(payload.to_vec());
            objects.push((blob.id(), blob.canonical_bytes()));
        };
        push(&current, &mut objects);
        for (hi, lo, insert) in &edits {
            let at = (*hi as usize * 256 + *lo as usize) % (current.len() + 1);
            current.splice(at..at, insert.iter().copied());
            push(&current, &mut objects);
        }
        objects.sort_by_key(|(id, _)| *id);
        objects.dedup_by_key(|(id, _)| *id);

        let encoded = encode_pack_deltified(objects.clone());
        let pack = Pack::parse(encoded.pack.clone(), Some(&encoded.index), PathBuf::new())
            .expect("deltified pack parses");
        prop_assert_eq!(pack.delta_objects(), encoded.delta_objects);
        for (id, bytes) in &objects {
            prop_assert_eq!(pack.raw(*id).expect("resolves"), &bytes[..]);
        }

        // A from-scratch rescan (lost index) serves the same bytes.
        let scanned = index_pack(&encoded.pack).expect("rescan");
        prop_assert_eq!(scanned.pack_checksum, encoded.checksum);
        let reparsed = Pack::parse(encoded.pack.clone(), None, PathBuf::new())
            .expect("reparse without index");
        for (id, bytes) in &objects {
            prop_assert_eq!(reparsed.raw(*id).expect("resolves"), &bytes[..]);
        }

        // Canonical: input order never changes the bytes.
        let mut reversed = objects.clone();
        reversed.reverse();
        prop_assert_eq!(&encode_pack_deltified(reversed).pack, &encoded.pack);
    }
}
