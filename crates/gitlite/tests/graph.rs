//! Commit-graph correctness: graph-backed walks must be **byte-identical**
//! to the decode-walk reference on arbitrary DAGs, the `GLCG` encoding
//! must round-trip, and a damaged / stale / missing graph file must
//! degrade to the decode walk (then rebuild) — never a wrong answer.

use gitlite::graph::CommitGraph;
use gitlite::mergebase::{ancestor_set_decode, merge_base_decode};
use gitlite::{
    merge_base, Commit, MemStore, Object, ObjectId, ObjectStore, PackStore, Repository, Signature,
    Tree, GRAPH_FILE,
};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

static COUNTER: AtomicU64 = AtomicU64::new(0);

fn temp_dir(tag: &str) -> PathBuf {
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "gitlite-graph-test-{tag}-{}-{n}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// SplitMix64 — a tiny deterministic RNG so each proptest case derives a
/// whole DAG from one `u64` seed.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        ((self.next() as u128 * n as u128) >> 64) as usize
    }
}

fn mk<S: ObjectStore + ?Sized>(
    store: &mut S,
    msg: &str,
    ts: i64,
    parents: Vec<ObjectId>,
) -> ObjectId {
    let tree = store.put(Object::Tree(Tree::new()));
    store.put(Object::Commit(Commit {
        tree,
        parents,
        author: Signature::new("t", "t@t", ts),
        message: msg.into(),
    }))
}

/// Builds a random commit DAG: mostly linear stretches, occasional extra
/// roots (unrelated histories), two-parent merges and octopus merges,
/// with timestamps that collide sometimes (exercising log's id
/// tie-break). Returns the store and every commit id, creation order.
fn random_dag(seed: u64, commits: usize) -> (MemStore, Vec<ObjectId>) {
    let mut rng = Rng(seed);
    let mut store = MemStore::new();
    let mut ids: Vec<ObjectId> = Vec::with_capacity(commits);
    for i in 0..commits {
        let parents: Vec<ObjectId> = if ids.is_empty() || rng.below(12) == 0 {
            Vec::new() // a fresh root: unrelated history
        } else {
            let n_parents = match rng.below(10) {
                0 => 2,
                1 => 3.min(ids.len()), // octopus when possible
                _ => 1,
            };
            let mut ps = Vec::new();
            while ps.len() < n_parents.min(ids.len()) {
                let candidate = ids[rng.below(ids.len())];
                if !ps.contains(&candidate) {
                    ps.push(candidate);
                }
            }
            ps
        };
        // Colliding timestamps ~ half the time.
        let ts = (i as i64) / 2;
        ids.push(mk(&mut store, &format!("c{seed}-{i}"), ts, parents));
    }
    (store, ids)
}

proptest! {
    /// The core equivalence property: over random DAGs (linear chains,
    /// merges, octopus merges, unrelated roots), every graph-backed walk
    /// returns exactly what the decode-walk reference returns.
    #[test]
    fn graph_walks_match_decode_reference(seed in any::<u64>()) {
        let commits = 2 + (seed % 38) as usize;
        let (store, ids) = random_dag(seed, commits);
        let graph = CommitGraph::build(&store, &ids).unwrap();
        prop_assert_eq!(graph.len(), ids.len());

        // A MemStore-backed repository has no graph: its walks ARE the
        // decode reference.
        let repo = Repository::init_with("ref", Box::new(store.clone()));

        let mut rng = Rng(seed ^ 0xdead_beef);
        for _ in 0..8 {
            let a = ids[rng.below(ids.len())];
            let b = ids[rng.below(ids.len())];
            let pa = graph.lookup(a).unwrap();
            let pb = graph.lookup(b).unwrap();

            prop_assert_eq!(graph.merge_base(pa, pb), merge_base_decode(&store, a, b).unwrap());
            prop_assert_eq!(graph.log(pa), repo.log(a).unwrap());
            prop_assert_eq!(graph.ancestor_set(pa), ancestor_set_decode(&store, a).unwrap());
            prop_assert_eq!(
                graph.is_ancestor(pa, pb),
                ancestor_set_decode(&store, b).unwrap().contains(&a)
            );
        }
    }

    /// Encode → parse round-trips the whole structure, for any DAG shape.
    #[test]
    fn glcg_encoding_round_trips(seed in any::<u64>()) {
        let commits = 1 + (seed % 29) as usize;
        let (store, ids) = random_dag(seed, commits);
        let graph = CommitGraph::build(&store, &ids).unwrap();
        let bytes = graph.encode();
        let parsed = CommitGraph::parse(&bytes).unwrap();
        prop_assert_eq!(parsed.ids(), graph.ids());
        for pos in 0..graph.len() as u32 {
            prop_assert_eq!(parsed.parents_of(pos), graph.parents_of(pos));
            prop_assert_eq!(parsed.generation_of(pos), graph.generation_of(pos));
            prop_assert_eq!(parsed.timestamp_of(pos), graph.timestamp_of(pos));
            prop_assert_eq!(parsed.tree_of(pos), graph.tree_of(pos));
        }
        prop_assert_eq!(parsed.encode(), bytes);
    }

    /// Any single-byte corruption of a GLCG file is rejected by parse —
    /// the trailer covers every byte.
    #[test]
    fn any_bit_flip_is_detected(seed in any::<u64>(), flip in any::<u64>()) {
        let commits = 1 + (seed % 15) as usize;
        let (store, ids) = random_dag(seed, commits);
        let mut bytes = CommitGraph::build(&store, &ids).unwrap().encode();
        let at = flip as usize % bytes.len();
        bytes[at] ^= 0xff;
        prop_assert!(CommitGraph::parse(&bytes).is_err(), "flip at {}", at);
    }
}

/// Builds a repository on a `PackStore` under `dir` with a little
/// branched history, returning the repo plus (main tip, side tip).
fn packed_repo(dir: &std::path::Path) -> (Repository, ObjectId, ObjectId) {
    let store = PackStore::open(dir).unwrap();
    let mut repo = Repository::init_with("packed", Box::new(store));
    repo.worktree_mut()
        .write(&gitlite::path("a.txt"), &b"one\n"[..])
        .unwrap();
    repo.commit(Signature::new("a", "a@x", 1), "c1").unwrap();
    repo.create_branch("side").unwrap();
    repo.worktree_mut()
        .write(&gitlite::path("b.txt"), &b"two\n"[..])
        .unwrap();
    let main_tip = repo.commit(Signature::new("a", "a@x", 2), "c2").unwrap();
    repo.checkout_branch("side").unwrap();
    repo.worktree_mut()
        .write(&gitlite::path("c.txt"), &b"three\n"[..])
        .unwrap();
    let side_tip = repo.commit(Signature::new("b", "b@x", 3), "c3").unwrap();
    repo.checkout_branch("main").unwrap();
    (repo, main_tip, side_tip)
}

fn gc_in(dir: &std::path::Path, roots: &[ObjectId]) {
    let mut store = PackStore::open(dir).unwrap();
    store.gc(roots).unwrap();
}

fn graph_path(dir: &std::path::Path) -> PathBuf {
    dir.join(gitlite::PACK_DIR).join(GRAPH_FILE)
}

#[test]
fn gc_writes_a_graph_that_serves_walks() {
    let dir = temp_dir("serves");
    let (repo, main_tip, side_tip) = packed_repo(&dir);
    let reference_log = repo.log(main_tip).unwrap();
    let reference_base = merge_base(repo.odb(), main_tip, side_tip).unwrap();
    drop(repo);

    gc_in(&dir, &[main_tip, side_tip]);
    assert!(graph_path(&dir).is_file(), "gc wrote the graph sidecar");

    let store = PackStore::open(&dir).unwrap();
    let graph = store.commit_graph().expect("graph loaded at open");
    assert_eq!(graph.len(), 3);
    let repo = {
        let mut r = Repository::init_with("again", Box::new(store));
        r.set_branch("main", main_tip).unwrap();
        r
    };
    assert_eq!(repo.log(main_tip).unwrap(), reference_log);
    assert_eq!(
        merge_base(repo.odb(), main_tip, side_tip).unwrap(),
        reference_base
    );
    assert!(repo.is_ancestor(reference_base.unwrap(), side_tip).unwrap());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn commits_after_gc_fall_back_per_tip_without_wrong_answers() {
    let dir = temp_dir("stale-subset");
    let (mut repo, main_tip, side_tip) = packed_repo(&dir);
    drop(repo.odb_mut().maintain(&[main_tip, side_tip]).unwrap());

    // New commit after the graph was written: absent from the graph.
    repo.worktree_mut()
        .write(&gitlite::path("d.txt"), &b"four\n"[..])
        .unwrap();
    let newer = repo.commit(Signature::new("a", "a@x", 4), "c4").unwrap();
    let graph = repo.odb().commit_graph().expect("graph survives maintain");
    assert!(graph.contains(main_tip));
    assert!(!graph.contains(newer), "fresh commit is not in the graph");

    // Walks from the fresh tip (decode fallback) and from covered tips
    // (graph) agree with a graph-less reference store.
    let reference = {
        let mut r = Repository::init_with("ref", Box::new(MemStore::new()));
        gitlite::transfer_objects(repo.odb(), r.odb_mut(), &[newer, side_tip]).unwrap();
        r
    };
    assert_eq!(repo.log(newer).unwrap(), reference.log(newer).unwrap());
    assert_eq!(
        merge_base(repo.odb(), newer, side_tip).unwrap(),
        merge_base(reference.odb(), newer, side_tip).unwrap()
    );
    assert!(repo.is_ancestor(main_tip, newer).unwrap());
    assert!(!repo.is_ancestor(newer, main_tip).unwrap());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn corrupt_graph_file_is_rebuilt_transparently() {
    let dir = temp_dir("corrupt");
    let (repo, main_tip, side_tip) = packed_repo(&dir);
    let reference_log = repo.log(main_tip).unwrap();
    drop(repo);
    gc_in(&dir, &[main_tip, side_tip]);

    for damage in ["flip", "truncate", "garbage"] {
        let path = graph_path(&dir);
        let pristine = std::fs::read(&path).unwrap();
        let bad = match damage {
            "flip" => {
                let mut b = pristine.clone();
                let at = b.len() / 2;
                b[at] ^= 0xff;
                b
            }
            "truncate" => pristine[..pristine.len() / 2].to_vec(),
            _ => b"not a graph at all".to_vec(),
        };
        std::fs::write(&path, &bad).unwrap();

        // Open rebuilds from a full scan (same .idx recovery policy):
        // the store still serves a graph, answers are still right, and
        // the file on disk is valid again.
        let store = PackStore::open(&dir).unwrap();
        let graph = store.commit_graph().unwrap_or_else(|| {
            panic!("graph rebuilt after {damage} damage");
        });
        assert_eq!(graph.len(), 3, "{damage}");
        let mut r = Repository::init_with("r", Box::new(store));
        r.set_branch("main", main_tip).unwrap();
        assert_eq!(r.log(main_tip).unwrap(), reference_log, "{damage}");
        let rewritten = std::fs::read(&path).unwrap();
        assert!(CommitGraph::parse(&rewritten).is_ok(), "{damage}");
        assert_ne!(rewritten, bad, "{damage}: file was rewritten");
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn missing_graph_degrades_to_decode_then_gc_rebuilds() {
    let dir = temp_dir("missing");
    let (repo, main_tip, side_tip) = packed_repo(&dir);
    let reference_log = repo.log(main_tip).unwrap();
    drop(repo);
    gc_in(&dir, &[main_tip, side_tip]);
    std::fs::remove_file(graph_path(&dir)).unwrap();

    // Missing file: no graph (no rebuild cost at open), decode walks.
    let store = PackStore::open(&dir).unwrap();
    assert!(store.commit_graph().is_none());
    let mut r = Repository::init_with("r", Box::new(store));
    r.set_branch("main", main_tip).unwrap();
    r.set_branch("side", side_tip).unwrap();
    assert_eq!(r.log(main_tip).unwrap(), reference_log);

    // The next gc writes it back.
    gc_in(&dir, &[main_tip, side_tip]);
    assert!(graph_path(&dir).is_file());
    assert!(PackStore::open(&dir).unwrap().commit_graph().is_some());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn stale_superset_graph_is_rebuilt_not_trusted() {
    // A graph describing commits the store no longer holds (e.g. copied
    // in from elsewhere, or left behind by an out-of-band gc) must be
    // rebuilt from the store's actual contents.
    let big = temp_dir("superset-big");
    let (repo, main_tip, side_tip) = packed_repo(&big);
    drop(repo);
    gc_in(&big, &[main_tip, side_tip]);

    let small = temp_dir("superset-small");
    {
        let store = PackStore::open(&small).unwrap();
        let mut r = Repository::init_with("small", Box::new(store));
        r.worktree_mut()
            .write(&gitlite::path("x.txt"), &b"x\n"[..])
            .unwrap();
        let tip = r.commit(Signature::new("s", "s@x", 1), "only").unwrap();
        drop(r);
        gc_in(&small, &[tip]);
    }
    // Swap in the bigger repo's graph file.
    std::fs::copy(graph_path(&big), graph_path(&small)).unwrap();

    let store = PackStore::open(&small).unwrap();
    let graph = store.commit_graph().expect("rebuilt from scan");
    assert_eq!(graph.len(), 1, "graph covers only the store's own commit");
    assert!(!graph.contains(main_tip));
    let on_disk = std::fs::read(graph_path(&small)).unwrap();
    assert_eq!(
        CommitGraph::parse(&on_disk).unwrap().ids(),
        graph.ids(),
        "rewritten file matches the rebuilt graph"
    );
    std::fs::remove_dir_all(&big).unwrap();
    std::fs::remove_dir_all(&small).unwrap();
}

#[test]
fn first_parent_chain_is_identical_with_and_without_the_graph() {
    let dir = temp_dir("first-parent");
    let (mut repo, main_tip, side_tip) = packed_repo(&dir);
    // Merge side into main so the chain has a multi-parent step.
    let merged_tree = repo.tree_of(main_tip).unwrap();
    let merged = repo
        .commit_merge(
            merged_tree,
            vec![main_tip, side_tip],
            Signature::new("a", "a@x", 5),
            "merge side",
        )
        .unwrap();
    let before = repo.first_parent_chain(merged).unwrap();
    assert_eq!(before.len(), 3, "merged → main tip → root");

    drop(repo.odb_mut().maintain(&[merged]).unwrap());
    assert!(repo.odb().commit_graph().is_some());
    assert_eq!(repo.first_parent_chain(merged).unwrap(), before);
    std::fs::remove_dir_all(&dir).unwrap();
}
