//! The three object kinds — blob, tree, commit — and their canonical
//! encodings.
//!
//! Encodings follow Git's framing (`"<kind> <len>\0<body>"`) so object ids
//! are stable, content-derived, and identical content deduplicates across
//! repositories — the property `ForkCite`/`CopyCite` rely on.

use crate::hash::{ObjectId, Sha1};
use bytes::Bytes;
use std::collections::BTreeMap;
use std::fmt;

/// What kind of node a tree entry points at.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EntryMode {
    /// A regular file (blob).
    File,
    /// A directory (tree).
    Dir,
}

impl EntryMode {
    /// Git-compatible mode string used in the canonical tree encoding.
    pub fn as_str(self) -> &'static str {
        match self {
            EntryMode::File => "100644",
            EntryMode::Dir => "40000",
        }
    }
}

/// One name → object mapping inside a [`Tree`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TreeEntry {
    /// File or directory.
    pub mode: EntryMode,
    /// Id of the blob (for files) or subtree (for directories).
    pub id: ObjectId,
}

/// File contents.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Blob {
    /// Raw bytes of the file.
    pub data: Bytes,
}

impl Blob {
    /// Creates a blob from anything byte-like.
    pub fn new(data: impl Into<Bytes>) -> Self {
        Blob { data: data.into() }
    }

    /// Canonical encoding: `blob <len>\0<data>`.
    pub fn canonical_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.data.len() + 16);
        out.extend_from_slice(format!("blob {}\0", self.data.len()).as_bytes());
        out.extend_from_slice(&self.data);
        out
    }

    /// Content id of the blob.
    pub fn id(&self) -> ObjectId {
        let mut h = Sha1::new();
        h.update(&self.canonical_bytes());
        ObjectId(h.finalize())
    }
}

/// A directory: a sorted map from child name to [`TreeEntry`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Tree {
    entries: BTreeMap<String, TreeEntry>,
}

impl Tree {
    /// Creates an empty tree.
    pub fn new() -> Self {
        Tree {
            entries: BTreeMap::new(),
        }
    }

    /// Inserts or replaces an entry.
    pub fn insert(&mut self, name: impl Into<String>, entry: TreeEntry) {
        self.entries.insert(name.into(), entry);
    }

    /// Removes an entry by name.
    pub fn remove(&mut self, name: &str) -> Option<TreeEntry> {
        self.entries.remove(name)
    }

    /// Looks up an entry by name.
    pub fn get(&self, name: &str) -> Option<&TreeEntry> {
        self.entries.get(name)
    }

    /// Number of direct children.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the tree has no children.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates `(name, entry)` in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &TreeEntry)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Canonical encoding: `tree <len>\0` + `"<mode> <name>\0" + 20-byte id`
    /// per entry, in name order.
    pub fn canonical_bytes(&self) -> Vec<u8> {
        let mut body = Vec::new();
        for (name, entry) in &self.entries {
            body.extend_from_slice(entry.mode.as_str().as_bytes());
            body.push(b' ');
            body.extend_from_slice(name.as_bytes());
            body.push(0);
            body.extend_from_slice(&entry.id.0);
        }
        let mut out = Vec::with_capacity(body.len() + 16);
        out.extend_from_slice(format!("tree {}\0", body.len()).as_bytes());
        out.extend_from_slice(&body);
        out
    }

    /// Content id of the tree.
    pub fn id(&self) -> ObjectId {
        let mut h = Sha1::new();
        h.update(&self.canonical_bytes());
        ObjectId(h.finalize())
    }
}

/// Author/committer identity plus a timestamp.
///
/// Timestamps are caller-supplied (the hosting simulation uses a logical
/// clock) so whole scenarios are deterministic and reproducible — a
/// requirement for regenerating Listing 1 byte-for-byte.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Signature {
    /// Display name, e.g. `"Yinjun Wu"`.
    pub name: String,
    /// Email address.
    pub email: String,
    /// Seconds since the epoch (logical time is fine).
    pub timestamp: i64,
}

impl Signature {
    /// Creates a signature.
    pub fn new(name: impl Into<String>, email: impl Into<String>, timestamp: i64) -> Self {
        Signature {
            name: name.into(),
            email: email.into(),
            timestamp,
        }
    }

    fn canonical(&self) -> String {
        format!("{} <{}> {}", self.name, self.email, self.timestamp)
    }
}

/// A commit: a tree snapshot plus parents, author and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Commit {
    /// Root tree of this version.
    pub tree: ObjectId,
    /// Zero (root commit), one (normal) or two (merge) parents.
    pub parents: Vec<ObjectId>,
    /// Who created the version.
    pub author: Signature,
    /// Commit message.
    pub message: String,
}

impl Commit {
    /// Canonical encoding following Git's commit format.
    pub fn canonical_bytes(&self) -> Vec<u8> {
        let mut body = String::new();
        body.push_str(&format!("tree {}\n", self.tree.to_hex()));
        for p in &self.parents {
            body.push_str(&format!("parent {}\n", p.to_hex()));
        }
        body.push_str(&format!("author {}\n", self.author.canonical()));
        body.push_str(&format!("committer {}\n", self.author.canonical()));
        body.push('\n');
        body.push_str(&self.message);
        let mut out = Vec::with_capacity(body.len() + 16);
        out.extend_from_slice(format!("commit {}\0", body.len()).as_bytes());
        out.extend_from_slice(body.as_bytes());
        out
    }

    /// Content id of the commit.
    pub fn id(&self) -> ObjectId {
        let mut h = Sha1::new();
        h.update(&self.canonical_bytes());
        ObjectId(h.finalize())
    }
}

/// Any of the three object kinds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Object {
    /// File contents.
    Blob(Blob),
    /// Directory listing.
    Tree(Tree),
    /// Version snapshot.
    Commit(Commit),
}

impl Object {
    /// The object's content id.
    pub fn id(&self) -> ObjectId {
        match self {
            Object::Blob(b) => b.id(),
            Object::Tree(t) => t.id(),
            Object::Commit(c) => c.id(),
        }
    }

    /// The object's canonical encoding (what its id hashes, and what the
    /// on-disk store persists).
    pub fn canonical_bytes(&self) -> Vec<u8> {
        match self {
            Object::Blob(b) => b.canonical_bytes(),
            Object::Tree(t) => t.canonical_bytes(),
            Object::Commit(c) => c.canonical_bytes(),
        }
    }

    /// Object kind name, as used in error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Object::Blob(_) => "blob",
            Object::Tree(_) => "tree",
            Object::Commit(_) => "commit",
        }
    }

    /// Borrows the blob or `None`.
    pub fn as_blob(&self) -> Option<&Blob> {
        match self {
            Object::Blob(b) => Some(b),
            _ => None,
        }
    }

    /// Borrows the tree or `None`.
    pub fn as_tree(&self) -> Option<&Tree> {
        match self {
            Object::Tree(t) => Some(t),
            _ => None,
        }
    }

    /// Borrows the commit or `None`.
    pub fn as_commit(&self) -> Option<&Commit> {
        match self {
            Object::Commit(c) => Some(c),
            _ => None,
        }
    }
}

impl fmt::Display for Object {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.kind(), self.id().short())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blob_id_matches_git() {
        // Matches `git hash-object`: blob "hello" →
        // b6fc4c620b67d95f953a5c1c1230aaab5db5a1b0
        let b = Blob::new(&b"hello"[..]);
        assert_eq!(b.id().to_hex(), "b6fc4c620b67d95f953a5c1c1230aaab5db5a1b0");
    }

    #[test]
    fn empty_blob_matches_git() {
        let b = Blob::new(&b""[..]);
        assert_eq!(b.id().to_hex(), "e69de29bb2d1d6434b8b29ae775ad8c2e48c5391");
    }

    #[test]
    fn tree_entries_sorted_and_deterministic() {
        let blob = Blob::new(&b"x"[..]);
        let mut t1 = Tree::new();
        t1.insert(
            "b.txt",
            TreeEntry {
                mode: EntryMode::File,
                id: blob.id(),
            },
        );
        t1.insert(
            "a.txt",
            TreeEntry {
                mode: EntryMode::File,
                id: blob.id(),
            },
        );
        let mut t2 = Tree::new();
        t2.insert(
            "a.txt",
            TreeEntry {
                mode: EntryMode::File,
                id: blob.id(),
            },
        );
        t2.insert(
            "b.txt",
            TreeEntry {
                mode: EntryMode::File,
                id: blob.id(),
            },
        );
        assert_eq!(t1.id(), t2.id());
        let names: Vec<_> = t1.iter().map(|(n, _)| n.to_owned()).collect();
        assert_eq!(names, vec!["a.txt", "b.txt"]);
    }

    #[test]
    fn tree_id_changes_with_content() {
        let mut t = Tree::new();
        t.insert(
            "a",
            TreeEntry {
                mode: EntryMode::File,
                id: Blob::new(&b"1"[..]).id(),
            },
        );
        let id1 = t.id();
        t.insert(
            "a",
            TreeEntry {
                mode: EntryMode::File,
                id: Blob::new(&b"2"[..]).id(),
            },
        );
        assert_ne!(id1, t.id());
    }

    #[test]
    fn commit_id_depends_on_everything() {
        let tree = Tree::new().id();
        let base = Commit {
            tree,
            parents: vec![],
            author: Signature::new("A", "a@x", 1),
            message: "m".into(),
        };
        let mut c2 = base.clone();
        c2.message = "other".into();
        assert_ne!(base.id(), c2.id());
        let mut c3 = base.clone();
        c3.author.timestamp = 2;
        assert_ne!(base.id(), c3.id());
        let mut c4 = base.clone();
        c4.parents = vec![base.id()];
        assert_ne!(base.id(), c4.id());
    }

    #[test]
    fn object_accessors() {
        let b = Object::Blob(Blob::new(&b"z"[..]));
        assert!(b.as_blob().is_some());
        assert!(b.as_tree().is_none());
        assert!(b.as_commit().is_none());
        assert_eq!(b.kind(), "blob");
        let t = Object::Tree(Tree::new());
        assert!(t.as_tree().is_some());
        assert_eq!(t.id(), Tree::new().id());
    }
}
