//! Process-wide store read metrics.
//!
//! Two questions an operator keeps asking about the storage layer:
//! which tier serves object reads (buffered packs vs the loose
//! overflow), and whether history walks ride the commit-graph index or
//! fall back to decoding commits. These counters answer both without
//! threading a handle through every store: they are process-wide
//! statics (one hub process serves one metrics endpoint), incremented
//! with relaxed atomics at the decision points and read by
//! [`snapshot`]. Cache hit rates are *not* here — they stay
//! per-instance behind [`crate::ObjectStore::cache_metrics`], because a
//! cache's effectiveness is a property of one store, not the process.

use telemetry::Counter;

/// Object reads served from a pack buffer ([`crate::PackStore`]).
pub static PACK_READS: Counter = Counter::new();

/// Object reads that fell through to the loose overflow area.
pub static LOOSE_READS: Counter = Counter::new();

/// History walks (log, first-parent chain, ancestry, merge-base)
/// answered from the commit-graph index.
pub static GRAPH_WALKS: Counter = Counter::new();

/// History walks that decoded commits because the graph was absent or
/// did not cover the starting commit.
pub static FALLBACK_WALKS: Counter = Counter::new();

/// Delta links applied while resolving packed objects (one per chain
/// hop, so cost ∝ this counter; cache hits stop the walk early).
pub static DELTA_RESOLUTIONS: Counter = Counter::new();

/// Path queries a changed-path Bloom filter answered "maybe changed"
/// where the path really had changed.
pub static BLOOM_HITS: Counter = Counter::new();

/// Path queries a changed-path Bloom filter answered with a definitive
/// "unchanged" — each one is a tree diff (or blob fetch) skipped.
pub static BLOOM_SKIPS: Counter = Counter::new();

/// Path queries where the filter said "maybe changed" but the exact
/// check found no change (the Bloom false-positive rate, ~1% expected).
pub static BLOOM_FALSE_POSITIVES: Counter = Counter::new();

/// Records one history-walk routing decision.
pub(crate) fn count_walk(graph_served: bool) {
    if graph_served {
        GRAPH_WALKS.inc();
    } else {
        FALLBACK_WALKS.inc();
    }
}

/// A point-in-time copy of the process-wide store read counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreReadStats {
    /// Reads served from packs.
    pub pack_reads: u64,
    /// Reads served loose.
    pub loose_reads: u64,
    /// Graph-covered history walks.
    pub graph_walks: u64,
    /// Decode-fallback history walks.
    pub fallback_walks: u64,
    /// Delta links applied resolving packed objects.
    pub delta_resolutions: u64,
    /// Bloom "maybe" answers that were real changes.
    pub bloom_hits: u64,
    /// Bloom "unchanged" answers (diffs skipped).
    pub bloom_skips: u64,
    /// Bloom "maybe" answers the exact check refuted.
    pub bloom_false_positives: u64,
}

/// Reads all the counters (relaxed atomic loads).
pub fn snapshot() -> StoreReadStats {
    StoreReadStats {
        pack_reads: PACK_READS.get(),
        loose_reads: LOOSE_READS.get(),
        graph_walks: GRAPH_WALKS.get(),
        fallback_walks: FALLBACK_WALKS.get(),
        delta_resolutions: DELTA_RESOLUTIONS.get(),
        bloom_hits: BLOOM_HITS.get(),
        bloom_skips: BLOOM_SKIPS.get(),
        bloom_false_positives: BLOOM_FALSE_POSITIVES.get(),
    }
}
