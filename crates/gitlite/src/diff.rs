//! Tree-to-tree diffs with rename detection.
//!
//! The citation layer consumes these diffs to keep citation functions
//! consistent across versions: deleted paths drop their citations, renamed
//! paths carry their citations to the new key (paper §2), and directory
//! renames are inferred so a citation attached to a *directory* follows the
//! directory.

use crate::error::Result;
use crate::hash::ObjectId;
use crate::path::RepoPath;
use crate::snapshot::flatten_tree;
use crate::store::ObjectStore;
use crate::textdiff::bag_similarity;
use std::collections::BTreeMap;

/// Minimum content similarity for a delete/add pair to count as a rename.
pub const RENAME_THRESHOLD: f64 = 0.5;

/// Rename-detection work cap: if `|deleted| × |added|` exceeds this, only
/// exact (same blob id) renames are detected, mirroring Git's
/// `merge.renameLimit` escape hatch.
pub const RENAME_PAIR_LIMIT: usize = 10_000;

/// A detected rename.
#[derive(Debug, Clone, PartialEq)]
pub struct Rename {
    /// Path in the old tree.
    pub from: RepoPath,
    /// Path in the new tree.
    pub to: RepoPath,
    /// Content similarity in `[0, 1]`; `1.0` for exact (same blob) renames.
    pub similarity: f64,
}

/// A tree-level diff between two versions.
#[derive(Debug, Clone, Default)]
pub struct TreeDiff {
    /// Files present only in the new tree (after rename extraction).
    pub added: BTreeMap<RepoPath, ObjectId>,
    /// Files present only in the old tree (after rename extraction).
    pub deleted: BTreeMap<RepoPath, ObjectId>,
    /// Files at the same path with changed contents: `path → (old, new)`.
    pub modified: BTreeMap<RepoPath, (ObjectId, ObjectId)>,
    /// Delete/add pairs reinterpreted as renames.
    pub renames: Vec<Rename>,
}

impl TreeDiff {
    /// True when the two trees are identical.
    pub fn is_empty(&self) -> bool {
        self.added.is_empty()
            && self.deleted.is_empty()
            && self.modified.is_empty()
            && self.renames.is_empty()
    }

    /// Total number of changed paths.
    pub fn len(&self) -> usize {
        self.added.len() + self.deleted.len() + self.modified.len() + self.renames.len()
    }

    /// Infers directory-level renames from the file-level renames.
    ///
    /// A mapping `old_dir → new_dir` is reported when at least one file
    /// moved from `old_dir/x` to `new_dir/x` (same relative remainder) and
    /// `old_dir` no longer exists in the new tree. When several candidate
    /// targets exist the one with the most supporting file moves wins.
    /// Nested results are minimal: if `a → b` is reported, `a/sub → b/sub`
    /// is implied and not listed separately.
    pub fn directory_renames(
        &self,
        new_tree_paths: &BTreeMap<RepoPath, ObjectId>,
    ) -> Vec<(RepoPath, RepoPath)> {
        // votes: old_dir → (new_dir → count)
        let mut votes: BTreeMap<RepoPath, BTreeMap<RepoPath, usize>> = BTreeMap::new();
        for r in &self.renames {
            // For every ancestor pair (old_dir, new_dir) sharing the same
            // relative remainder, cast a vote.
            let from_comps = r.from.components();
            let to_comps = r.to.components();
            // Common suffix length (at least the file name must agree for a
            // directory rename to be implied).
            let mut s = 0;
            while s < from_comps.len().saturating_sub(1)
                && s < to_comps.len().saturating_sub(1)
                && from_comps[from_comps.len() - 1 - s] == to_comps[to_comps.len() - 1 - s]
            {
                s += 1;
            }
            for keep in 1..=s {
                let old_dir = RepoPath::parse(&from_comps[..from_comps.len() - keep].join("/"))
                    .expect("components are valid");
                let new_dir = RepoPath::parse(&to_comps[..to_comps.len() - keep].join("/"))
                    .expect("components are valid");
                if old_dir.is_root() || new_dir.is_root() || old_dir == new_dir {
                    continue;
                }
                *votes
                    .entry(old_dir)
                    .or_default()
                    .entry(new_dir)
                    .or_default() += 1;
            }
        }
        let dir_still_exists = |dir: &RepoPath| new_tree_paths.keys().any(|p| p.starts_with(dir));
        let mut out: Vec<(RepoPath, RepoPath)> = Vec::new();
        for (old_dir, candidates) in votes {
            if dir_still_exists(&old_dir) {
                continue;
            }
            if let Some((new_dir, _)) = candidates.into_iter().max_by_key(|(_, n)| *n) {
                out.push((old_dir, new_dir));
            }
        }
        // Keep only the shallowest mappings; deeper ones are implied.
        let shallow: Vec<(RepoPath, RepoPath)> = out
            .iter()
            .filter(|(old, new)| {
                !out.iter().any(|(o2, n2)| {
                    (o2, n2) != (old, new)
                        && old.starts_with(o2)
                        && new.starts_with(n2)
                        && old.strip_prefix(o2) == new.strip_prefix(n2)
                })
            })
            .cloned()
            .collect();
        shallow
    }
}

/// Diffs two flattened listings (`path → blob id`).
pub fn diff_listings<S: ObjectStore + ?Sized>(
    old: &BTreeMap<RepoPath, ObjectId>,
    new: &BTreeMap<RepoPath, ObjectId>,
    odb: &S,
    detect_renames: bool,
) -> TreeDiff {
    let mut diff = TreeDiff::default();
    for (path, old_id) in old {
        match new.get(path) {
            None => {
                diff.deleted.insert(path.clone(), *old_id);
            }
            Some(new_id) if new_id != old_id => {
                diff.modified.insert(path.clone(), (*old_id, *new_id));
            }
            Some(_) => {}
        }
    }
    for (path, new_id) in new {
        if !old.contains_key(path) {
            diff.added.insert(path.clone(), *new_id);
        }
    }
    if detect_renames {
        detect_rename_pairs(&mut diff, odb);
    }
    diff
}

/// Diffs two stored trees.
pub fn diff_trees<S: ObjectStore + ?Sized>(
    odb: &S,
    old_tree: ObjectId,
    new_tree: ObjectId,
    detect_renames: bool,
) -> Result<TreeDiff> {
    let old = flatten_tree(odb, old_tree)?;
    let new = flatten_tree(odb, new_tree)?;
    Ok(diff_listings(&old, &new, odb, detect_renames))
}

/// Moves matching delete/add pairs into `diff.renames`.
fn detect_rename_pairs<S: ObjectStore + ?Sized>(diff: &mut TreeDiff, odb: &S) {
    if diff.deleted.is_empty() || diff.added.is_empty() {
        return;
    }

    let mut used_added: std::collections::HashSet<RepoPath> = std::collections::HashSet::new();
    let mut renames: Vec<Rename> = Vec::new();

    // Pass 1: exact renames — identical blob ids. Prefer targets with the
    // same file name so `a/f.rs → b/f.rs` beats `a/f.rs → b/other.rs`.
    let mut by_blob: BTreeMap<ObjectId, Vec<RepoPath>> = BTreeMap::new();
    for (path, id) in &diff.added {
        by_blob.entry(*id).or_default().push(path.clone());
    }
    let mut remaining_deleted: Vec<(RepoPath, ObjectId)> = Vec::new();
    for (path, id) in &diff.deleted {
        let candidates = by_blob.get(id);
        let target = candidates.and_then(|cands| {
            cands
                .iter()
                .filter(|c| !used_added.contains(*c))
                .max_by_key(|c| usize::from(c.file_name() == path.file_name()))
        });
        match target {
            Some(to) => {
                used_added.insert(to.clone());
                renames.push(Rename {
                    from: path.clone(),
                    to: to.clone(),
                    similarity: 1.0,
                });
            }
            None => remaining_deleted.push((path.clone(), *id)),
        }
    }

    // Pass 2: similarity renames over the leftovers, if affordable.
    let open_added: Vec<(RepoPath, ObjectId)> = diff
        .added
        .iter()
        .filter(|(p, _)| !used_added.contains(*p))
        .map(|(p, id)| (p.clone(), *id))
        .collect();
    if !remaining_deleted.is_empty()
        && !open_added.is_empty()
        && remaining_deleted.len() * open_added.len() <= RENAME_PAIR_LIMIT
    {
        // Score all pairs and greedily take the best above threshold.
        let mut scored: Vec<(f64, usize, usize)> = Vec::new();
        for (di, (_, d_id)) in remaining_deleted.iter().enumerate() {
            let d_data = match odb.blob_data(*d_id) {
                Ok(d) => d,
                Err(_) => continue,
            };
            for (ai, (_, a_id)) in open_added.iter().enumerate() {
                let a_data = match odb.blob_data(*a_id) {
                    Ok(d) => d,
                    Err(_) => continue,
                };
                let sim = bag_similarity(&d_data, &a_data);
                if sim >= RENAME_THRESHOLD {
                    scored.push((sim, di, ai));
                }
            }
        }
        scored.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
        let mut used_d = vec![false; remaining_deleted.len()];
        let mut used_a = vec![false; open_added.len()];
        for (sim, di, ai) in scored {
            if used_d[di] || used_a[ai] {
                continue;
            }
            used_d[di] = true;
            used_a[ai] = true;
            let from = remaining_deleted[di].0.clone();
            let to = open_added[ai].0.clone();
            used_added.insert(to.clone());
            renames.push(Rename {
                from,
                to,
                similarity: sim,
            });
        }
        remaining_deleted = remaining_deleted
            .into_iter()
            .enumerate()
            .filter(|(i, _)| !used_d[*i])
            .map(|(_, x)| x)
            .collect();
    }

    // Rebuild added/deleted without the matched pairs.
    for r in &renames {
        diff.added.remove(&r.to);
    }
    diff.deleted = remaining_deleted.into_iter().collect();
    renames.sort_by(|a, b| a.from.cmp(&b.from));
    diff.renames = renames;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::path::path;
    use crate::snapshot::write_tree;
    use crate::store::Odb;
    use crate::worktree::WorkTree;

    fn tree_of(odb: &mut Odb, files: &[(&str, &str)]) -> ObjectId {
        let mut wt = WorkTree::new();
        for (p, c) in files {
            wt.write(&path(p), c.as_bytes().to_vec()).unwrap();
        }
        write_tree(odb, &wt)
    }

    #[test]
    fn identical_trees_empty_diff() {
        let mut odb = Odb::new();
        let t = tree_of(&mut odb, &[("a.txt", "x")]);
        let d = diff_trees(&odb, t, t, true).unwrap();
        assert!(d.is_empty());
        assert_eq!(d.len(), 0);
    }

    #[test]
    fn add_delete_modify() {
        let mut odb = Odb::new();
        let t1 = tree_of(
            &mut odb,
            &[("keep.txt", "same"), ("mod.txt", "v1"), ("gone.txt", "bye")],
        );
        let t2 = tree_of(
            &mut odb,
            &[("keep.txt", "same"), ("mod.txt", "v2"), ("new.txt", "hi")],
        );
        let d = diff_trees(&odb, t1, t2, false).unwrap();
        assert_eq!(d.added.len(), 1);
        assert!(d.added.contains_key(&path("new.txt")));
        assert_eq!(d.deleted.len(), 1);
        assert!(d.deleted.contains_key(&path("gone.txt")));
        assert_eq!(d.modified.len(), 1);
        assert!(d.modified.contains_key(&path("mod.txt")));
        assert!(d.renames.is_empty());
    }

    #[test]
    fn exact_rename_detected() {
        let mut odb = Odb::new();
        let t1 = tree_of(&mut odb, &[("old/name.rs", "unique content here")]);
        let t2 = tree_of(&mut odb, &[("new/name.rs", "unique content here")]);
        let d = diff_trees(&odb, t1, t2, true).unwrap();
        assert!(d.added.is_empty());
        assert!(d.deleted.is_empty());
        assert_eq!(d.renames.len(), 1);
        assert_eq!(d.renames[0].from, path("old/name.rs"));
        assert_eq!(d.renames[0].to, path("new/name.rs"));
        assert_eq!(d.renames[0].similarity, 1.0);
    }

    #[test]
    fn exact_rename_prefers_same_file_name() {
        let mut odb = Odb::new();
        let t1 = tree_of(&mut odb, &[("src/util.rs", "dup")]);
        let t2 = tree_of(&mut odb, &[("lib/util.rs", "dup"), ("lib/other.rs", "dup")]);
        let d = diff_trees(&odb, t1, t2, true).unwrap();
        assert_eq!(d.renames.len(), 1);
        assert_eq!(d.renames[0].to, path("lib/util.rs"));
        // The other copy counts as an add.
        assert!(d.added.contains_key(&path("lib/other.rs")));
    }

    #[test]
    fn similar_rename_detected() {
        let mut odb = Odb::new();
        let original = "line1\nline2\nline3\nline4\nline5\nline6\nline7\nline8\n";
        let edited = "line1\nline2\nline3\nline4\nline5\nline6\nline7\nEDITED\n";
        let t1 = tree_of(&mut odb, &[("a/file.txt", original)]);
        let t2 = tree_of(&mut odb, &[("b/file.txt", edited)]);
        let d = diff_trees(&odb, t1, t2, true).unwrap();
        assert_eq!(d.renames.len(), 1);
        let r = &d.renames[0];
        assert_eq!(r.from, path("a/file.txt"));
        assert_eq!(r.to, path("b/file.txt"));
        assert!(r.similarity >= RENAME_THRESHOLD && r.similarity < 1.0);
    }

    #[test]
    fn dissimilar_files_not_renamed() {
        let mut odb = Odb::new();
        let t1 = tree_of(&mut odb, &[("a.txt", "alpha\nbeta\ngamma\n")]);
        let t2 = tree_of(&mut odb, &[("b.txt", "one\ntwo\nthree\n")]);
        let d = diff_trees(&odb, t1, t2, true).unwrap();
        assert!(d.renames.is_empty());
        assert_eq!(d.added.len(), 1);
        assert_eq!(d.deleted.len(), 1);
    }

    #[test]
    fn rename_detection_can_be_disabled() {
        let mut odb = Odb::new();
        let t1 = tree_of(&mut odb, &[("old.rs", "zzz")]);
        let t2 = tree_of(&mut odb, &[("new.rs", "zzz")]);
        let d = diff_trees(&odb, t1, t2, false).unwrap();
        assert!(d.renames.is_empty());
        assert_eq!(d.added.len(), 1);
        assert_eq!(d.deleted.len(), 1);
    }

    #[test]
    fn directory_rename_inferred() {
        let mut odb = Odb::new();
        let t1 = tree_of(
            &mut odb,
            &[
                ("gui/app.js", "console.log(1)"),
                ("gui/style.css", "body{}"),
                ("main.rs", "fn main(){}"),
            ],
        );
        let t2 = tree_of(
            &mut odb,
            &[
                ("citation/GUI/app.js", "console.log(1)"),
                ("citation/GUI/style.css", "body{}"),
                ("main.rs", "fn main(){}"),
            ],
        );
        let d = diff_trees(&odb, t1, t2, true).unwrap();
        assert_eq!(d.renames.len(), 2);
        let new_listing = flatten_tree(&odb, t2).unwrap();
        let dirs = d.directory_renames(&new_listing);
        assert_eq!(dirs, vec![(path("gui"), path("citation/GUI"))]);
    }

    #[test]
    fn no_directory_rename_when_dir_survives() {
        let mut odb = Odb::new();
        let t1 = tree_of(&mut odb, &[("d/a.txt", "aaa"), ("d/b.txt", "bbb")]);
        // Only one file moved; d still exists.
        let t2 = tree_of(&mut odb, &[("e/a.txt", "aaa"), ("d/b.txt", "bbb")]);
        let d = diff_trees(&odb, t1, t2, true).unwrap();
        let new_listing = flatten_tree(&odb, t2).unwrap();
        assert!(d.directory_renames(&new_listing).is_empty());
    }

    #[test]
    fn nested_directory_rename_is_minimal() {
        let mut odb = Odb::new();
        let t1 = tree_of(&mut odb, &[("a/x/f1.txt", "111"), ("a/x/y/f2.txt", "222")]);
        let t2 = tree_of(&mut odb, &[("b/x/f1.txt", "111"), ("b/x/y/f2.txt", "222")]);
        let d = diff_trees(&odb, t1, t2, true).unwrap();
        let new_listing = flatten_tree(&odb, t2).unwrap();
        let dirs = d.directory_renames(&new_listing);
        assert_eq!(dirs, vec![(path("a"), path("b"))]);
    }
}
