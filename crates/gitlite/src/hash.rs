//! SHA-1 (from scratch) and [`ObjectId`] content addresses.
//!
//! Git addresses every object by the SHA-1 of its canonical encoding; we do
//! the same so `gitlite` exhibits the property the citation model relies on:
//! *identical content ⇒ identical id*, across repositories. (SHA-1 is used
//! for content addressing, exactly as in Git — not as a security boundary.)

use std::fmt;

/// A 20-byte object identifier (SHA-1 of the object's canonical bytes).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjectId(pub [u8; 20]);

impl ObjectId {
    /// The id consisting of all zero bytes; used as a sentinel ("no id").
    pub const ZERO: ObjectId = ObjectId([0; 20]);

    /// Hashes `data` directly (no object-type framing).
    pub fn hash_bytes(data: &[u8]) -> ObjectId {
        let mut h = Sha1::new();
        h.update(data);
        ObjectId(h.finalize())
    }

    /// Renders the full 40-char lowercase hex form.
    pub fn to_hex(self) -> String {
        let mut s = String::with_capacity(40);
        for b in self.0 {
            s.push(char::from_digit((b >> 4) as u32, 16).unwrap());
            s.push(char::from_digit((b & 0xF) as u32, 16).unwrap());
        }
        s
    }

    /// The 7-char abbreviated form Git shows by default (Listing 1 uses
    /// abbreviated commit ids such as `bbd248a`).
    pub fn short(self) -> String {
        self.to_hex()[..7].to_owned()
    }

    /// Parses a 40-char hex string.
    pub fn from_hex(s: &str) -> Option<ObjectId> {
        if s.len() != 40 {
            return None;
        }
        let mut out = [0u8; 20];
        for (i, chunk) in s.as_bytes().chunks(2).enumerate() {
            let hi = (chunk[0] as char).to_digit(16)?;
            let lo = (chunk[1] as char).to_digit(16)?;
            out[i] = ((hi << 4) | lo) as u8;
        }
        Some(ObjectId(out))
    }
}

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

impl fmt::Debug for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ObjectId({})", self.short())
    }
}

/// Incremental SHA-1 hasher (FIPS 180-1).
pub struct Sha1 {
    state: [u32; 5],
    len_bits: u64,
    buf: [u8; 64],
    buf_len: usize,
}

impl Default for Sha1 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha1 {
    /// Creates a hasher in the initial state.
    pub fn new() -> Self {
        Sha1 {
            state: [0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0],
            len_bits: 0,
            buf: [0; 64],
            buf_len: 0,
        }
    }

    /// Feeds `data` into the hash.
    pub fn update(&mut self, mut data: &[u8]) {
        self.len_bits = self.len_bits.wrapping_add((data.len() as u64) * 8);
        if self.buf_len > 0 {
            let need = 64 - self.buf_len;
            let take = need.min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        while data.len() >= 64 {
            let mut block = [0u8; 64];
            block.copy_from_slice(&data[..64]);
            self.compress(&block);
            data = &data[64..];
        }
        if !data.is_empty() {
            self.buf[..data.len()].copy_from_slice(data);
            self.buf_len = data.len();
        }
    }

    /// Consumes the hasher and returns the 20-byte digest.
    pub fn finalize(mut self) -> [u8; 20] {
        let len_bits = self.len_bits;
        // Padding: 0x80, zeros, then the 64-bit big-endian bit length.
        self.update_padding(0x80);
        while self.buf_len != 56 {
            self.update_padding(0x00);
        }
        let len_bytes = len_bits.to_be_bytes();
        for b in len_bytes {
            self.update_padding(b);
        }
        debug_assert_eq!(self.buf_len, 0);
        let mut out = [0u8; 20];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    /// Pushes one padding byte without counting it toward the message length.
    fn update_padding(&mut self, byte: u8) {
        self.buf[self.buf_len] = byte;
        self.buf_len += 1;
        if self.buf_len == 64 {
            let block = self.buf;
            self.compress(&block);
            self.buf_len = 0;
        }
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 80];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for i in 16..80 {
            w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
        }
        let [mut a, mut b, mut c, mut d, mut e] = self.state;
        for (i, &wi) in w.iter().enumerate() {
            let (f, k) = match i {
                0..=19 => ((b & c) | (!b & d), 0x5A827999),
                20..=39 => (b ^ c ^ d, 0x6ED9EBA1),
                40..=59 => ((b & c) | (b & d) | (c & d), 0x8F1BBCDC),
                _ => (b ^ c ^ d, 0xCA62C1D6),
            };
            let tmp = a
                .rotate_left(5)
                .wrapping_add(f)
                .wrapping_add(e)
                .wrapping_add(k)
                .wrapping_add(wi);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = tmp;
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(data: &[u8]) -> String {
        ObjectId::hash_bytes(data).to_hex()
    }

    /// Known-answer tests from FIPS 180-1 / RFC 3174.
    #[test]
    fn sha1_test_vectors() {
        assert_eq!(hex(b""), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
        assert_eq!(hex(b"abc"), "a9993e364706816aba3e25717850c26c9cd0d89d");
        assert_eq!(
            hex(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        );
        assert_eq!(
            hex(b"The quick brown fox jumps over the lazy dog"),
            "2fd4e1c67a2d28fced849ee1bb76e7391b93eb12"
        );
    }

    #[test]
    fn sha1_million_a() {
        let mut h = Sha1::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&chunk);
        }
        let id = ObjectId(h.finalize());
        assert_eq!(id.to_hex(), "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
    }

    #[test]
    fn incremental_equals_oneshot() {
        let data: Vec<u8> = (0u32..10_000).map(|i| (i % 251) as u8).collect();
        // Hash in awkward chunk sizes crossing block boundaries.
        for chunk_size in [1, 7, 63, 64, 65, 127, 1000] {
            let mut h = Sha1::new();
            for c in data.chunks(chunk_size) {
                h.update(c);
            }
            assert_eq!(
                ObjectId(h.finalize()),
                ObjectId::hash_bytes(&data),
                "chunk {chunk_size}"
            );
        }
    }

    #[test]
    fn git_blob_framing_matches_real_git() {
        // `echo -n 'hello' | git hash-object --stdin` == b6fc4c620b67d95f953a5c1c1230aaab5db5a1b0
        let mut h = Sha1::new();
        h.update(b"blob 5\0hello");
        assert_eq!(
            ObjectId(h.finalize()).to_hex(),
            "b6fc4c620b67d95f953a5c1c1230aaab5db5a1b0"
        );
    }

    #[test]
    fn hex_round_trip() {
        let id = ObjectId::hash_bytes(b"x");
        assert_eq!(ObjectId::from_hex(&id.to_hex()), Some(id));
        assert_eq!(ObjectId::from_hex("xyz"), None);
        assert_eq!(ObjectId::from_hex(&"g".repeat(40)), None);
        assert_eq!(id.short().len(), 7);
    }

    #[test]
    fn zero_sentinel() {
        assert_eq!(ObjectId::ZERO.to_hex(), "0".repeat(40));
    }
}
