//! Repository-to-repository object transfer: clone, fetch and push.
//!
//! These are the primitives under the paper's hosted-platform operations:
//! `ForkCite` clones a repository with its history; the local tool's final
//! step "push\[es\] the local copy (which contains citation.cite) to the
//! remote repository" (§3).

use crate::error::{GitError, Result};
use crate::hash::ObjectId;
use crate::repo::Repository;
use crate::store::ObjectStore;
use std::collections::HashSet;

/// Copies every object reachable from `roots` that `dst` is missing.
/// Returns how many objects were transferred. Traversal stops at objects
/// the destination already has (their closures are complete by
/// construction), which is what makes incremental fetch cheap.
///
/// The whole batch is inserted in one [`ObjectStore::put_many`] call, so
/// backends amortize per-insert overhead; and because the traversal
/// already knows each object's id, no object is re-hashed.
pub fn transfer_objects<A: ObjectStore + ?Sized, B: ObjectStore + ?Sized>(
    src: &A,
    dst: &mut B,
    roots: &[ObjectId],
) -> Result<usize> {
    let mut seen: HashSet<ObjectId> = HashSet::new();
    let mut stack: Vec<ObjectId> = roots.to_vec();
    let mut batch: Vec<(ObjectId, std::sync::Arc<crate::object::Object>)> = Vec::new();
    while let Some(id) = stack.pop() {
        if !seen.insert(id) || dst.contains(id) {
            continue;
        }
        let obj = src.get(id)?;
        match &*obj {
            crate::object::Object::Blob(_) => {}
            crate::object::Object::Tree(t) => {
                for (_, e) in t.iter() {
                    stack.push(e.id);
                }
            }
            crate::object::Object::Commit(c) => {
                stack.push(c.tree);
                for p in &c.parents {
                    stack.push(*p);
                }
            }
        }
        batch.push((id, obj));
    }
    let moved = batch.len();
    dst.put_many(batch);
    Ok(moved)
}

/// Clones `src` in full (all branches and their histories) into a new
/// repository named `name`. The clone's HEAD checks out the same branch as
/// the source when possible, else the default branch.
pub fn clone_repository(src: &Repository, name: impl Into<String>) -> Result<Repository> {
    clone_repository_into(src, name, Box::new(crate::store::MemStore::new()))
}

/// [`clone_repository`] onto a caller-supplied object-store backend, so a
/// clone can be durable or cached from birth.
pub fn clone_repository_into(
    src: &Repository,
    name: impl Into<String>,
    store: Box<dyn ObjectStore>,
) -> Result<Repository> {
    let mut dst = Repository::init_with(name, store);
    let roots: Vec<ObjectId> = src.branches().map(|(_, tip)| tip).collect();
    transfer_objects(src.odb(), dst.odb_mut(), &roots)?;
    for (branch, tip) in src.branches() {
        dst.set_branch(branch, tip)?;
    }
    let branch = src
        .current_branch()
        .filter(|b| dst.has_branch(b))
        .map(str::to_owned)
        .or_else(|| dst.branches().next().map(|(b, _)| b.to_owned()));
    if let Some(b) = branch {
        dst.checkout_branch(&b)?;
    }
    Ok(dst)
}

/// Fetches `branch` from `src` into `dst`'s object store (no ref update).
/// Returns the fetched tip.
pub fn fetch(dst: &mut Repository, src: &Repository, branch: &str) -> Result<ObjectId> {
    let tip = src.branch_tip(branch)?;
    transfer_objects(src.odb(), dst.odb_mut(), &[tip])?;
    Ok(tip)
}

/// Pushes `src_branch` of `src` to `dst_branch` of `dst`.
///
/// Follows Git's rules: creating a new branch is always allowed; updating
/// an existing branch requires a fast-forward unless `force` is set.
/// Returns the new tip of the destination branch.
pub fn push(
    src: &Repository,
    dst: &mut Repository,
    src_branch: &str,
    dst_branch: &str,
    force: bool,
) -> Result<ObjectId> {
    let new_tip = src.branch_tip(src_branch)?;
    transfer_objects(src.odb(), dst.odb_mut(), &[new_tip])?;
    if let Ok(old_tip) = dst.branch_tip(dst_branch) {
        let ff = dst.is_ancestor(old_tip, new_tip)?;
        if !ff && !force {
            return Err(GitError::NonFastForward {
                branch: dst_branch.to_owned(),
            });
        }
    }
    dst.set_branch(dst_branch, new_tip)?;
    // Keep the destination's checkout in sync when it is on that branch
    // (hosted repositories always serve from their branch tips).
    if dst.current_branch() == Some(dst_branch) {
        dst.checkout_branch(dst_branch)?;
    }
    Ok(new_tip)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::Signature;
    use crate::path::path;
    use crate::store::Odb;

    fn sig(n: &str, t: i64) -> Signature {
        Signature::new(n, format!("{n}@x"), t)
    }

    fn seeded_repo() -> Repository {
        let mut r = Repository::init("origin");
        r.worktree_mut()
            .write(&path("a.txt"), &b"one\n"[..])
            .unwrap();
        r.commit(sig("alice", 1), "c1").unwrap();
        r.worktree_mut()
            .write(&path("b.txt"), &b"two\n"[..])
            .unwrap();
        r.commit(sig("alice", 2), "c2").unwrap();
        r
    }

    #[test]
    fn clone_copies_history_and_checkout() {
        let src = seeded_repo();
        let clone = clone_repository(&src, "fork").unwrap();
        assert_eq!(clone.name(), "fork");
        assert_eq!(
            clone.branch_tip("main").unwrap(),
            src.branch_tip("main").unwrap()
        );
        assert_eq!(clone.log_head().unwrap(), src.log_head().unwrap());
        assert_eq!(clone.worktree().read_text(&path("a.txt")).unwrap(), "one\n");
        // Objects deduplicate: same count.
        assert_eq!(
            clone.odb().len(),
            src.odb()
                .reachable_closure(&[src.branch_tip("main").unwrap()])
                .unwrap()
                .len()
        );
    }

    #[test]
    fn clone_copies_all_branches() {
        let mut src = seeded_repo();
        src.create_branch("dev").unwrap();
        src.checkout_branch("dev").unwrap();
        src.worktree_mut()
            .write(&path("d.txt"), &b"dev\n"[..])
            .unwrap();
        src.commit(sig("bob", 3), "dev work").unwrap();
        let clone = clone_repository(&src, "fork").unwrap();
        assert!(clone.has_branch("dev"));
        assert_eq!(
            clone.branch_tip("dev").unwrap(),
            src.branch_tip("dev").unwrap()
        );
        // Clone follows the source's checked-out branch.
        assert_eq!(clone.current_branch(), Some("dev"));
    }

    #[test]
    fn fetch_transfers_missing_objects_only() {
        let src = seeded_repo();
        let mut dst = Repository::init("local");
        let tip = fetch(&mut dst, &src, "main").unwrap();
        assert!(dst.odb().contains(tip));
        // Second fetch transfers nothing new.
        let before = dst.odb().len();
        fetch(&mut dst, &src, "main").unwrap();
        assert_eq!(dst.odb().len(), before);
    }

    #[test]
    fn push_creates_branch_on_remote() {
        let local = seeded_repo();
        let mut remote = Repository::init("origin");
        let tip = push(&local, &mut remote, "main", "main", false).unwrap();
        assert_eq!(remote.branch_tip("main").unwrap(), tip);
    }

    #[test]
    fn push_fast_forward_succeeds() {
        let mut local = seeded_repo();
        let mut remote = clone_repository(&local, "origin").unwrap();
        local
            .worktree_mut()
            .write(&path("c.txt"), &b"three\n"[..])
            .unwrap();
        let new_tip = local.commit(sig("alice", 3), "c3").unwrap();
        let pushed = push(&local, &mut remote, "main", "main", false).unwrap();
        assert_eq!(pushed, new_tip);
        assert_eq!(remote.branch_tip("main").unwrap(), new_tip);
        // Remote's checkout follows since it is on main.
        assert!(remote.worktree().is_file(&path("c.txt")));
    }

    #[test]
    fn push_non_fast_forward_rejected_then_forced() {
        let base = seeded_repo();
        let mut remote = clone_repository(&base, "origin").unwrap();
        // Remote gains its own commit.
        remote
            .worktree_mut()
            .write(&path("r.txt"), &b"remote\n"[..])
            .unwrap();
        remote.commit(sig("carol", 3), "remote work").unwrap();
        // Local diverges.
        let mut local = clone_repository(&base, "local").unwrap();
        local
            .worktree_mut()
            .write(&path("l.txt"), &b"local\n"[..])
            .unwrap();
        let local_tip = local.commit(sig("alice", 4), "local work").unwrap();
        let err = push(&local, &mut remote, "main", "main", false).unwrap_err();
        assert_eq!(
            err,
            GitError::NonFastForward {
                branch: "main".into()
            }
        );
        // Forced push moves the ref anyway.
        let pushed = push(&local, &mut remote, "main", "main", true).unwrap();
        assert_eq!(pushed, local_tip);
        assert_eq!(remote.branch_tip("main").unwrap(), local_tip);
    }

    #[test]
    fn push_missing_branch_errors() {
        let local = seeded_repo();
        let mut remote = Repository::init("origin");
        assert!(matches!(
            push(&local, &mut remote, "nope", "main", false),
            Err(GitError::BranchNotFound(_))
        ));
    }

    #[test]
    fn transfer_detects_missing_source_objects() {
        let src = Odb::new();
        let mut dst = Odb::new();
        let bogus = ObjectId::hash_bytes(b"bogus");
        assert!(matches!(
            transfer_objects(&src, &mut dst, &[bogus]),
            Err(GitError::ObjectNotFound(_))
        ));
    }
}
