//! [`Repository`] — the top-level VCS handle: object database, branches,
//! HEAD and a working tree.
//!
//! A repository here is exactly the paper's *project repository*: "a
//! directed acyclic graph of project versions", each version "a rooted tree
//! whose interior nodes are directories and leaves are files" (§2). Commits
//! are the versions, branches name DAG heads, and the worktree is the
//! mutable copy from which new versions are created.

use crate::error::{GitError, Result};
use crate::hash::ObjectId;
use crate::object::{Commit, Object, Signature};
use crate::path::RepoPath;
use crate::snapshot::{flatten_tree, read_tree, resolve_path, write_tree};
use crate::store::{MemStore, ObjectStore};
use crate::worktree::WorkTree;
use bytes::Bytes;
use std::collections::{BTreeMap, BinaryHeap, HashSet};

/// Where HEAD points.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Head {
    /// On a branch that already has commits.
    Branch(String),
    /// On a branch with no commits yet (fresh repository).
    Unborn(String),
    /// Directly on a commit.
    Detached(ObjectId),
}

/// The default branch name used by [`Repository::init`].
pub const DEFAULT_BRANCH: &str = "main";

/// A version-controlled project repository.
///
/// The object database behind it is pluggable: [`Repository::init`]
/// starts on the in-memory [`MemStore`], while [`Repository::init_with`]
/// accepts any [`ObjectStore`] backend (durable, cached, ...). All
/// repository operations go through the trait, so behavior is identical
/// across backends.
#[derive(Debug, Clone)]
pub struct Repository {
    name: String,
    odb: Box<dyn ObjectStore>,
    refs: BTreeMap<String, ObjectId>,
    head: Head,
    worktree: WorkTree,
    clock: i64,
}

impl Repository {
    /// Creates an empty repository named `name`, on an unborn default
    /// branch, backed by an in-memory [`MemStore`].
    pub fn init(name: impl Into<String>) -> Self {
        Self::init_with(name, Box::new(MemStore::new()))
    }

    /// Creates an empty repository on a caller-supplied object-store
    /// backend. The store may already hold objects (e.g. a reopened
    /// [`crate::DiskStore`]); they become reachable once refs point at
    /// them.
    pub fn init_with(name: impl Into<String>, store: Box<dyn ObjectStore>) -> Self {
        Repository {
            name: name.into(),
            odb: store,
            refs: BTreeMap::new(),
            head: Head::Unborn(DEFAULT_BRANCH.to_owned()),
            worktree: WorkTree::new(),
            clock: 0,
        }
    }

    /// The repository's name (used as the project name in citations).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the repository (forks use this).
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Immutable access to the object database.
    pub fn odb(&self) -> &dyn ObjectStore {
        &*self.odb
    }

    /// Mutable access to the object database (object transfer uses this).
    pub fn odb_mut(&mut self) -> &mut dyn ObjectStore {
        &mut *self.odb
    }

    /// The working tree.
    pub fn worktree(&self) -> &WorkTree {
        &self.worktree
    }

    /// Mutable working tree (edit files between commits).
    pub fn worktree_mut(&mut self) -> &mut WorkTree {
        &mut self.worktree
    }

    /// Current HEAD.
    pub fn head(&self) -> &Head {
        &self.head
    }

    /// The branch HEAD is on, if any.
    pub fn current_branch(&self) -> Option<&str> {
        match &self.head {
            Head::Branch(b) | Head::Unborn(b) => Some(b),
            Head::Detached(_) => None,
        }
    }

    /// The commit HEAD points at.
    pub fn head_commit(&self) -> Result<ObjectId> {
        match &self.head {
            Head::Branch(b) => self
                .refs
                .get(b)
                .copied()
                .ok_or_else(|| GitError::BranchNotFound(b.clone())),
            Head::Unborn(_) => Err(GitError::EmptyRepository),
            Head::Detached(id) => Ok(*id),
        }
    }

    /// Monotonic logical clock used for default commit timestamps; callers
    /// that need real dates pass explicit [`Signature`] timestamps.
    pub fn tick(&mut self) -> i64 {
        self.clock += 1;
        self.clock
    }

    // ----- branches ---------------------------------------------------

    /// All branch names with their tips, in name order.
    pub fn branches(&self) -> impl Iterator<Item = (&str, ObjectId)> {
        self.refs.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Tip commit of a branch.
    pub fn branch_tip(&self, name: &str) -> Result<ObjectId> {
        self.refs
            .get(name)
            .copied()
            .ok_or_else(|| GitError::BranchNotFound(name.to_owned()))
    }

    /// True when the branch exists.
    pub fn has_branch(&self, name: &str) -> bool {
        self.refs.contains_key(name)
    }

    fn validate_branch_name(name: &str) -> Result<()> {
        if name.is_empty() || name.chars().any(|c| c.is_whitespace()) || name.contains('/') {
            return Err(GitError::BadBranchName(name.to_owned()));
        }
        Ok(())
    }

    /// Creates a branch at HEAD.
    pub fn create_branch(&mut self, name: &str) -> Result<()> {
        let at = self.head_commit()?;
        self.create_branch_at(name, at)
    }

    /// Creates a branch at a specific commit.
    pub fn create_branch_at(&mut self, name: &str, commit: ObjectId) -> Result<()> {
        Self::validate_branch_name(name)?;
        if self.refs.contains_key(name) {
            return Err(GitError::BranchExists(name.to_owned()));
        }
        if !self.odb.contains(commit) {
            return Err(GitError::ObjectNotFound(commit));
        }
        self.refs.insert(name.to_owned(), commit);
        Ok(())
    }

    /// Deletes a branch (HEAD must not be on it).
    pub fn delete_branch(&mut self, name: &str) -> Result<()> {
        if self.current_branch() == Some(name) {
            return Err(GitError::BadBranchName(format!("{name} is checked out")));
        }
        self.refs
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| GitError::BranchNotFound(name.to_owned()))
    }

    /// Moves a branch tip without any checks (object must exist). Remote
    /// push and fetch use this after verifying fast-forwardness themselves.
    pub fn set_branch(&mut self, name: &str, commit: ObjectId) -> Result<()> {
        Self::validate_branch_name(name)?;
        if !self.odb.contains(commit) {
            return Err(GitError::ObjectNotFound(commit));
        }
        self.refs.insert(name.to_owned(), commit);
        Ok(())
    }

    // ----- commits ------------------------------------------------------

    /// Snapshots the worktree as a new commit on the current branch.
    ///
    /// Returns [`GitError::NothingToCommit`] when the snapshot is identical
    /// to HEAD's tree (pass `allow_empty=true` via [`Repository::commit_with`]
    /// to override).
    pub fn commit(&mut self, author: Signature, message: impl Into<String>) -> Result<ObjectId> {
        self.commit_with(author, message, false)
    }

    /// [`Repository::commit`] with control over empty commits.
    pub fn commit_with(
        &mut self,
        author: Signature,
        message: impl Into<String>,
        allow_empty: bool,
    ) -> Result<ObjectId> {
        let tree = write_tree(&mut *self.odb, &self.worktree);
        let parents = match self.head_commit() {
            Ok(head) => {
                let head_tree = self.tree_of(head)?;
                if head_tree == tree && !allow_empty {
                    return Err(GitError::NothingToCommit);
                }
                vec![head]
            }
            Err(GitError::EmptyRepository) => vec![],
            Err(e) => return Err(e),
        };
        self.finish_commit(tree, parents, author, message.into())
    }

    /// Creates a merge commit with two parents from an already-built tree.
    /// The worktree is replaced with the merged tree's contents.
    pub fn commit_merge(
        &mut self,
        tree: ObjectId,
        parents: Vec<ObjectId>,
        author: Signature,
        message: impl Into<String>,
    ) -> Result<ObjectId> {
        self.worktree = read_tree(&*self.odb, tree)?;
        self.finish_commit(tree, parents, author, message.into())
    }

    fn finish_commit(
        &mut self,
        tree: ObjectId,
        parents: Vec<ObjectId>,
        author: Signature,
        message: String,
    ) -> Result<ObjectId> {
        self.clock = self.clock.max(author.timestamp);
        let commit = Commit {
            tree,
            parents,
            author,
            message,
        };
        let id = self.odb.put(Object::Commit(commit));
        match self.head.clone() {
            Head::Branch(b) | Head::Unborn(b) => {
                self.refs.insert(b.clone(), id);
                self.head = Head::Branch(b);
            }
            Head::Detached(_) => {
                self.head = Head::Detached(id);
            }
        }
        Ok(id)
    }

    /// Loads a commit object.
    pub fn commit_obj(&self, id: ObjectId) -> Result<Commit> {
        self.odb.commit(id)
    }

    // ----- checkout -----------------------------------------------------

    /// Switches HEAD to a branch and loads its tree into the worktree.
    pub fn checkout_branch(&mut self, name: &str) -> Result<()> {
        let tip = self.branch_tip(name)?;
        let tree = self.tree_of(tip)?;
        self.worktree = read_tree(&*self.odb, tree)?;
        self.head = Head::Branch(name.to_owned());
        Ok(())
    }

    /// Detaches HEAD at a commit and loads its tree into the worktree.
    pub fn checkout_commit(&mut self, id: ObjectId) -> Result<()> {
        let tree = self.tree_of(id)?;
        self.worktree = read_tree(&*self.odb, tree)?;
        self.head = Head::Detached(id);
        Ok(())
    }

    // ----- history ------------------------------------------------------

    /// Commits reachable from `from`, newest first (by timestamp, ties by
    /// id for determinism).
    ///
    /// Served from the store's commit-graph when it covers `from`
    /// (positions and record timestamps only — no commit is decoded);
    /// otherwise a decode walk that fetches each commit exactly once.
    pub fn log(&self, from: ObjectId) -> Result<Vec<ObjectId>> {
        if let Some(graph) = self.odb.commit_graph() {
            if let Some(pos) = graph.lookup(from) {
                crate::metrics::count_walk(true);
                return Ok(graph.log(pos));
            }
        }
        crate::metrics::count_walk(false);
        self.log_decode(from)
    }

    /// Decode-walk reference for [`Repository::log`]. Each heap entry
    /// carries the commit's `(timestamp, parents)` from the single fetch
    /// made when it was first discovered, so no commit is decoded twice.
    fn log_decode(&self, from: ObjectId) -> Result<Vec<ObjectId>> {
        struct Entry(i64, ObjectId, Vec<ObjectId>);
        impl PartialEq for Entry {
            fn eq(&self, other: &Self) -> bool {
                (self.0, self.1) == (other.0, other.1)
            }
        }
        impl Eq for Entry {}
        impl Ord for Entry {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                self.0.cmp(&other.0).then_with(|| self.1.cmp(&other.1))
            }
        }
        impl PartialOrd for Entry {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }
        let fetch = |id: ObjectId| -> Result<Entry> {
            let obj = self.odb.commit_ref(id)?;
            let c = obj.as_commit().expect("checked kind");
            Ok(Entry(c.author.timestamp, id, c.parents.clone()))
        };
        let mut heap = BinaryHeap::new();
        let mut seen = HashSet::new();
        heap.push(fetch(from)?);
        seen.insert(from);
        let mut out = Vec::new();
        while let Some(Entry(_, id, parents)) = heap.pop() {
            out.push(id);
            for p in parents {
                if seen.insert(p) {
                    heap.push(fetch(p)?);
                }
            }
        }
        Ok(out)
    }

    /// Commits reachable from HEAD, newest first.
    pub fn log_head(&self) -> Result<Vec<ObjectId>> {
        self.log(self.head_commit()?)
    }

    /// The first-parent chain from `from` back to a root commit, `from`
    /// first — the spine audit scans walk (`git log --first-parent`).
    /// Graph-served when covered; a per-commit decode walk otherwise.
    pub fn first_parent_chain(&self, from: ObjectId) -> Result<Vec<ObjectId>> {
        if let Some(graph) = self.odb.commit_graph() {
            if let Some(pos) = graph.lookup(from) {
                crate::metrics::count_walk(true);
                return Ok(graph.first_parent_chain(pos));
            }
        }
        crate::metrics::count_walk(false);
        let mut out = Vec::new();
        let mut cursor = Some(from);
        while let Some(id) = cursor {
            out.push(id);
            let obj = self.odb.commit_ref(id)?;
            cursor = obj
                .as_commit()
                .expect("checked kind")
                .parents
                .first()
                .copied();
        }
        Ok(out)
    }

    /// Root tree id of a commit (graph record when covered, a no-clone
    /// fetch otherwise).
    pub fn tree_of(&self, commit: ObjectId) -> Result<ObjectId> {
        if let Some(graph) = self.odb.commit_graph() {
            if let Some(pos) = graph.lookup(commit) {
                return Ok(graph.tree_of(pos));
            }
        }
        let obj = self.odb.commit_ref(commit)?;
        Ok(obj.as_commit().expect("checked kind").tree)
    }

    /// Flattened `path → blob id` listing of a commit's tree.
    pub fn snapshot(&self, commit: ObjectId) -> Result<BTreeMap<RepoPath, ObjectId>> {
        flatten_tree(&*self.odb, self.tree_of(commit)?)
    }

    /// Reads a file's bytes as of a commit.
    pub fn file_at(&self, commit: ObjectId, path: &RepoPath) -> Result<Bytes> {
        let tree = self.tree_of(commit)?;
        match resolve_path(&*self.odb, tree, path)? {
            Some((crate::object::EntryMode::File, id)) => self.odb.blob_data(id),
            Some(_) => Err(GitError::NotAFile(path.clone())),
            None => Err(GitError::FileNotFound(path.clone())),
        }
    }

    /// True when `path` exists (as file or directory) in `commit`'s tree.
    pub fn path_exists_at(&self, commit: ObjectId, path: &RepoPath) -> Result<bool> {
        let tree = self.tree_of(commit)?;
        Ok(resolve_path(&*self.odb, tree, path)?.is_some())
    }

    /// Asks the commit-graph's changed-path Bloom filter whether `path`
    /// changed between `commit` and its **first parent**.
    /// [`crate::graph::PathChange::No`] is definitive and lets a
    /// path-limited walk skip the commit without touching trees;
    /// `Maybe`/`Absent` mean "do the exact check". Counts Bloom metrics
    /// ([`crate::metrics`]): a `No` is a skip; callers that go on to run
    /// the exact check report its outcome via
    /// [`Repository::count_bloom_outcome`].
    pub fn path_changed_hint(&self, commit: ObjectId, path: &RepoPath) -> crate::graph::PathChange {
        let hint = self
            .odb
            .commit_graph()
            .and_then(|graph| {
                graph
                    .lookup(commit)
                    .map(|pos| graph.path_changed(pos, &path.to_string()))
            })
            .unwrap_or(crate::graph::PathChange::Absent);
        if hint == crate::graph::PathChange::No {
            crate::metrics::BLOOM_SKIPS.inc();
        }
        hint
    }

    /// Records the exact-check outcome after a
    /// [`Repository::path_changed_hint`] returned `Maybe`: a real change
    /// is a Bloom hit, no change is a false positive.
    pub fn count_bloom_outcome(&self, really_changed: bool) {
        if really_changed {
            crate::metrics::BLOOM_HITS.inc();
        } else {
            crate::metrics::BLOOM_FALSE_POSITIVES.inc();
        }
    }

    /// True when `ancestor` is reachable from `descendant` (or equal):
    /// the fast-forward test used by push.
    ///
    /// When the commit-graph covers `descendant` the answer comes from a
    /// generation-pruned graph walk; an `ancestor` absent from the graph
    /// is then immediately `false` (the graph is closed under parents, so
    /// every true ancestor of a covered commit is covered too).
    pub fn is_ancestor(&self, ancestor: ObjectId, descendant: ObjectId) -> Result<bool> {
        if ancestor == descendant {
            return Ok(true);
        }
        if let Some(graph) = self.odb.commit_graph() {
            if let Some(desc) = graph.lookup(descendant) {
                crate::metrics::count_walk(true);
                return Ok(match graph.lookup(ancestor) {
                    Some(anc) => graph.is_ancestor(anc, desc),
                    None => false,
                });
            }
        }
        crate::metrics::count_walk(false);
        let mut stack = vec![descendant];
        let mut seen = HashSet::new();
        while let Some(id) = stack.pop() {
            if !seen.insert(id) {
                continue;
            }
            let obj = self.odb.commit_ref(id)?;
            for &p in &obj.as_commit().expect("checked kind").parents {
                if p == ancestor {
                    return Ok(true);
                }
                stack.push(p);
            }
        }
        Ok(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::path::path;

    fn sig(name: &str, t: i64) -> Signature {
        Signature::new(name, format!("{name}@example.org"), t)
    }

    fn repo_with_commit() -> (Repository, ObjectId) {
        let mut r = Repository::init("proj");
        r.worktree_mut().write(&path("a.txt"), &b"one"[..]).unwrap();
        let c = r.commit(sig("alice", 1), "c1").unwrap();
        (r, c)
    }

    #[test]
    fn init_is_unborn() {
        let r = Repository::init("p");
        assert_eq!(r.current_branch(), Some("main"));
        assert_eq!(r.head_commit().unwrap_err(), GitError::EmptyRepository);
        assert_eq!(r.name(), "p");
    }

    #[test]
    fn first_commit_births_branch() {
        let (r, c) = repo_with_commit();
        assert_eq!(r.head(), &Head::Branch("main".into()));
        assert_eq!(r.head_commit().unwrap(), c);
        assert_eq!(r.branch_tip("main").unwrap(), c);
        let commit = r.commit_obj(c).unwrap();
        assert!(commit.parents.is_empty());
        assert_eq!(commit.message, "c1");
    }

    #[test]
    fn second_commit_links_parent() {
        let (mut r, c1) = repo_with_commit();
        r.worktree_mut().write(&path("b.txt"), &b"two"[..]).unwrap();
        let c2 = r.commit(sig("alice", 2), "c2").unwrap();
        assert_eq!(r.commit_obj(c2).unwrap().parents, vec![c1]);
    }

    #[test]
    fn empty_commit_rejected_unless_allowed() {
        let (mut r, _) = repo_with_commit();
        assert_eq!(
            r.commit(sig("alice", 2), "noop").unwrap_err(),
            GitError::NothingToCommit
        );
        let c = r.commit_with(sig("alice", 2), "forced", true).unwrap();
        assert_eq!(r.head_commit().unwrap(), c);
    }

    #[test]
    fn branch_create_checkout_delete() {
        let (mut r, c1) = repo_with_commit();
        r.create_branch("dev").unwrap();
        assert_eq!(r.branch_tip("dev").unwrap(), c1);
        assert_eq!(
            r.create_branch("dev").unwrap_err(),
            GitError::BranchExists("dev".into())
        );
        r.checkout_branch("dev").unwrap();
        r.worktree_mut().write(&path("dev.txt"), &b"d"[..]).unwrap();
        let c2 = r.commit(sig("bob", 2), "on dev").unwrap();
        assert_eq!(r.branch_tip("dev").unwrap(), c2);
        assert_eq!(r.branch_tip("main").unwrap(), c1);
        // main's worktree does not see dev's file after checkout.
        r.checkout_branch("main").unwrap();
        assert!(!r.worktree().is_file(&path("dev.txt")));
        // Deleting the checked-out branch is refused.
        assert!(r.delete_branch("main").is_err());
        r.delete_branch("dev").unwrap();
        assert!(!r.has_branch("dev"));
    }

    #[test]
    fn bad_branch_names_rejected() {
        let (mut r, _) = repo_with_commit();
        for bad in ["", "a b", "x/y"] {
            assert!(matches!(
                r.create_branch(bad),
                Err(GitError::BadBranchName(_))
            ));
        }
    }

    #[test]
    fn detached_head() {
        let (mut r, c1) = repo_with_commit();
        r.worktree_mut().write(&path("b.txt"), &b"2"[..]).unwrap();
        let c2 = r.commit(sig("alice", 2), "c2").unwrap();
        r.checkout_commit(c1).unwrap();
        assert_eq!(r.current_branch(), None);
        assert_eq!(r.head_commit().unwrap(), c1);
        assert!(!r.worktree().is_file(&path("b.txt")));
        // Committing while detached moves the detached head only.
        r.worktree_mut().write(&path("c.txt"), &b"3"[..]).unwrap();
        let c3 = r.commit(sig("alice", 3), "detached").unwrap();
        assert_eq!(r.head(), &Head::Detached(c3));
        assert_eq!(r.branch_tip("main").unwrap(), c2);
    }

    #[test]
    fn log_orders_newest_first() {
        let (mut r, c1) = repo_with_commit();
        r.worktree_mut().write(&path("b.txt"), &b"2"[..]).unwrap();
        let c2 = r.commit(sig("alice", 5), "c2").unwrap();
        r.worktree_mut().write(&path("c.txt"), &b"3"[..]).unwrap();
        let c3 = r.commit(sig("alice", 9), "c3").unwrap();
        assert_eq!(r.log_head().unwrap(), vec![c3, c2, c1]);
    }

    #[test]
    fn file_at_and_path_exists() {
        let (mut r, c1) = repo_with_commit();
        r.worktree_mut()
            .write(&path("dir/b.txt"), &b"2"[..])
            .unwrap();
        let c2 = r.commit(sig("alice", 2), "c2").unwrap();
        assert_eq!(r.file_at(c1, &path("a.txt")).unwrap().as_ref(), b"one");
        assert!(matches!(
            r.file_at(c1, &path("dir/b.txt")),
            Err(GitError::FileNotFound(_))
        ));
        assert!(r.path_exists_at(c2, &path("dir")).unwrap());
        assert!(matches!(
            r.file_at(c2, &path("dir")),
            Err(GitError::NotAFile(_))
        ));
        assert_eq!(r.snapshot(c2).unwrap().len(), 2);
    }

    #[test]
    fn is_ancestor_walks_dag() {
        let (mut r, c1) = repo_with_commit();
        r.worktree_mut().write(&path("b.txt"), &b"2"[..]).unwrap();
        let c2 = r.commit(sig("a", 2), "c2").unwrap();
        assert!(r.is_ancestor(c1, c2).unwrap());
        assert!(!r.is_ancestor(c2, c1).unwrap());
        assert!(r.is_ancestor(c2, c2).unwrap());
    }

    #[test]
    fn set_branch_requires_object() {
        let (mut r, c1) = repo_with_commit();
        assert!(r.set_branch("x", c1).is_ok());
        assert!(matches!(
            r.set_branch("y", ObjectId::hash_bytes(b"no")),
            Err(GitError::ObjectNotFound(_))
        ));
    }
}
