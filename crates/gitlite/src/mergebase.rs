//! Merge-base computation: the best common ancestor of two commits.
//!
//! Two execution paths, one answer. When the store carries a commit-graph
//! ([`crate::graph::CommitGraph`]) covering both tips, the base is found
//! by a generation-bounded priority walk over the index — near O(output),
//! no store fetches, no ancestor sets. Otherwise the decode walk below
//! materializes both ancestor sets and picks the best common commit; it
//! is the always-correct reference the graph path is property-tested
//! against.

use crate::error::Result;
use crate::hash::ObjectId;
use crate::store::ObjectStore;
use std::collections::{HashMap, HashSet};

/// Finds the *best* common ancestor of `a` and `b`: among all common
/// ancestors, the one with the greatest generation number (longest distance
/// from a root commit), breaking ties by timestamp then id so the result is
/// deterministic. Returns `None` for unrelated histories.
///
/// Served from the store's commit-graph when one covers both tips
/// ([`crate::graph::CommitGraph::merge_base`]); falls back to the
/// decode walk otherwise.
pub fn merge_base<S: ObjectStore + ?Sized>(
    odb: &S,
    a: ObjectId,
    b: ObjectId,
) -> Result<Option<ObjectId>> {
    if a == b {
        return Ok(Some(a));
    }
    if let Some(graph) = odb.commit_graph() {
        if let (Some(pa), Some(pb)) = (graph.lookup(a), graph.lookup(b)) {
            crate::metrics::count_walk(true);
            return Ok(graph.merge_base(pa, pb));
        }
    }
    crate::metrics::count_walk(false);
    merge_base_decode(odb, a, b)
}

/// The decode-walk reference implementation of [`merge_base`]: fetches
/// and decodes commits, materializes both ancestor sets, and selects the
/// common ancestor with the greatest `(generation, timestamp, id)`.
/// Always correct on any store; the graph path must match it exactly
/// (see the equivalence proptests in `tests/graph.rs`).
pub fn merge_base_decode<S: ObjectStore + ?Sized>(
    odb: &S,
    a: ObjectId,
    b: ObjectId,
) -> Result<Option<ObjectId>> {
    if a == b {
        return Ok(Some(a));
    }
    let ancestors_a = ancestor_set_decode(odb, a)?;
    if ancestors_a.contains(&b) {
        return Ok(Some(b));
    }
    let ancestors_b = ancestor_set_decode(odb, b)?;
    if ancestors_b.contains(&a) {
        return Ok(Some(a));
    }
    let common: Vec<ObjectId> = ancestors_a.intersection(&ancestors_b).copied().collect();
    if common.is_empty() {
        return Ok(None);
    }
    let gens = generations(odb, &common)?;
    let mut best: Option<(u64, i64, ObjectId)> = None;
    for id in common {
        let gen = gens[&id];
        let obj = odb.commit_ref(id)?;
        let ts = obj.as_commit().expect("checked kind").author.timestamp;
        let key = (gen, ts, id);
        if best.as_ref().map(|b| key > *b).unwrap_or(true) {
            best = Some(key);
        }
    }
    Ok(best.map(|(_, _, id)| id))
}

/// All commits reachable from `from` (inclusive). Walks the commit-graph
/// when it covers `from`; decodes otherwise.
pub fn ancestor_set<S: ObjectStore + ?Sized>(odb: &S, from: ObjectId) -> Result<HashSet<ObjectId>> {
    if let Some(graph) = odb.commit_graph() {
        if let Some(pos) = graph.lookup(from) {
            crate::metrics::count_walk(true);
            return Ok(graph.ancestor_set(pos));
        }
    }
    crate::metrics::count_walk(false);
    ancestor_set_decode(odb, from)
}

/// Decode-walk reference for [`ancestor_set`]. Each commit is fetched and
/// read in place (no clone) exactly once.
pub fn ancestor_set_decode<S: ObjectStore + ?Sized>(
    odb: &S,
    from: ObjectId,
) -> Result<HashSet<ObjectId>> {
    let mut seen = HashSet::new();
    let mut stack = vec![from];
    while let Some(id) = stack.pop() {
        if !seen.insert(id) {
            continue;
        }
        let obj = odb.commit_ref(id)?;
        stack.extend_from_slice(&obj.as_commit().expect("checked kind").parents);
    }
    Ok(seen)
}

/// Generation numbers (longest path to a root commit) for `ids` and all of
/// their ancestors. Iterative post-order to avoid recursion on deep
/// histories.
fn generations<S: ObjectStore + ?Sized>(
    odb: &S,
    ids: &[ObjectId],
) -> Result<HashMap<ObjectId, u64>> {
    let mut gen: HashMap<ObjectId, u64> = HashMap::new();
    for &start in ids {
        if gen.contains_key(&start) {
            continue;
        }
        let mut stack: Vec<(ObjectId, bool)> = vec![(start, false)];
        while let Some((id, expanded)) = stack.pop() {
            if gen.contains_key(&id) {
                continue;
            }
            let obj = odb.commit_ref(id)?;
            let parents = &obj.as_commit().expect("checked kind").parents;
            if expanded {
                let g = parents
                    .iter()
                    .map(|p| gen.get(p).copied().unwrap_or(0) + 1)
                    .max()
                    .unwrap_or(0);
                gen.insert(id, g);
            } else {
                stack.push((id, true));
                for &p in parents {
                    if !gen.contains_key(&p) {
                        stack.push((p, false));
                    }
                }
            }
        }
    }
    Ok(gen)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::{Commit, Object, Signature, Tree};
    use crate::store::Odb;

    /// Builds a commit with the given parents; message keeps ids distinct.
    fn mk(odb: &mut Odb, msg: &str, ts: i64, parents: Vec<ObjectId>) -> ObjectId {
        let tree = odb.put(Object::Tree(Tree::new()));
        odb.put(Object::Commit(Commit {
            tree,
            parents,
            author: Signature::new("t", "t@t", ts),
            message: msg.into(),
        }))
    }

    #[test]
    fn identical_commits() {
        let mut odb = Odb::new();
        let c = mk(&mut odb, "c", 1, vec![]);
        assert_eq!(merge_base(&odb, c, c).unwrap(), Some(c));
    }

    #[test]
    fn linear_history_base_is_older() {
        let mut odb = Odb::new();
        let c1 = mk(&mut odb, "1", 1, vec![]);
        let c2 = mk(&mut odb, "2", 2, vec![c1]);
        let c3 = mk(&mut odb, "3", 3, vec![c2]);
        assert_eq!(merge_base(&odb, c3, c1).unwrap(), Some(c1));
        assert_eq!(merge_base(&odb, c1, c3).unwrap(), Some(c1));
        assert_eq!(merge_base(&odb, c2, c3).unwrap(), Some(c2));
    }

    #[test]
    fn simple_fork() {
        let mut odb = Odb::new();
        let base = mk(&mut odb, "base", 1, vec![]);
        let left = mk(&mut odb, "left", 2, vec![base]);
        let right = mk(&mut odb, "right", 3, vec![base]);
        assert_eq!(merge_base(&odb, left, right).unwrap(), Some(base));
    }

    #[test]
    fn unrelated_histories() {
        let mut odb = Odb::new();
        let a = mk(&mut odb, "a", 1, vec![]);
        let b = mk(&mut odb, "b", 2, vec![]);
        assert_eq!(merge_base(&odb, a, b).unwrap(), None);
    }

    #[test]
    fn deeper_common_ancestor_wins() {
        // base ── x ── left
        //    \     \
        //     \     right   (x reachable from both; base also common)
        let mut odb = Odb::new();
        let base = mk(&mut odb, "base", 1, vec![]);
        let x = mk(&mut odb, "x", 2, vec![base]);
        let left = mk(&mut odb, "left", 3, vec![x]);
        let right = mk(&mut odb, "right", 4, vec![x, base]);
        assert_eq!(merge_base(&odb, left, right).unwrap(), Some(x));
    }

    #[test]
    fn criss_cross_picks_deterministically() {
        // Classic criss-cross: two candidates with equal generation; the
        // tie must break deterministically (timestamp, then id).
        let mut odb = Odb::new();
        let root = mk(&mut odb, "root", 1, vec![]);
        let a = mk(&mut odb, "a", 2, vec![root]);
        let b = mk(&mut odb, "b", 3, vec![root]);
        let l = mk(&mut odb, "l", 4, vec![a, b]);
        let r = mk(&mut odb, "r", 5, vec![b, a]);
        let m1 = merge_base(&odb, l, r).unwrap().unwrap();
        let m2 = merge_base(&odb, r, l).unwrap().unwrap();
        assert_eq!(m1, m2);
        // Both a and b have generation 1; b has the later timestamp.
        assert_eq!(m1, b);
    }

    #[test]
    fn deep_history_does_not_overflow_stack() {
        let mut odb = Odb::new();
        let mut tip = mk(&mut odb, "0", 0, vec![]);
        for i in 1..5000 {
            tip = mk(&mut odb, &i.to_string(), i, vec![tip]);
        }
        let side = mk(&mut odb, "side", 5001, vec![tip]);
        let other = mk(&mut odb, "other", 5002, vec![tip]);
        assert_eq!(merge_base(&odb, side, other).unwrap(), Some(tip));
    }
}
