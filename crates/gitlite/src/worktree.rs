//! The in-memory working tree: the mutable file set a user edits between
//! commits.
//!
//! GitCite's local tool manipulates a checked-out copy of a project
//! (paper §3, "local executable tool"). `WorkTree` models that copy: a map
//! from [`RepoPath`] to file bytes, with directory-aware operations
//! (`remove_dir`, `rename`) because citation keys may name directories.

use crate::error::{GitError, Result};
use crate::path::RepoPath;
use bytes::Bytes;
use std::collections::BTreeMap;

/// A flat, ordered map of file paths to contents.
///
/// Directories exist implicitly: a directory is "present" iff some file
/// lives beneath it. That mirrors Git, which does not track empty
/// directories — and matches the paper's model where citations attach to
/// nodes of the version tree.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WorkTree {
    files: BTreeMap<RepoPath, Bytes>,
}

impl WorkTree {
    /// Creates an empty worktree.
    pub fn new() -> Self {
        WorkTree {
            files: BTreeMap::new(),
        }
    }

    /// Number of files.
    pub fn len(&self) -> usize {
        self.files.len()
    }

    /// True when there are no files.
    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }

    /// Writes (creates or replaces) a file.
    ///
    /// Fails when `path` is the root or collides with an existing
    /// file/directory of the other kind (a file where a directory exists or
    /// vice versa).
    pub fn write(&mut self, path: &RepoPath, data: impl Into<Bytes>) -> Result<()> {
        if path.is_root() {
            return Err(GitError::NotAFile(path.clone()));
        }
        // A file cannot shadow an existing directory...
        if self.is_dir(path) {
            return Err(GitError::NotAFile(path.clone()));
        }
        // ...and no ancestor of the file may be an existing file.
        for anc in path.ancestors() {
            if anc.is_root() {
                break;
            }
            if self.files.contains_key(&anc) {
                return Err(GitError::NotAFile(anc));
            }
        }
        self.files.insert(path.clone(), data.into());
        Ok(())
    }

    /// Reads a file's bytes.
    pub fn read(&self, path: &RepoPath) -> Result<&Bytes> {
        self.files
            .get(path)
            .ok_or_else(|| GitError::FileNotFound(path.clone()))
    }

    /// Reads a file as UTF-8 text (lossy).
    pub fn read_text(&self, path: &RepoPath) -> Result<String> {
        Ok(String::from_utf8_lossy(self.read(path)?).into_owned())
    }

    /// True when a file exists at `path`.
    pub fn is_file(&self, path: &RepoPath) -> bool {
        self.files.contains_key(path)
    }

    /// True when `path` is a directory, i.e. some file lives strictly below
    /// it. The root is a directory iff the tree is non-empty.
    pub fn is_dir(&self, path: &RepoPath) -> bool {
        if path.is_root() {
            return !self.files.is_empty();
        }
        if self.files.contains_key(path) {
            return false;
        }
        self.files.keys().any(|p| p.starts_with(path) && p != path)
    }

    /// True when `path` names an existing file or directory (or the root).
    pub fn exists(&self, path: &RepoPath) -> bool {
        path.is_root() || self.is_file(path) || self.is_dir(path)
    }

    /// Deletes a file. Errors when the path is not a file.
    pub fn remove_file(&mut self, path: &RepoPath) -> Result<Bytes> {
        self.files
            .remove(path)
            .ok_or_else(|| GitError::FileNotFound(path.clone()))
    }

    /// Deletes a directory subtree, returning how many files were removed.
    /// Errors when nothing exists beneath `path`.
    pub fn remove_dir(&mut self, path: &RepoPath) -> Result<usize> {
        let doomed: Vec<RepoPath> = self
            .files
            .keys()
            .filter(|p| p.starts_with(path))
            .cloned()
            .collect();
        if doomed.is_empty() {
            return Err(GitError::FileNotFound(path.clone()));
        }
        for p in &doomed {
            self.files.remove(p);
        }
        Ok(doomed.len())
    }

    /// Removes a file or an entire directory subtree, whichever `path` is.
    pub fn remove(&mut self, path: &RepoPath) -> Result<usize> {
        if self.is_file(path) {
            self.remove_file(path)?;
            Ok(1)
        } else {
            self.remove_dir(path)
        }
    }

    /// Renames/moves a file or directory subtree from `from` to `to`.
    /// Returns the individual file moves performed (old → new), which the
    /// citation layer uses to rewrite citation keys (paper §2: "if a file
    /// or directory in the active domain ... is moved or renamed then the
    /// citation function must be modified").
    pub fn rename(&mut self, from: &RepoPath, to: &RepoPath) -> Result<Vec<(RepoPath, RepoPath)>> {
        if from.is_root() {
            return Err(GitError::NotAFile(from.clone()));
        }
        if self.exists(to) {
            return Err(GitError::NotAFile(to.clone()));
        }
        if to.starts_with(from) {
            // Moving a directory inside itself.
            return Err(GitError::NotAFile(to.clone()));
        }
        if self.is_file(from) {
            let data = self.remove_file(from)?;
            self.write(to, data)?;
            return Ok(vec![(from.clone(), to.clone())]);
        }
        let movers: Vec<RepoPath> = self
            .files
            .keys()
            .filter(|p| p.starts_with(from))
            .cloned()
            .collect();
        if movers.is_empty() {
            return Err(GitError::FileNotFound(from.clone()));
        }
        let mut moves = Vec::with_capacity(movers.len());
        for old in movers {
            let new = old.rebase(from, to).expect("starts_with checked");
            let data = self.files.remove(&old).expect("present");
            self.files.insert(new.clone(), data);
            moves.push((old, new));
        }
        Ok(moves)
    }

    /// Iterates `(path, contents)` in path order.
    pub fn iter(&self) -> impl Iterator<Item = (&RepoPath, &Bytes)> {
        self.files.iter()
    }

    /// Iterates paths in order.
    pub fn paths(&self) -> impl Iterator<Item = &RepoPath> {
        self.files.keys()
    }

    /// All file paths under `prefix` (including `prefix` itself if a file).
    pub fn files_under(&self, prefix: &RepoPath) -> Vec<RepoPath> {
        self.files
            .keys()
            .filter(|p| p.starts_with(prefix))
            .cloned()
            .collect()
    }

    /// The set of directories implied by the current files (excluding root).
    pub fn directories(&self) -> Vec<RepoPath> {
        let mut dirs = std::collections::BTreeSet::new();
        for p in self.files.keys() {
            for anc in p.ancestors() {
                if !anc.is_root() {
                    dirs.insert(anc);
                }
            }
        }
        dirs.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::path::path;

    fn wt(files: &[(&str, &str)]) -> WorkTree {
        let mut w = WorkTree::new();
        for (p, c) in files {
            w.write(&path(p), c.as_bytes().to_vec()).unwrap();
        }
        w
    }

    #[test]
    fn write_read_remove() {
        let mut w = WorkTree::new();
        w.write(&path("a/b.txt"), &b"hi"[..]).unwrap();
        assert_eq!(w.read(&path("a/b.txt")).unwrap().as_ref(), b"hi");
        assert_eq!(w.read_text(&path("a/b.txt")).unwrap(), "hi");
        w.remove_file(&path("a/b.txt")).unwrap();
        assert!(w.is_empty());
        assert!(matches!(
            w.read(&path("a/b.txt")),
            Err(GitError::FileNotFound(_))
        ));
    }

    #[test]
    fn file_dir_collisions_rejected() {
        let mut w = wt(&[("a/b/c.txt", "x")]);
        // "a/b" is a directory; can't write a file there.
        assert!(w.write(&path("a/b"), &b"y"[..]).is_err());
        // "a/b/c.txt" is a file; can't create files beneath it.
        assert!(w.write(&path("a/b/c.txt/d"), &b"y"[..]).is_err());
        // Root is not writable.
        assert!(w.write(&RepoPath::root(), &b"y"[..]).is_err());
    }

    use crate::path::RepoPath;

    #[test]
    fn dir_semantics() {
        let w = wt(&[("src/main.rs", "fn main(){}"), ("README.md", "# hi")]);
        assert!(w.is_dir(&path("src")));
        assert!(!w.is_dir(&path("README.md")));
        assert!(w.is_file(&path("README.md")));
        assert!(w.exists(&path("src")));
        assert!(w.exists(&RepoPath::root()));
        assert!(!w.exists(&path("nope")));
        assert_eq!(w.directories(), vec![path("src")]);
    }

    #[test]
    fn remove_dir_subtree() {
        let mut w = wt(&[("d/a.txt", "1"), ("d/sub/b.txt", "2"), ("keep.txt", "3")]);
        assert_eq!(w.remove_dir(&path("d")).unwrap(), 2);
        assert_eq!(w.len(), 1);
        assert!(w.is_file(&path("keep.txt")));
        assert!(w.remove_dir(&path("d")).is_err());
    }

    #[test]
    fn remove_either() {
        let mut w = wt(&[("d/a.txt", "1"), ("f.txt", "2")]);
        assert_eq!(w.remove(&path("f.txt")).unwrap(), 1);
        assert_eq!(w.remove(&path("d")).unwrap(), 1);
        assert!(w.is_empty());
    }

    #[test]
    fn rename_file() {
        let mut w = wt(&[("old.txt", "data")]);
        let moves = w.rename(&path("old.txt"), &path("new/name.txt")).unwrap();
        assert_eq!(moves, vec![(path("old.txt"), path("new/name.txt"))]);
        assert_eq!(w.read_text(&path("new/name.txt")).unwrap(), "data");
        assert!(!w.is_file(&path("old.txt")));
    }

    #[test]
    fn rename_directory_subtree() {
        let mut w = wt(&[
            ("gui/a.js", "1"),
            ("gui/css/b.css", "2"),
            ("other.txt", "3"),
        ]);
        let mut moves = w.rename(&path("gui"), &path("citation/GUI")).unwrap();
        moves.sort();
        assert_eq!(
            moves,
            vec![
                (path("gui/a.js"), path("citation/GUI/a.js")),
                (path("gui/css/b.css"), path("citation/GUI/css/b.css")),
            ]
        );
        assert!(w.is_dir(&path("citation/GUI")));
        assert!(!w.exists(&path("gui")));
    }

    #[test]
    fn rename_rejects_bad_targets() {
        let mut w = wt(&[("a/f.txt", "1"), ("b.txt", "2")]);
        // Destination exists.
        assert!(w.rename(&path("a/f.txt"), &path("b.txt")).is_err());
        // Source missing.
        assert!(w.rename(&path("zzz"), &path("q")).is_err());
        // Directory into itself.
        assert!(w.rename(&path("a"), &path("a/inner")).is_err());
        // Root cannot be moved.
        assert!(w.rename(&RepoPath::root(), &path("q")).is_err());
    }

    #[test]
    fn files_under_prefix() {
        let w = wt(&[("d/a.txt", "1"), ("d/sub/b.txt", "2"), ("e.txt", "3")]);
        let mut files = w.files_under(&path("d"));
        files.sort();
        assert_eq!(files, vec![path("d/a.txt"), path("d/sub/b.txt")]);
        assert_eq!(w.files_under(&RepoPath::root()).len(), 3);
    }
}
