//! Converting between worktrees and stored tree objects.
//!
//! * [`write_tree`] — snapshot a [`WorkTree`] into the object database,
//!   returning the root tree id (the "version" of paper §2).
//! * [`flatten_tree`] — list every file `(path → blob id)` under a tree.
//! * [`read_tree`] — materialize a stored tree back into a [`WorkTree`].

use crate::error::Result;
use crate::hash::ObjectId;
use crate::object::{EntryMode, Object, Tree, TreeEntry};
use crate::path::RepoPath;
use crate::store::{ObjectStore, ObjectStoreExt};
use crate::worktree::WorkTree;
use std::collections::BTreeMap;

/// Snapshots the worktree into `odb`, creating blob and tree objects
/// bottom-up, and returns the root tree id.
pub fn write_tree<S: ObjectStore + ?Sized>(odb: &mut S, worktree: &WorkTree) -> ObjectId {
    let mut listing = BTreeMap::new();
    for (path, data) in worktree.iter() {
        let blob_id = odb.put_blob(data.clone());
        listing.insert(path.clone(), blob_id);
    }
    write_tree_from_listing(odb, &listing)
}

/// Builds tree objects from a flattened `path → blob id` listing (the blobs
/// must already exist in `odb`) and returns the root tree id. This is the
/// inverse of [`flatten_tree`] and is what the merge machinery uses to
/// construct a merged tree without materializing file bytes.
pub fn write_tree_from_listing<S: ObjectStore + ?Sized>(
    odb: &mut S,
    listing: &BTreeMap<RepoPath, ObjectId>,
) -> ObjectId {
    let mut children: BTreeMap<RepoPath, Vec<(String, EntryMode, Option<ObjectId>)>> =
        BTreeMap::new();
    children.entry(RepoPath::root()).or_default();
    for (path, blob_id) in listing {
        let name = path
            .file_name()
            .expect("files are never the root")
            .to_owned();
        let parent = path.parent().expect("files are never the root");
        children
            .entry(parent.clone())
            .or_default()
            .push((name, EntryMode::File, Some(*blob_id)));
        let mut dir = parent;
        while !dir.is_root() {
            let dir_parent = dir.parent().expect("non-root");
            let dir_name = dir.file_name().expect("non-root").to_owned();
            let siblings = children.entry(dir_parent.clone()).or_default();
            if !siblings
                .iter()
                .any(|(n, m, _)| *m == EntryMode::Dir && *n == dir_name)
            {
                siblings.push((dir_name, EntryMode::Dir, None));
            }
            children.entry(dir.clone()).or_default();
            dir = dir_parent;
        }
    }
    let mut tree_ids: BTreeMap<RepoPath, ObjectId> = BTreeMap::new();
    for (dir, entries) in children.iter().rev() {
        let mut tree = Tree::new();
        for (name, mode, blob) in entries {
            let id = match mode {
                EntryMode::File => blob.expect("file entries carry blob ids"),
                EntryMode::Dir => tree_ids[&dir.child(name)],
            };
            tree.insert(name.clone(), TreeEntry { mode: *mode, id });
        }
        tree_ids.insert(dir.clone(), odb.put(Object::Tree(tree)));
    }
    tree_ids[&RepoPath::root()]
}

/// Flattens a stored tree into `path → blob id` for every file beneath it.
/// Trees are read in place (`tree_ref`), never cloned — this runs on
/// every snapshot listing, so per-visit clones would dominate wide trees.
pub fn flatten_tree<S: ObjectStore + ?Sized>(
    odb: &S,
    root: ObjectId,
) -> Result<BTreeMap<RepoPath, ObjectId>> {
    let mut out = BTreeMap::new();
    let mut stack = vec![(RepoPath::root(), root)];
    while let Some((base, tree_id)) = stack.pop() {
        let obj = odb.tree_ref(tree_id)?;
        let tree = obj.as_tree().expect("checked kind");
        for (name, entry) in tree.iter() {
            let p = base.child(name);
            match entry.mode {
                EntryMode::File => {
                    out.insert(p, entry.id);
                }
                EntryMode::Dir => stack.push((p, entry.id)),
            }
        }
    }
    Ok(out)
}

/// Lists every directory path beneath a stored tree (excluding the root).
pub fn tree_directories<S: ObjectStore + ?Sized>(odb: &S, root: ObjectId) -> Result<Vec<RepoPath>> {
    let mut out = Vec::new();
    let mut stack = vec![(RepoPath::root(), root)];
    while let Some((base, tree_id)) = stack.pop() {
        let obj = odb.tree_ref(tree_id)?;
        let tree = obj.as_tree().expect("checked kind");
        for (name, entry) in tree.iter() {
            if entry.mode == EntryMode::Dir {
                let p = base.child(name);
                out.push(p.clone());
                stack.push((p, entry.id));
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Materializes a stored tree into a fresh worktree (checkout).
pub fn read_tree<S: ObjectStore + ?Sized>(odb: &S, root: ObjectId) -> Result<WorkTree> {
    let mut wt = WorkTree::new();
    for (path, blob_id) in flatten_tree(odb, root)? {
        let data = odb.blob_data(blob_id)?;
        wt.write(&path, data)?;
    }
    Ok(wt)
}

/// Resolves the entry at `path` within a stored tree: `Some((mode, id))`
/// when a file or directory exists there, `None` otherwise. The root
/// resolves to the tree itself.
pub fn resolve_path<S: ObjectStore + ?Sized>(
    odb: &S,
    root: ObjectId,
    path: &RepoPath,
) -> Result<Option<(EntryMode, ObjectId)>> {
    if path.is_root() {
        return Ok(Some((EntryMode::Dir, root)));
    }
    let mut current = root;
    let comps = path.components();
    for (i, name) in comps.iter().enumerate() {
        let obj = odb.tree_ref(current)?;
        let tree = obj.as_tree().expect("checked kind");
        match tree.get(name) {
            None => return Ok(None),
            Some(entry) => {
                if i + 1 == comps.len() {
                    return Ok(Some((entry.mode, entry.id)));
                }
                if entry.mode != EntryMode::Dir {
                    return Ok(None); // a file in the middle of the path
                }
                current = entry.id;
            }
        }
    }
    unreachable!("loop returns");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::path::path;
    use crate::store::Odb;

    fn sample() -> (Odb, WorkTree) {
        let mut wt = WorkTree::new();
        wt.write(&path("README.md"), &b"# p"[..]).unwrap();
        wt.write(&path("src/main.rs"), &b"fn main(){}"[..]).unwrap();
        wt.write(&path("src/util/mod.rs"), &b"pub fn u(){}"[..])
            .unwrap();
        (Odb::new(), wt)
    }

    #[test]
    fn write_then_read_round_trips() {
        let (mut odb, wt) = sample();
        let root = write_tree(&mut odb, &wt);
        let restored = read_tree(&odb, root).unwrap();
        assert_eq!(restored, wt);
    }

    #[test]
    fn snapshot_is_deterministic() {
        let (mut odb1, wt) = sample();
        let mut odb2 = Odb::new();
        assert_eq!(write_tree(&mut odb1, &wt), write_tree(&mut odb2, &wt));
    }

    #[test]
    fn empty_worktree_gives_empty_tree() {
        let mut odb = Odb::new();
        let root = write_tree(&mut odb, &WorkTree::new());
        assert_eq!(root, Tree::new().id());
        assert!(flatten_tree(&odb, root).unwrap().is_empty());
    }

    #[test]
    fn flatten_lists_all_files() {
        let (mut odb, wt) = sample();
        let root = write_tree(&mut odb, &wt);
        let flat = flatten_tree(&odb, root).unwrap();
        let paths: Vec<String> = flat.keys().map(|p| p.to_string()).collect();
        assert_eq!(paths, vec!["README.md", "src/main.rs", "src/util/mod.rs"]);
    }

    #[test]
    fn directories_listed() {
        let (mut odb, wt) = sample();
        let root = write_tree(&mut odb, &wt);
        let dirs = tree_directories(&odb, root).unwrap();
        assert_eq!(dirs, vec![path("src"), path("src/util")]);
    }

    #[test]
    fn resolve_paths() {
        let (mut odb, wt) = sample();
        let root = write_tree(&mut odb, &wt);
        let (mode, _) = resolve_path(&odb, root, &path("src")).unwrap().unwrap();
        assert_eq!(mode, EntryMode::Dir);
        let (mode, blob) = resolve_path(&odb, root, &path("src/main.rs"))
            .unwrap()
            .unwrap();
        assert_eq!(mode, EntryMode::File);
        assert_eq!(odb.blob_data(blob).unwrap().as_ref(), b"fn main(){}");
        assert!(resolve_path(&odb, root, &path("missing"))
            .unwrap()
            .is_none());
        assert!(resolve_path(&odb, root, &path("README.md/below"))
            .unwrap()
            .is_none());
        let (mode, id) = resolve_path(&odb, root, &RepoPath::root())
            .unwrap()
            .unwrap();
        assert_eq!(mode, EntryMode::Dir);
        assert_eq!(id, root);
    }

    #[test]
    fn identical_subtrees_share_objects() {
        let mut odb = Odb::new();
        let mut wt = WorkTree::new();
        wt.write(&path("a/f.txt"), &b"same"[..]).unwrap();
        wt.write(&path("b/f.txt"), &b"same"[..]).unwrap();
        let root = write_tree(&mut odb, &wt);
        // Objects: root tree, one shared subtree, one shared blob.
        assert_eq!(odb.len(), 3);
        let flat = flatten_tree(&odb, root).unwrap();
        assert_eq!(flat[&path("a/f.txt")], flat[&path("b/f.txt")]);
    }
}
