//! Three-way tree merge ("Git merge" for this substrate).
//!
//! Regular files follow Git's rules: unchanged-on-one-side changes win,
//! both-sides-changed files go through the diff3 text merge, and
//! irreconcilable regions produce conflict markers plus a [`Conflict`]
//! record. Paths listed in [`MergeOptions::exclude`] are *left out of the
//! merged tree entirely* — that is the hook the citation layer uses to keep
//! `citation.cite` away from textual merging, as §3 of the paper requires
//! ("we do not use them on citation.cite since it could leave the citation
//! function inconsistent").

use crate::error::{GitError, Result};
use crate::hash::ObjectId;
use crate::mergebase::merge_base;
use crate::object::Signature;
use crate::path::RepoPath;
use crate::repo::Repository;
use crate::snapshot::{flatten_tree, write_tree_from_listing};
use crate::store::{ObjectStore, ObjectStoreExt};
use crate::textdiff::{diff3_merge, MergeLabels};
use std::collections::{BTreeMap, BTreeSet};

/// Why a path could not be merged cleanly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConflictKind {
    /// Both sides modified the file and diff3 found overlapping edits.
    Content {
        /// Number of conflicted regions in the marked-up file.
        regions: usize,
    },
    /// One side deleted the file, the other modified it. The modified
    /// content is kept in the merged listing.
    DeleteModify {
        /// True when *ours* deleted and *theirs* modified.
        deleted_by_ours: bool,
    },
    /// Both sides added the same path with different contents.
    AddAdd,
}

/// A single conflicted path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Conflict {
    /// The conflicted path.
    pub path: RepoPath,
    /// What kind of conflict.
    pub kind: ConflictKind,
}

/// Options for [`merge_listings`] / [`Repository::merge_branch`].
#[derive(Debug, Clone, Default)]
pub struct MergeOptions {
    /// Paths excluded from the merge; they are absent from the result and
    /// produce no conflicts. The caller is responsible for re-adding them
    /// (GitCite re-adds a freshly *union-merged* `citation.cite`).
    pub exclude: Vec<RepoPath>,
}

/// Outcome of a tree-level three-way merge.
#[derive(Debug, Clone)]
pub struct TreeMerge {
    /// The merged `path → blob id` listing (conflicted files carry their
    /// marked-up blobs).
    pub listing: BTreeMap<RepoPath, ObjectId>,
    /// All conflicts, in path order.
    pub conflicts: Vec<Conflict>,
}

impl TreeMerge {
    /// True when no conflicts occurred.
    pub fn is_clean(&self) -> bool {
        self.conflicts.is_empty()
    }
}

/// Merges two flattened listings against a base listing.
pub fn merge_listings<S: ObjectStore + ?Sized>(
    odb: &mut S,
    base: &BTreeMap<RepoPath, ObjectId>,
    ours: &BTreeMap<RepoPath, ObjectId>,
    theirs: &BTreeMap<RepoPath, ObjectId>,
    labels: MergeLabels<'_>,
    opts: &MergeOptions,
) -> TreeMerge {
    let mut listing = BTreeMap::new();
    let mut conflicts = Vec::new();

    let mut all_paths: BTreeSet<&RepoPath> = BTreeSet::new();
    all_paths.extend(base.keys());
    all_paths.extend(ours.keys());
    all_paths.extend(theirs.keys());

    'paths: for path in all_paths {
        for ex in &opts.exclude {
            if path.starts_with(ex) {
                continue 'paths;
            }
        }
        let b = base.get(path).copied();
        let o = ours.get(path).copied();
        let t = theirs.get(path).copied();
        let chosen: Option<ObjectId> = if o == t {
            o // same content, same deletion, same addition
        } else if b == o {
            t // only theirs changed (possibly deleted)
        } else if b == t {
            o // only ours changed
        } else {
            // Genuine three-way disagreement.
            match (o, t) {
                (Some(o_id), Some(t_id)) => {
                    let base_text = match b {
                        Some(b_id) => blob_text(odb, b_id),
                        None => String::new(),
                    };
                    let ours_text = blob_text(odb, o_id);
                    let theirs_text = blob_text(odb, t_id);
                    let merged = diff3_merge(&base_text, &ours_text, &theirs_text, labels);
                    if merged.conflicts > 0 {
                        conflicts.push(Conflict {
                            path: path.clone(),
                            kind: if b.is_none() {
                                ConflictKind::AddAdd
                            } else {
                                ConflictKind::Content {
                                    regions: merged.conflicts,
                                }
                            },
                        });
                    }
                    Some(odb.put_blob(merged.text.into_bytes()))
                }
                (Some(kept), None) => {
                    conflicts.push(Conflict {
                        path: path.clone(),
                        kind: ConflictKind::DeleteModify {
                            deleted_by_ours: false,
                        },
                    });
                    Some(kept)
                }
                (None, Some(kept)) => {
                    conflicts.push(Conflict {
                        path: path.clone(),
                        kind: ConflictKind::DeleteModify {
                            deleted_by_ours: true,
                        },
                    });
                    Some(kept)
                }
                (None, None) => unreachable!("o == t case handled above"),
            }
        };
        if let Some(id) = chosen {
            listing.insert(path.clone(), id);
        }
    }

    TreeMerge { listing, conflicts }
}

fn blob_text<S: ObjectStore + ?Sized>(odb: &S, id: ObjectId) -> String {
    match odb.blob_data(id) {
        Ok(data) => String::from_utf8_lossy(&data).into_owned(),
        Err(_) => String::new(),
    }
}

/// Result of [`Repository::merge_branch`].
#[derive(Debug, Clone)]
pub enum MergeReport {
    /// The other branch was already contained in ours; nothing changed.
    AlreadyUpToDate,
    /// Our branch was fast-forwarded to the other branch's tip.
    FastForwarded(ObjectId),
    /// A merge commit was created.
    Merged(ObjectId),
    /// Conflicts: the merged tree (with conflict markers) was loaded into
    /// the worktree; the caller resolves and commits with
    /// [`Repository::commit_merge`] passing `parents`.
    Conflicted {
        /// Conflicted paths with their kinds.
        conflicts: Vec<Conflict>,
        /// The parents the resolution commit must carry.
        parents: Vec<ObjectId>,
    },
}

impl Repository {
    /// Merges `other` into the current branch — the paper's
    /// `Merge(V1, V2)` within one repository.
    ///
    /// Clean merges create a merge commit authored by `author`; conflicted
    /// merges load the marked-up tree into the worktree and return
    /// [`MergeReport::Conflicted`]. Histories without a common ancestor are
    /// merged against an empty base (like `git merge
    /// --allow-unrelated-histories`).
    pub fn merge_branch(
        &mut self,
        other: &str,
        author: Signature,
        message: impl Into<String>,
        opts: &MergeOptions,
    ) -> Result<MergeReport> {
        let ours_tip = self.head_commit()?;
        let theirs_tip = self.branch_tip(other)?;
        let base = merge_base(self.odb(), ours_tip, theirs_tip)?;

        if base == Some(theirs_tip) {
            return Ok(MergeReport::AlreadyUpToDate);
        }
        if base == Some(ours_tip) {
            // Fast-forward.
            let branch = self
                .current_branch()
                .ok_or_else(|| GitError::BadBranchName("detached HEAD".into()))?
                .to_owned();
            self.set_branch(&branch, theirs_tip)?;
            self.checkout_branch(&branch)?;
            return Ok(MergeReport::FastForwarded(theirs_tip));
        }

        let base_listing = match base {
            Some(b) => {
                let tree = self.tree_of(b)?;
                flatten_tree(self.odb(), tree)?
            }
            None => BTreeMap::new(),
        };
        let ours_listing = self.snapshot(ours_tip)?;
        let theirs_listing = self.snapshot(theirs_tip)?;
        let ours_label = self.current_branch().unwrap_or("HEAD").to_owned();
        let labels = MergeLabels {
            ours: &ours_label,
            base: "base",
            theirs: other,
        };
        let merged = {
            let odb = self.odb_mut();
            merge_listings(
                odb,
                &base_listing,
                &ours_listing,
                &theirs_listing,
                labels,
                opts,
            )
        };
        let tree = write_tree_from_listing(self.odb_mut(), &merged.listing);
        let parents = vec![ours_tip, theirs_tip];
        if merged.is_clean() {
            let id = self.commit_merge(tree, parents, author, message)?;
            Ok(MergeReport::Merged(id))
        } else {
            // Load the conflicted tree for manual resolution.
            let wt = crate::snapshot::read_tree(self.odb(), tree)?;
            *self.worktree_mut() = wt;
            Ok(MergeReport::Conflicted {
                conflicts: merged.conflicts,
                parents,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::path::path;

    fn sig(name: &str, t: i64) -> Signature {
        Signature::new(name, format!("{name}@x"), t)
    }

    /// main: base commit with three files; dev edits one, main edits another.
    fn two_branch_repo() -> Repository {
        let mut r = Repository::init("p");
        r.worktree_mut()
            .write(&path("a.txt"), &b"a1\na2\na3\n"[..])
            .unwrap();
        r.worktree_mut()
            .write(&path("b.txt"), &b"b1\nb2\nb3\n"[..])
            .unwrap();
        r.worktree_mut().write(&path("c.txt"), &b"c\n"[..]).unwrap();
        r.commit(sig("alice", 1), "base").unwrap();
        r.create_branch("dev").unwrap();
        r
    }

    #[test]
    fn merge_disjoint_edits_creates_merge_commit() {
        let mut r = two_branch_repo();
        // dev edits b.txt
        r.checkout_branch("dev").unwrap();
        r.worktree_mut()
            .write(&path("b.txt"), &b"b1\nB2!\nb3\n"[..])
            .unwrap();
        r.commit(sig("bob", 2), "dev edit").unwrap();
        // main edits a.txt
        r.checkout_branch("main").unwrap();
        r.worktree_mut()
            .write(&path("a.txt"), &b"A1!\na2\na3\n"[..])
            .unwrap();
        let main_tip = r.commit(sig("alice", 3), "main edit").unwrap();
        let report = r
            .merge_branch(
                "dev",
                sig("alice", 4),
                "merge dev",
                &MergeOptions::default(),
            )
            .unwrap();
        let MergeReport::Merged(mc) = report else {
            panic!("expected clean merge: {report:?}")
        };
        let commit = r.commit_obj(mc).unwrap();
        assert_eq!(commit.parents.len(), 2);
        assert_eq!(commit.parents[0], main_tip);
        // Both edits present.
        assert_eq!(
            r.worktree().read_text(&path("a.txt")).unwrap(),
            "A1!\na2\na3\n"
        );
        assert_eq!(
            r.worktree().read_text(&path("b.txt")).unwrap(),
            "b1\nB2!\nb3\n"
        );
    }

    #[test]
    fn merge_same_file_disjoint_regions_clean() {
        let mut r = Repository::init("p");
        r.worktree_mut()
            .write(&path("f.txt"), &b"l1\nl2\nl3\nl4\nl5\nl6\nl7\nl8\n"[..])
            .unwrap();
        r.commit(sig("alice", 1), "base").unwrap();
        r.create_branch("dev").unwrap();
        r.checkout_branch("dev").unwrap();
        r.worktree_mut()
            .write(&path("f.txt"), &b"l1\nl2\nl3\nl4\nl5\nl6\nl7\nL8-dev\n"[..])
            .unwrap();
        r.commit(sig("bob", 2), "dev").unwrap();
        r.checkout_branch("main").unwrap();
        r.worktree_mut()
            .write(
                &path("f.txt"),
                &b"L1-main\nl2\nl3\nl4\nl5\nl6\nl7\nl8\n"[..],
            )
            .unwrap();
        r.commit(sig("alice", 3), "main").unwrap();
        let report = r
            .merge_branch("dev", sig("alice", 4), "merge", &MergeOptions::default())
            .unwrap();
        assert!(matches!(report, MergeReport::Merged(_)));
        assert_eq!(
            r.worktree().read_text(&path("f.txt")).unwrap(),
            "L1-main\nl2\nl3\nl4\nl5\nl6\nl7\nL8-dev\n"
        );
    }

    #[test]
    fn merge_overlapping_edits_conflict() {
        let mut r = Repository::init("p");
        r.worktree_mut()
            .write(&path("f.txt"), &b"x\nmid\ny\n"[..])
            .unwrap();
        r.commit(sig("alice", 1), "base").unwrap();
        r.create_branch("dev").unwrap();
        r.checkout_branch("dev").unwrap();
        r.worktree_mut()
            .write(&path("f.txt"), &b"x\ndev-mid\ny\n"[..])
            .unwrap();
        r.commit(sig("bob", 2), "dev").unwrap();
        r.checkout_branch("main").unwrap();
        r.worktree_mut()
            .write(&path("f.txt"), &b"x\nmain-mid\ny\n"[..])
            .unwrap();
        let main_tip = r.commit(sig("alice", 3), "main").unwrap();
        let report = r
            .merge_branch("dev", sig("alice", 4), "merge", &MergeOptions::default())
            .unwrap();
        let MergeReport::Conflicted { conflicts, parents } = report else {
            panic!("expected conflict")
        };
        assert_eq!(conflicts.len(), 1);
        assert_eq!(conflicts[0].path, path("f.txt"));
        assert!(matches!(
            conflicts[0].kind,
            ConflictKind::Content { regions: 1 }
        ));
        assert_eq!(parents, vec![main_tip, r.branch_tip("dev").unwrap()]);
        // Worktree contains markers; resolve and commit.
        let text = r.worktree().read_text(&path("f.txt")).unwrap();
        assert!(text.contains("<<<<<<< main") && text.contains(">>>>>>> dev"));
        r.worktree_mut()
            .write(&path("f.txt"), &b"x\nresolved\ny\n"[..])
            .unwrap();
        let listing: BTreeMap<_, _> = r
            .worktree()
            .iter()
            .map(|(p, d)| (p.clone(), crate::object::Blob::new(d.clone()).id()))
            .collect();
        // Store blobs then the tree.
        for (_, data) in r
            .worktree()
            .iter()
            .map(|(p, d)| (p.clone(), d.clone()))
            .collect::<Vec<_>>()
        {
            r.odb_mut().put_blob(data);
        }
        let tree = write_tree_from_listing(r.odb_mut(), &listing);
        let mc = r
            .commit_merge(tree, parents, sig("alice", 5), "resolved merge")
            .unwrap();
        let c = r.commit_obj(mc).unwrap();
        assert_eq!(c.parents.len(), 2);
        assert_eq!(
            r.worktree().read_text(&path("f.txt")).unwrap(),
            "x\nresolved\ny\n"
        );
    }

    #[test]
    fn merge_delete_vs_modify_keeps_modified_and_conflicts() {
        let mut r = two_branch_repo();
        r.checkout_branch("dev").unwrap();
        r.worktree_mut().remove_file(&path("c.txt")).unwrap();
        r.commit(sig("bob", 2), "dev deletes c").unwrap();
        r.checkout_branch("main").unwrap();
        r.worktree_mut()
            .write(&path("c.txt"), &b"c-modified\n"[..])
            .unwrap();
        r.commit(sig("alice", 3), "main modifies c").unwrap();
        let report = r
            .merge_branch("dev", sig("alice", 4), "merge", &MergeOptions::default())
            .unwrap();
        let MergeReport::Conflicted { conflicts, .. } = report else {
            panic!("expected conflict")
        };
        assert_eq!(conflicts.len(), 1);
        assert_eq!(
            conflicts[0].kind,
            ConflictKind::DeleteModify {
                deleted_by_ours: false
            }
        );
        // Modified side survives in the worktree.
        assert_eq!(
            r.worktree().read_text(&path("c.txt")).unwrap(),
            "c-modified\n"
        );
    }

    #[test]
    fn merge_clean_delete_propagates() {
        let mut r = two_branch_repo();
        r.checkout_branch("dev").unwrap();
        r.worktree_mut().remove_file(&path("c.txt")).unwrap();
        r.commit(sig("bob", 2), "dev deletes c").unwrap();
        r.checkout_branch("main").unwrap();
        r.worktree_mut()
            .write(&path("a.txt"), &b"a1\na2\nA3\n"[..])
            .unwrap();
        r.commit(sig("alice", 3), "main edits a").unwrap();
        let report = r
            .merge_branch("dev", sig("alice", 4), "merge", &MergeOptions::default())
            .unwrap();
        assert!(matches!(report, MergeReport::Merged(_)));
        assert!(!r.worktree().is_file(&path("c.txt")));
    }

    #[test]
    fn fast_forward_and_up_to_date() {
        let mut r = two_branch_repo();
        // dev advances; main does not.
        r.checkout_branch("dev").unwrap();
        r.worktree_mut().write(&path("d.txt"), &b"d\n"[..]).unwrap();
        let dev_tip = r.commit(sig("bob", 2), "dev work").unwrap();
        r.checkout_branch("main").unwrap();
        let report = r
            .merge_branch("dev", sig("alice", 3), "merge", &MergeOptions::default())
            .unwrap();
        assert!(matches!(report, MergeReport::FastForwarded(id) if id == dev_tip));
        assert_eq!(r.branch_tip("main").unwrap(), dev_tip);
        assert!(r.worktree().is_file(&path("d.txt")));
        // Merging again: up to date.
        let report = r
            .merge_branch("dev", sig("alice", 4), "merge", &MergeOptions::default())
            .unwrap();
        assert!(matches!(report, MergeReport::AlreadyUpToDate));
    }

    #[test]
    fn add_add_same_content_clean() {
        let mut r = two_branch_repo();
        r.checkout_branch("dev").unwrap();
        r.worktree_mut()
            .write(&path("new.txt"), &b"same\n"[..])
            .unwrap();
        r.commit(sig("bob", 2), "dev adds").unwrap();
        r.checkout_branch("main").unwrap();
        r.worktree_mut()
            .write(&path("new.txt"), &b"same\n"[..])
            .unwrap();
        r.commit(sig("alice", 3), "main adds same").unwrap();
        let report = r
            .merge_branch("dev", sig("alice", 4), "merge", &MergeOptions::default())
            .unwrap();
        assert!(matches!(report, MergeReport::Merged(_)));
    }

    #[test]
    fn add_add_different_content_conflicts() {
        let mut r = two_branch_repo();
        r.checkout_branch("dev").unwrap();
        r.worktree_mut()
            .write(&path("new.txt"), &b"dev version\n"[..])
            .unwrap();
        r.commit(sig("bob", 2), "dev adds").unwrap();
        r.checkout_branch("main").unwrap();
        r.worktree_mut()
            .write(&path("new.txt"), &b"main version\n"[..])
            .unwrap();
        r.commit(sig("alice", 3), "main adds different").unwrap();
        let report = r
            .merge_branch("dev", sig("alice", 4), "merge", &MergeOptions::default())
            .unwrap();
        let MergeReport::Conflicted { conflicts, .. } = report else {
            panic!("expected conflict")
        };
        assert_eq!(conflicts[0].kind, ConflictKind::AddAdd);
    }

    #[test]
    fn unrelated_histories_merge_against_empty_base() {
        let mut r = Repository::init("p");
        r.worktree_mut()
            .write(&path("ours.txt"), &b"o\n"[..])
            .unwrap();
        r.commit(sig("alice", 1), "ours root").unwrap();
        // Build an unrelated root on another branch by detaching; simplest:
        // create branch from scratch via a second repository and fetch is
        // overkill — instead create an orphan-like branch by committing a
        // distinct root with no parents through commit_merge.
        let mut side_listing = BTreeMap::new();
        let blob = r.odb_mut().put_blob(&b"t\n"[..]);
        side_listing.insert(path("theirs.txt"), blob);
        let tree = write_tree_from_listing(r.odb_mut(), &side_listing);
        let orphan = crate::object::Commit {
            tree,
            parents: vec![],
            author: sig("bob", 2),
            message: "theirs root".into(),
        };
        let orphan_id = r.odb_mut().put(crate::object::Object::Commit(orphan));
        r.create_branch_at("side", orphan_id).unwrap();
        let report = r
            .merge_branch(
                "side",
                sig("alice", 3),
                "merge unrelated",
                &MergeOptions::default(),
            )
            .unwrap();
        assert!(matches!(report, MergeReport::Merged(_)));
        assert!(r.worktree().is_file(&path("ours.txt")));
        assert!(r.worktree().is_file(&path("theirs.txt")));
    }

    #[test]
    fn excluded_paths_are_left_out() {
        let mut r = two_branch_repo();
        r.checkout_branch("dev").unwrap();
        r.worktree_mut()
            .write(&path("citation.cite"), &b"{\"dev\": 1}"[..])
            .unwrap();
        r.commit(sig("bob", 2), "dev cites").unwrap();
        r.checkout_branch("main").unwrap();
        r.worktree_mut()
            .write(&path("citation.cite"), &b"{\"main\": 1}"[..])
            .unwrap();
        r.commit(sig("alice", 3), "main cites").unwrap();
        let opts = MergeOptions {
            exclude: vec![path("citation.cite")],
        };
        let report = r
            .merge_branch("dev", sig("alice", 4), "merge", &opts)
            .unwrap();
        // No conflict: the excluded file never goes through textual merge.
        let MergeReport::Merged(_) = report else {
            panic!("expected clean merge: {report:?}")
        };
        assert!(!r.worktree().is_file(&path("citation.cite")));
    }
}
