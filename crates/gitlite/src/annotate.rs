//! Per-line attribution (`git blame` for this substrate).
//!
//! Walks the first-parent chain from a starting version and attributes
//! every line of a file to the commit that introduced it, using the same
//! LCS matching the diff machinery uses. The citation layer's retrofit
//! mode uses per-*commit* attribution; `annotate` refines that to lines,
//! which is the granularity the paper's introduction raises ("a citation
//! to each file in each version of the project" as the finest option).

use crate::error::{GitError, Result};
use crate::graph::PathChange;
use crate::hash::ObjectId;
use crate::path::RepoPath;
use crate::repo::Repository;
use crate::snapshot::resolve_path;
use crate::textdiff::lcs_matches;

/// Attribution for one line of the annotated file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LineOrigin {
    /// The line's text (without trailing newline).
    pub text: String,
    /// The commit that introduced the line.
    pub commit: ObjectId,
    /// That commit's author name.
    pub author: String,
    /// That commit's timestamp.
    pub timestamp: i64,
}

/// Annotates `path` as of `from` (usually HEAD). Follows first parents;
/// the file must exist at `from`.
pub fn annotate(repo: &Repository, from: ObjectId, path: &RepoPath) -> Result<Vec<LineOrigin>> {
    let data = repo.file_at(from, path)?;
    let text = String::from_utf8_lossy(&data).into_owned();
    let lines: Vec<String> = split_lines(&text);

    // pending[i] = index into `lines` still unattributed, tracked through
    // older versions; position j in the *current* older version maps to
    // pending_map[j].
    let mut origins: Vec<Option<(ObjectId, String, i64)>> = vec![None; lines.len()];
    // Map: line index in the version under inspection → final line index.
    let mut alive: Vec<usize> = (0..lines.len()).collect();
    let mut current_lines = lines.clone();
    let mut cursor = from;

    loop {
        // Read the commit in place — one fetch, no clone — and pull out
        // only what attribution needs.
        let obj = repo.odb().commit_ref(cursor)?;
        let commit = obj.as_commit().expect("checked kind");
        let parent = commit.parents.first().copied();
        // Changed-path Bloom filter: when the graph proves (or an exact
        // entry check confirms) the file is identical in the first
        // parent, this commit introduced none of the surviving lines —
        // hop straight to the parent without diffing. The LCS of a file
        // against itself matches everything, so the skip attributes
        // nothing, exactly like the full iteration would.
        if let Some(p) = parent {
            match repo.path_changed_hint(cursor, path) {
                PathChange::No => {
                    cursor = p;
                    continue;
                }
                PathChange::Maybe => {
                    let here = resolve_path(repo.odb(), repo.tree_of(cursor)?, path)?;
                    let there = resolve_path(repo.odb(), repo.tree_of(p)?, path)?;
                    repo.count_bloom_outcome(here != there);
                    if here == there {
                        cursor = p;
                        continue;
                    }
                }
                PathChange::Absent => {}
            }
        }
        let parent_lines: Option<Vec<String>> = match parent {
            Some(p) => match repo.file_at(p, path) {
                Ok(d) => Some(split_lines(&String::from_utf8_lossy(&d))),
                Err(GitError::FileNotFound(_)) | Err(GitError::NotAFile(_)) => None,
                Err(e) => return Err(e),
            },
            None => None,
        };
        match parent_lines {
            None => {
                // File born here: everything still alive is this commit's.
                for &final_idx in &alive {
                    if origins[final_idx].is_none() {
                        origins[final_idx] =
                            Some((cursor, commit.author.name.clone(), commit.author.timestamp));
                    }
                }
                break;
            }
            Some(older) => {
                let matches = lcs_matches(&older, &current_lines);
                let matched_new: std::collections::HashMap<usize, usize> =
                    matches.iter().map(|&(o, n)| (n, o)).collect();
                // Lines not matched to the parent were introduced here.
                let mut next_alive = Vec::new();
                let mut next_positions = Vec::new();
                for (pos, &final_idx) in alive.iter().enumerate() {
                    match matched_new.get(&pos) {
                        Some(&older_pos) => {
                            next_alive.push(final_idx);
                            next_positions.push(older_pos);
                        }
                        None => {
                            if origins[final_idx].is_none() {
                                origins[final_idx] = Some((
                                    cursor,
                                    commit.author.name.clone(),
                                    commit.author.timestamp,
                                ));
                            }
                        }
                    }
                }
                if next_alive.is_empty() {
                    break;
                }
                // Re-express the surviving lines in the parent's coordinate
                // system and continue.
                alive = next_alive;
                current_lines = next_positions.iter().map(|&i| older[i].clone()).collect();
                // `alive[k]` corresponds to `current_lines[k]`; positions in
                // the parent are 0..len in that order only if we re-sort by
                // parent position. LCS matches are increasing in both
                // components, so the order is already consistent.
                cursor = parent.expect("parent_lines is Some");
            }
        }
    }

    Ok(lines
        .into_iter()
        .zip(origins)
        .map(|(text, o)| {
            let (commit, author, timestamp) = o.expect("every line attributed by construction");
            LineOrigin {
                text,
                commit,
                author,
                timestamp,
            }
        })
        .collect())
}

fn split_lines(text: &str) -> Vec<String> {
    if text.is_empty() {
        Vec::new()
    } else {
        text.strip_suffix('\n')
            .unwrap_or(text)
            .split('\n')
            .map(str::to_owned)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::Signature;
    use crate::path::path;

    fn sig(n: &str, t: i64) -> Signature {
        Signature::new(n, format!("{n}@x"), t)
    }

    #[test]
    fn single_commit_all_lines_attributed_to_it() {
        let mut r = Repository::init("p");
        r.worktree_mut()
            .write(&path("f.txt"), &b"a\nb\nc\n"[..])
            .unwrap();
        let c1 = r.commit(sig("alice", 1), "c1").unwrap();
        let ann = annotate(&r, c1, &path("f.txt")).unwrap();
        assert_eq!(ann.len(), 3);
        for line in &ann {
            assert_eq!(line.commit, c1);
            assert_eq!(line.author, "alice");
        }
        assert_eq!(ann[1].text, "b");
    }

    #[test]
    fn edits_attributed_to_editing_commit() {
        let mut r = Repository::init("p");
        r.worktree_mut()
            .write(&path("f.txt"), &b"one\ntwo\nthree\n"[..])
            .unwrap();
        let c1 = r.commit(sig("alice", 1), "c1").unwrap();
        r.worktree_mut()
            .write(&path("f.txt"), &b"one\nTWO!\nthree\nfour\n"[..])
            .unwrap();
        let c2 = r.commit(sig("bob", 2), "c2").unwrap();
        let ann = annotate(&r, c2, &path("f.txt")).unwrap();
        assert_eq!(ann.len(), 4);
        assert_eq!((ann[0].author.as_str(), ann[0].commit), ("alice", c1));
        assert_eq!((ann[1].author.as_str(), ann[1].commit), ("bob", c2));
        assert_eq!((ann[2].author.as_str(), ann[2].commit), ("alice", c1));
        assert_eq!((ann[3].author.as_str(), ann[3].commit), ("bob", c2));
    }

    #[test]
    fn multi_generation_attribution() {
        let mut r = Repository::init("p");
        r.worktree_mut()
            .write(&path("f.txt"), &b"l1\nl2\n"[..])
            .unwrap();
        let c1 = r.commit(sig("alice", 1), "c1").unwrap();
        r.worktree_mut()
            .write(&path("f.txt"), &b"l0\nl1\nl2\n"[..])
            .unwrap();
        let c2 = r.commit(sig("bob", 2), "c2").unwrap();
        r.worktree_mut()
            .write(&path("f.txt"), &b"l0\nl1\nl2\nl3\n"[..])
            .unwrap();
        let c3 = r.commit(sig("carol", 3), "c3").unwrap();
        let ann = annotate(&r, c3, &path("f.txt")).unwrap();
        let got: Vec<(&str, ObjectId)> = ann.iter().map(|l| (l.text.as_str(), l.commit)).collect();
        assert_eq!(got, vec![("l0", c2), ("l1", c1), ("l2", c1), ("l3", c3)]);
    }

    #[test]
    fn annotate_older_version() {
        let mut r = Repository::init("p");
        r.worktree_mut().write(&path("f.txt"), &b"x\n"[..]).unwrap();
        let c1 = r.commit(sig("alice", 1), "c1").unwrap();
        r.worktree_mut()
            .write(&path("f.txt"), &b"x\ny\n"[..])
            .unwrap();
        r.commit(sig("bob", 2), "c2").unwrap();
        // Annotating at C1 sees only alice's line.
        let ann = annotate(&r, c1, &path("f.txt")).unwrap();
        assert_eq!(ann.len(), 1);
        assert_eq!(ann[0].author, "alice");
    }

    #[test]
    fn file_recreated_after_deletion() {
        let mut r = Repository::init("p");
        r.worktree_mut()
            .write(&path("f.txt"), &b"old\n"[..])
            .unwrap();
        r.commit(sig("alice", 1), "c1").unwrap();
        r.worktree_mut().remove_file(&path("f.txt")).unwrap();
        r.commit(sig("alice", 2), "delete").unwrap();
        r.worktree_mut()
            .write(&path("f.txt"), &b"old\nnew\n"[..])
            .unwrap();
        let c3 = r.commit(sig("bob", 3), "recreate").unwrap();
        // The deletion breaks the chain: everything belongs to c3.
        let ann = annotate(&r, c3, &path("f.txt")).unwrap();
        assert!(ann.iter().all(|l| l.commit == c3 && l.author == "bob"));
    }

    #[test]
    fn missing_file_errors() {
        let mut r = Repository::init("p");
        r.worktree_mut().write(&path("f.txt"), &b"x\n"[..]).unwrap();
        let c1 = r.commit(sig("alice", 1), "c1").unwrap();
        assert!(annotate(&r, c1, &path("nope.txt")).is_err());
    }

    #[test]
    fn empty_file_annotates_to_nothing() {
        let mut r = Repository::init("p");
        r.worktree_mut().write(&path("f.txt"), &b""[..]).unwrap();
        let c1 = r.commit(sig("alice", 1), "c1").unwrap();
        assert!(annotate(&r, c1, &path("f.txt")).unwrap().is_empty());
    }
}
