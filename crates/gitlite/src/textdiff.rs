//! Line-oriented diffing: Myers LCS matches, similarity scoring and the
//! diff3 three-way text merge.
//!
//! Used in two places: rename detection (similarity between a deleted and
//! an added file) and merge (three-way content merge with conflict
//! markers). `citation.cite` never goes through this module — the paper is
//! explicit that Git's textual conflict rules must not be applied to the
//! citation file (§3, MergeCite).

use std::borrow::Cow;

/// A pair of matched line indexes `(index_in_a, index_in_b)`.
pub type Match = (usize, usize);

/// Maximum Myers edit distance explored before falling back to
/// "no internal matches". Keeps worst-case time/memory bounded on inputs
/// that share nothing; similar inputs (the common case for merges) stay
/// well below it.
const MAX_D: usize = 1024;

/// Computes a longest-common-subsequence matching between `a` and `b`
/// using Myers' O(ND) algorithm, with common prefix/suffix trimming.
/// Returned pairs are strictly increasing in both components.
pub fn lcs_matches<T: PartialEq>(a: &[T], b: &[T]) -> Vec<Match> {
    // Trim common prefix.
    let mut prefix = 0;
    while prefix < a.len() && prefix < b.len() && a[prefix] == b[prefix] {
        prefix += 1;
    }
    // Trim common suffix (not overlapping the prefix).
    let mut suffix = 0;
    while suffix < a.len() - prefix
        && suffix < b.len() - prefix
        && a[a.len() - 1 - suffix] == b[b.len() - 1 - suffix]
    {
        suffix += 1;
    }
    let core_a = &a[prefix..a.len() - suffix];
    let core_b = &b[prefix..b.len() - suffix];

    let mut matches: Vec<Match> = (0..prefix).map(|i| (i, i)).collect();
    matches.extend(
        myers_core(core_a, core_b)
            .into_iter()
            .map(|(x, y)| (x + prefix, y + prefix)),
    );
    let a_tail = a.len() - suffix;
    let b_tail = b.len() - suffix;
    matches.extend((0..suffix).map(|i| (a_tail + i, b_tail + i)));
    matches
}

/// Myers diff over the trimmed cores. Returns matched pairs.
fn myers_core<T: PartialEq>(a: &[T], b: &[T]) -> Vec<Match> {
    let n = a.len();
    let m = b.len();
    if n == 0 || m == 0 {
        return Vec::new();
    }
    let max = n + m;
    let bound = max.min(MAX_D);
    let width = 2 * bound + 1;
    let off = bound as isize;
    // v[k + off] = furthest x along diagonal k.
    let mut v = vec![0usize; width];
    let mut trace: Vec<Vec<usize>> = Vec::new();
    let mut found_d = None;
    'outer: for d in 0..=bound {
        trace.push(v.clone());
        let d_i = d as isize;
        let mut k = -d_i;
        while k <= d_i {
            let idx = (k + off) as usize;
            let mut x = if k == -d_i || (k != d_i && v[idx - 1] < v[idx + 1]) {
                v[idx + 1] // move down (insertion in b)
            } else {
                v[idx - 1] + 1 // move right (deletion from a)
            };
            let mut y = (x as isize - k) as usize;
            while x < n && y < m && a[x] == b[y] {
                x += 1;
                y += 1;
            }
            v[idx] = x;
            if x >= n && y >= m {
                found_d = Some(d);
                break 'outer;
            }
            k += 2;
        }
    }
    let Some(d_final) = found_d else {
        // Inputs differ by more than MAX_D edits: treat as fully different.
        return Vec::new();
    };

    // Backtrack from (n, m) through the trace, recording diagonal runs.
    let mut matches = Vec::new();
    let mut x = n as isize;
    let mut y = m as isize;
    for d in (0..=d_final).rev() {
        let v = &trace[d];
        let d_i = d as isize;
        let k = x - y;
        let (prev_x, prev_y) = if d == 0 {
            (0isize, 0isize)
        } else {
            let idx = (k + off) as usize;
            let prev_k = if k == -d_i || (k != d_i && v[idx - 1] < v[idx + 1]) {
                k + 1
            } else {
                k - 1
            };
            let px = v[(prev_k + off) as usize] as isize;
            (px, px - prev_k)
        };
        // Walk the snake back to the point reached from (prev_x, prev_y).
        while x > prev_x && y > prev_y {
            x -= 1;
            y -= 1;
            matches.push((x as usize, y as usize));
        }
        if d > 0 {
            x = prev_x;
            y = prev_y;
        }
    }
    matches.reverse();
    matches
}

/// Order-sensitive similarity in `[0, 1]`: `2·|LCS| / (|a| + |b|)`.
/// Two empty sequences are fully similar.
pub fn sequence_similarity<T: PartialEq>(a: &[T], b: &[T]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let lcs = lcs_matches(a, b).len();
    (2.0 * lcs as f64) / ((a.len() + b.len()) as f64)
}

/// Order-insensitive line-multiset similarity in `[0, 1]`, used for rename
/// detection where it approximates Git's heuristic at much lower cost than
/// a full LCS.
pub fn bag_similarity(a: &[u8], b: &[u8]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let mut counts: std::collections::HashMap<&[u8], (usize, usize)> =
        std::collections::HashMap::new();
    let mut na = 0usize;
    for line in a.split(|&c| c == b'\n') {
        counts.entry(line).or_default().0 += 1;
        na += 1;
    }
    let mut nb = 0usize;
    for line in b.split(|&c| c == b'\n') {
        counts.entry(line).or_default().1 += 1;
        nb += 1;
    }
    let common: usize = counts.values().map(|&(x, y)| x.min(y)).sum();
    (2.0 * common as f64) / ((na + nb) as f64)
}

/// Outcome of a three-way text merge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diff3Result {
    /// The merged text (with conflict markers when `conflicts > 0`).
    pub text: String,
    /// How many conflict regions were emitted.
    pub conflicts: usize,
}

/// Conflict-marker labels for [`diff3_merge`].
#[derive(Debug, Clone, Copy)]
pub struct MergeLabels<'a> {
    /// Label for "our" side (e.g. the current branch name).
    pub ours: &'a str,
    /// Label for the base version.
    pub base: &'a str,
    /// Label for "their" side (the branch being merged).
    pub theirs: &'a str,
}

impl Default for MergeLabels<'_> {
    fn default() -> Self {
        MergeLabels {
            ours: "ours",
            base: "base",
            theirs: "theirs",
        }
    }
}

/// Three-way line merge in the style of `diff3 -m` / Git's merge driver.
///
/// Regions where only one side diverged from the base take that side's
/// text; regions where both sides made the *same* change take it once;
/// regions where the sides disagree become conflict blocks delimited by
/// `<<<<<<<`, `|||||||`, `=======`, `>>>>>>>`.
pub fn diff3_merge(base: &str, ours: &str, theirs: &str, labels: MergeLabels<'_>) -> Diff3Result {
    let b: Vec<&str> = lines_of(base);
    let o: Vec<&str> = lines_of(ours);
    let t: Vec<&str> = lines_of(theirs);

    // Match maps base→ours and base→theirs.
    let mo = index_map(&lcs_matches(&b, &o), b.len());
    let mt = index_map(&lcs_matches(&b, &t), b.len());

    let mut out: Vec<Cow<'_, str>> = Vec::new();
    let mut conflicts = 0usize;
    let (mut ib, mut io, mut it) = (0usize, 0usize, 0usize);

    loop {
        // Emit the stable run: base, ours and theirs are in sync.
        while ib < b.len() && mo[ib] == Some(io) && mt[ib] == Some(it) {
            out.push(Cow::Borrowed(b[ib]));
            ib += 1;
            io += 1;
            it += 1;
        }
        if ib >= b.len() && io >= o.len() && it >= t.len() {
            break;
        }
        // Find the next base index matched in both sides: the end of the
        // unstable chunk.
        let mut jb = ib;
        let (jo, jt) = loop {
            if jb >= b.len() {
                break (o.len(), t.len());
            }
            match (mo[jb], mt[jb]) {
                (Some(x), Some(y)) if x >= io && y >= it => break (x, y),
                _ => jb += 1,
            }
        };
        let chunk_b = &b[ib..jb];
        let chunk_o = &o[io..jo];
        let chunk_t = &t[it..jt];
        if chunk_o == chunk_t {
            // Both sides agree (includes both-deleted).
            out.extend(chunk_o.iter().map(|s| Cow::Borrowed(*s)));
        } else if chunk_o == chunk_b {
            out.extend(chunk_t.iter().map(|s| Cow::Borrowed(*s)));
        } else if chunk_t == chunk_b {
            out.extend(chunk_o.iter().map(|s| Cow::Borrowed(*s)));
        } else {
            conflicts += 1;
            out.push(Cow::Owned(format!("<<<<<<< {}", labels.ours)));
            out.extend(chunk_o.iter().map(|s| Cow::Borrowed(*s)));
            out.push(Cow::Owned(format!("||||||| {}", labels.base)));
            out.extend(chunk_b.iter().map(|s| Cow::Borrowed(*s)));
            out.push(Cow::Borrowed("======="));
            out.extend(chunk_t.iter().map(|s| Cow::Borrowed(*s)));
            out.push(Cow::Owned(format!(">>>>>>> {}", labels.theirs)));
        }
        ib = jb;
        io = jo;
        it = jt;
    }

    let mut text = out.join("\n");
    // One line (possibly empty) or more ⇒ the output ends with a newline;
    // zero lines ⇒ the empty file. Inputs without a trailing newline are
    // normalized to trailing-newline form, as `diff3 -m` effectively does.
    if !out.is_empty() {
        text.push('\n');
    }
    Diff3Result { text, conflicts }
}

/// Splits text into lines without the trailing empty segment a final
/// newline would otherwise produce.
fn lines_of(text: &str) -> Vec<&str> {
    if text.is_empty() {
        Vec::new()
    } else {
        let trimmed = text.strip_suffix('\n').unwrap_or(text);
        trimmed.split('\n').collect()
    }
}

/// Converts a match list into `base_index → other_index` lookups.
fn index_map(matches: &[Match], base_len: usize) -> Vec<Option<usize>> {
    let mut map = vec![None; base_len];
    for &(bi, oi) in matches {
        map[bi] = Some(oi);
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ml() -> MergeLabels<'static> {
        MergeLabels::default()
    }

    #[test]
    fn lcs_identity() {
        let a = ["x", "y", "z"];
        assert_eq!(lcs_matches(&a, &a), vec![(0, 0), (1, 1), (2, 2)]);
    }

    #[test]
    fn lcs_disjoint() {
        let a = ["a", "b"];
        let b = ["c", "d"];
        assert!(lcs_matches(&a, &b).is_empty());
    }

    #[test]
    fn lcs_classic_example() {
        // ABCABBA vs CBABAC — LCS length 4.
        let a: Vec<char> = "ABCABBA".chars().collect();
        let b: Vec<char> = "CBABAC".chars().collect();
        let m = lcs_matches(&a, &b);
        assert_eq!(m.len(), 4);
        // Matches must be strictly increasing and correct.
        for w in m.windows(2) {
            assert!(w[0].0 < w[1].0 && w[0].1 < w[1].1);
        }
        for &(i, j) in &m {
            assert_eq!(a[i], b[j]);
        }
    }

    #[test]
    fn lcs_shifted_window() {
        // b is a with one line inserted in front: all of a must match.
        let a = ["1", "2", "3", "4"];
        let b = ["0", "1", "2", "3", "4"];
        let m = lcs_matches(&a, &b);
        assert_eq!(m, vec![(0, 1), (1, 2), (2, 3), (3, 4)]);
    }

    #[test]
    fn lcs_empty_inputs() {
        let a: [&str; 0] = [];
        let b = ["x"];
        assert!(lcs_matches(&a, &b).is_empty());
        assert!(lcs_matches(&b, &a).is_empty());
        assert!(lcs_matches::<&str>(&a, &a).is_empty());
    }

    #[test]
    fn similarity_scores() {
        let a = ["l1", "l2", "l3", "l4"];
        let b = ["l1", "l2", "changed", "l4"];
        assert!((sequence_similarity(&a, &b) - 0.75).abs() < 1e-9);
        assert_eq!(sequence_similarity(&a, &a), 1.0);
        let empty: [&str; 0] = [];
        assert_eq!(sequence_similarity::<&str>(&empty, &empty), 1.0);
        assert_eq!(sequence_similarity(&a, &empty), 0.0);
    }

    #[test]
    fn bag_similarity_ignores_order() {
        assert_eq!(bag_similarity(b"a\nb\nc", b"c\nb\na"), 1.0);
        assert_eq!(bag_similarity(b"", b""), 1.0);
        assert!(bag_similarity(b"a\nb", b"a\nx") < 1.0);
        assert!(bag_similarity(b"a\nb", b"a\nx") > 0.0);
    }

    #[test]
    fn merge_no_changes() {
        let r = diff3_merge("a\nb\n", "a\nb\n", "a\nb\n", ml());
        assert_eq!(r.conflicts, 0);
        assert_eq!(r.text, "a\nb\n");
    }

    #[test]
    fn merge_one_side_changes() {
        let base = "one\ntwo\nthree\n";
        let ours = "one\nTWO\nthree\n";
        let r = diff3_merge(base, ours, base, ml());
        assert_eq!(r.conflicts, 0);
        assert_eq!(r.text, ours);
        let r = diff3_merge(base, base, ours, ml());
        assert_eq!(r.text, ours);
    }

    #[test]
    fn merge_disjoint_changes_both_taken() {
        let base = "one\ntwo\nthree\nfour\n";
        let ours = "ONE\ntwo\nthree\nfour\n";
        let theirs = "one\ntwo\nthree\nFOUR\n";
        let r = diff3_merge(base, ours, theirs, ml());
        assert_eq!(r.conflicts, 0);
        assert_eq!(r.text, "ONE\ntwo\nthree\nFOUR\n");
    }

    #[test]
    fn merge_same_change_taken_once() {
        let base = "a\nb\nc\n";
        let both = "a\nB!\nc\n";
        let r = diff3_merge(base, both, both, ml());
        assert_eq!(r.conflicts, 0);
        assert_eq!(r.text, both);
    }

    #[test]
    fn merge_conflicting_changes_marked() {
        let base = "a\nmid\nz\n";
        let ours = "a\nours-mid\nz\n";
        let theirs = "a\ntheirs-mid\nz\n";
        let labels = MergeLabels {
            ours: "main",
            base: "base",
            theirs: "gui",
        };
        let r = diff3_merge(base, ours, theirs, labels);
        assert_eq!(r.conflicts, 1);
        let expect =
            "a\n<<<<<<< main\nours-mid\n||||||| base\nmid\n=======\ntheirs-mid\n>>>>>>> gui\nz\n";
        assert_eq!(r.text, expect);
    }

    #[test]
    fn merge_insertions_at_both_ends() {
        let base = "m\n";
        let ours = "start\nm\n";
        let theirs = "m\nend\n";
        let r = diff3_merge(base, ours, theirs, ml());
        assert_eq!(r.conflicts, 0);
        assert_eq!(r.text, "start\nm\nend\n");
    }

    #[test]
    fn merge_delete_vs_keep() {
        let base = "a\nb\nc\n";
        let ours = "a\nc\n"; // deleted b
        let theirs = base; // unchanged
        let r = diff3_merge(base, ours, theirs, ml());
        assert_eq!(r.conflicts, 0);
        assert_eq!(r.text, "a\nc\n");
    }

    #[test]
    fn merge_delete_vs_modify_conflicts() {
        let base = "a\nb\nc\n";
        let ours = "a\nc\n"; // deleted b
        let theirs = "a\nB2\nc\n"; // modified b
        let r = diff3_merge(base, ours, theirs, ml());
        assert_eq!(r.conflicts, 1);
        assert!(r.text.contains("<<<<<<<"));
        assert!(r.text.contains("B2"));
    }

    #[test]
    fn merge_empty_base_add_add() {
        let r = diff3_merge("", "ours\n", "theirs\n", ml());
        assert_eq!(r.conflicts, 1);
        let r2 = diff3_merge("", "same\n", "same\n", ml());
        assert_eq!(r2.conflicts, 0);
        assert_eq!(r2.text, "same\n");
    }

    #[test]
    fn merge_completely_rewritten_sides() {
        let base: String = (0..50).map(|i| format!("base{i}\n")).collect();
        let ours: String = (0..50).map(|i| format!("ours{i}\n")).collect();
        let theirs: String = (0..50).map(|i| format!("theirs{i}\n")).collect();
        let r = diff3_merge(&base, &ours, &theirs, ml());
        assert_eq!(r.conflicts, 1);
        assert!(r.text.contains("ours0"));
        assert!(r.text.contains("theirs49"));
    }

    #[test]
    fn merged_text_preserves_final_newline_absence() {
        let r = diff3_merge("", "", "", ml());
        assert_eq!(r.text, "");
        assert_eq!(r.conflicts, 0);
    }
}
