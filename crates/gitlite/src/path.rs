//! [`RepoPath`] — normalized, repository-relative paths.
//!
//! Every node in a project version (paper §2: a rooted tree whose interior
//! nodes are directories and leaves are files) is identified by a path from
//! the root. Citation-function keys, tree-diff output and worktree files all
//! use this one type so path normalization happens exactly once, at the
//! boundary.

use std::fmt;

/// Errors produced when parsing/validating a path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PathError {
    /// A component was empty (`a//b`), `.` or `..`.
    BadComponent(String),
    /// The path contained a disallowed character (backslash or NUL).
    BadCharacter(char),
}

impl fmt::Display for PathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PathError::BadComponent(c) => write!(f, "invalid path component {c:?}"),
            PathError::BadCharacter(c) => write!(f, "invalid character {c:?} in path"),
        }
    }
}

impl std::error::Error for PathError {}

/// A normalized `/`-separated path relative to the repository root.
///
/// The root itself is the empty path. Leading and trailing slashes are
/// accepted on input and stripped, so `"/src/main.rs"`, `"src/main.rs"` and
/// `"src/main.rs/"` all parse to the same value. `citation.cite` keys such
/// as `"/"` and `"/CoreCover/"` (Listing 1) round-trip through
/// [`RepoPath::to_cite_key`] / [`RepoPath::parse`].
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct RepoPath {
    components: Vec<String>,
}

impl RepoPath {
    /// The repository root (empty path).
    pub fn root() -> Self {
        RepoPath {
            components: Vec::new(),
        }
    }

    /// Parses and normalizes a path string.
    pub fn parse(s: &str) -> Result<Self, PathError> {
        if s.contains('\\') {
            return Err(PathError::BadCharacter('\\'));
        }
        if s.contains('\0') {
            return Err(PathError::BadCharacter('\0'));
        }
        let mut components = Vec::new();
        for part in s.split('/') {
            if part.is_empty() {
                continue; // tolerate leading/trailing/duplicate slashes
            }
            if part == "." || part == ".." {
                return Err(PathError::BadComponent(part.to_owned()));
            }
            components.push(part.to_owned());
        }
        Ok(RepoPath { components })
    }

    /// True for the repository root.
    pub fn is_root(&self) -> bool {
        self.components.is_empty()
    }

    /// Number of components.
    pub fn depth(&self) -> usize {
        self.components.len()
    }

    /// The path's components in order.
    pub fn components(&self) -> &[String] {
        &self.components
    }

    /// The final component, if any.
    pub fn file_name(&self) -> Option<&str> {
        self.components.last().map(String::as_str)
    }

    /// The parent path; `None` for the root.
    pub fn parent(&self) -> Option<RepoPath> {
        if self.is_root() {
            None
        } else {
            Some(RepoPath {
                components: self.components[..self.components.len() - 1].to_vec(),
            })
        }
    }

    /// Appends a single component.
    ///
    /// # Panics
    /// Panics if `name` contains `/`, which would silently change the
    /// path's depth; use [`RepoPath::join`] for multi-component suffixes.
    pub fn child(&self, name: &str) -> RepoPath {
        assert!(
            !name.contains('/') && !name.is_empty(),
            "child() takes a single component"
        );
        let mut components = self.components.clone();
        components.push(name.to_owned());
        RepoPath { components }
    }

    /// Appends another path.
    pub fn join(&self, other: &RepoPath) -> RepoPath {
        let mut components = self.components.clone();
        components.extend(other.components.iter().cloned());
        RepoPath { components }
    }

    /// True when `self` is `prefix` or lies beneath it. The root is a prefix
    /// of everything.
    pub fn starts_with(&self, prefix: &RepoPath) -> bool {
        self.components.len() >= prefix.components.len()
            && self.components[..prefix.components.len()] == prefix.components[..]
    }

    /// Removes a leading `prefix`, returning the remainder.
    pub fn strip_prefix(&self, prefix: &RepoPath) -> Option<RepoPath> {
        if self.starts_with(prefix) {
            Some(RepoPath {
                components: self.components[prefix.components.len()..].to_vec(),
            })
        } else {
            None
        }
    }

    /// Re-roots a path from `from` to `to`: `a/b/c` with `from=a`, `to=x/y`
    /// becomes `x/y/b/c`. Returns `None` when `self` is not under `from`.
    pub fn rebase(&self, from: &RepoPath, to: &RepoPath) -> Option<RepoPath> {
        self.strip_prefix(from).map(|rest| to.join(&rest))
    }

    /// Iterates every ancestor from the immediate parent up to (and
    /// including) the root. The path itself is not yielded.
    pub fn ancestors(&self) -> impl Iterator<Item = RepoPath> + '_ {
        (0..self.components.len()).rev().map(move |n| RepoPath {
            components: self.components[..n].to_vec(),
        })
    }

    /// Renders the `citation.cite` key form: `"/"` for the root and
    /// `/a/b/` style (leading slash; trailing slash when `dir` is true)
    /// otherwise.
    pub fn to_cite_key(&self, dir: bool) -> String {
        if self.is_root() {
            return "/".to_owned();
        }
        let mut s = String::new();
        for c in &self.components {
            s.push('/');
            s.push_str(c);
        }
        if dir {
            s.push('/');
        }
        s
    }
}

impl fmt::Display for RepoPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_root() {
            f.write_str("")
        } else {
            f.write_str(&self.components.join("/"))
        }
    }
}

impl fmt::Debug for RepoPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "RepoPath({:?})", self.to_string())
    }
}

impl std::str::FromStr for RepoPath {
    type Err = PathError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        RepoPath::parse(s)
    }
}

/// Convenience: `path("a/b")` with a panic on invalid input, for tests and
/// literals. Library code paths use [`RepoPath::parse`].
pub fn path(s: &str) -> RepoPath {
    RepoPath::parse(s).expect("valid path literal")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_normalizes_slashes() {
        for s in ["a/b/c", "/a/b/c", "a/b/c/", "//a//b//c//"] {
            assert_eq!(RepoPath::parse(s).unwrap().to_string(), "a/b/c");
        }
    }

    #[test]
    fn root_forms() {
        for s in ["", "/", "//"] {
            assert!(RepoPath::parse(s).unwrap().is_root());
        }
        assert_eq!(RepoPath::root().to_cite_key(true), "/");
        assert_eq!(RepoPath::root().to_string(), "");
    }

    #[test]
    fn rejects_dot_components_and_bad_chars() {
        assert!(matches!(
            RepoPath::parse("a/./b"),
            Err(PathError::BadComponent(_))
        ));
        assert!(matches!(
            RepoPath::parse("../b"),
            Err(PathError::BadComponent(_))
        ));
        assert!(matches!(
            RepoPath::parse("a\\b"),
            Err(PathError::BadCharacter('\\'))
        ));
        assert!(matches!(
            RepoPath::parse("a\0b"),
            Err(PathError::BadCharacter('\0'))
        ));
    }

    #[test]
    fn parent_child_file_name() {
        let p = path("src/lib.rs");
        assert_eq!(p.file_name(), Some("lib.rs"));
        assert_eq!(p.parent().unwrap(), path("src"));
        assert_eq!(path("src").parent().unwrap(), RepoPath::root());
        assert_eq!(RepoPath::root().parent(), None);
        assert_eq!(RepoPath::root().child("x"), path("x"));
    }

    #[test]
    #[should_panic(expected = "single component")]
    fn child_rejects_slash() {
        let _ = RepoPath::root().child("a/b");
    }

    #[test]
    fn prefix_logic() {
        let p = path("a/b/c");
        assert!(p.starts_with(&RepoPath::root()));
        assert!(p.starts_with(&path("a/b")));
        assert!(p.starts_with(&path("a/b/c")));
        assert!(!p.starts_with(&path("a/bc")));
        assert!(!path("ab").starts_with(&path("a")));
        assert_eq!(p.strip_prefix(&path("a")).unwrap(), path("b/c"));
        assert_eq!(p.strip_prefix(&path("x")), None);
    }

    #[test]
    fn rebase_moves_subtrees() {
        let p = path("old/dir/file.txt");
        assert_eq!(
            p.rebase(&path("old/dir"), &path("new/place")).unwrap(),
            path("new/place/file.txt")
        );
        assert_eq!(p.rebase(&path("other"), &path("new")), None);
        // Rebasing from the root prefixes everything.
        assert_eq!(
            p.rebase(&RepoPath::root(), &path("x")).unwrap(),
            path("x/old/dir/file.txt")
        );
    }

    #[test]
    fn ancestors_walk_to_root() {
        let p = path("a/b/c");
        let anc: Vec<String> = p.ancestors().map(|a| a.to_string()).collect();
        assert_eq!(anc, vec!["a/b".to_owned(), "a".to_owned(), String::new()]);
        assert_eq!(RepoPath::root().ancestors().count(), 0);
    }

    #[test]
    fn cite_key_rendering() {
        assert_eq!(path("CoreCover").to_cite_key(true), "/CoreCover/");
        assert_eq!(path("citation/GUI").to_cite_key(true), "/citation/GUI/");
        assert_eq!(path("src/main.rs").to_cite_key(false), "/src/main.rs");
        // Keys parse back to the same path.
        assert_eq!(RepoPath::parse("/CoreCover/").unwrap(), path("CoreCover"));
    }

    #[test]
    fn ordering_is_lexicographic_by_component() {
        let mut v = [path("b"), path("a/z"), path("a"), RepoPath::root()];
        v.sort();
        let strs: Vec<String> = v.iter().map(|p| p.to_string()).collect();
        assert_eq!(strs, vec!["", "a", "a/z", "b"]);
    }
}
