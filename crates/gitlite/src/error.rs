//! Error type shared by all `gitlite` operations.

use crate::hash::ObjectId;
use crate::path::{PathError, RepoPath};
use std::fmt;

/// Anything that can go wrong inside the VCS substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GitError {
    /// An object id was referenced but is not in the object database.
    ObjectNotFound(ObjectId),
    /// An object existed but had the wrong kind (e.g. a blob where a tree
    /// was required).
    WrongKind {
        /// The offending id.
        id: ObjectId,
        /// Kind the caller needed.
        expected: &'static str,
        /// Kind actually stored.
        actual: &'static str,
    },
    /// Named branch does not exist.
    BranchNotFound(String),
    /// Branch already exists (on create).
    BranchExists(String),
    /// Invalid branch name (empty or containing whitespace/`/`).
    BadBranchName(String),
    /// A path failed validation.
    Path(PathError),
    /// A worktree path was required but absent.
    FileNotFound(RepoPath),
    /// A directory was given where a file was required (or vice versa).
    NotAFile(RepoPath),
    /// `commit` called with a worktree identical to HEAD.
    NothingToCommit,
    /// A push would lose commits on the destination branch.
    NonFastForward {
        /// Destination branch name.
        branch: String,
    },
    /// Merge produced conflicts the caller must resolve.
    MergeConflicts(usize),
    /// Merge requested between histories with no common ancestor.
    NoMergeBase,
    /// Repository has no commits yet where one was required.
    EmptyRepository,
    /// On-disk store problems (message keeps the io::Error text; io::Error
    /// itself is not `Clone`/`PartialEq`).
    Io(String),
    /// A persisted object failed to decode.
    Corrupt(String),
}

impl fmt::Display for GitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GitError::ObjectNotFound(id) => write!(f, "object {} not found", id.short()),
            GitError::WrongKind {
                id,
                expected,
                actual,
            } => {
                write!(
                    f,
                    "object {} is a {actual}, expected a {expected}",
                    id.short()
                )
            }
            GitError::BranchNotFound(b) => write!(f, "branch {b:?} not found"),
            GitError::BranchExists(b) => write!(f, "branch {b:?} already exists"),
            GitError::BadBranchName(b) => write!(f, "invalid branch name {b:?}"),
            GitError::Path(e) => write!(f, "{e}"),
            GitError::FileNotFound(p) => write!(f, "no such file in worktree: {p}"),
            GitError::NotAFile(p) => write!(f, "not a file: {p}"),
            GitError::NothingToCommit => write!(f, "nothing to commit"),
            GitError::NonFastForward { branch } => {
                write!(f, "push to {branch:?} rejected: not a fast-forward")
            }
            GitError::MergeConflicts(n) => write!(f, "merge produced {n} conflict(s)"),
            GitError::NoMergeBase => write!(f, "histories share no common ancestor"),
            GitError::EmptyRepository => write!(f, "repository has no commits"),
            GitError::Io(msg) => write!(f, "io error: {msg}"),
            GitError::Corrupt(msg) => write!(f, "corrupt object store: {msg}"),
        }
    }
}

impl std::error::Error for GitError {}

impl From<PathError> for GitError {
    fn from(e: PathError) -> Self {
        GitError::Path(e)
    }
}

impl From<std::io::Error> for GitError {
    fn from(e: std::io::Error) -> Self {
        GitError::Io(e.to_string())
    }
}

/// Result alias used across the crate.
pub type Result<T> = std::result::Result<T, GitError>;
