//! The object database: pluggable, content-addressed storage for blobs,
//! trees and commits.
//!
//! Storage is defined by the [`ObjectStore`] trait — get/put/contains/
//! len/ids over canonical object bytes, keyed by [`ObjectId`] — so the
//! rest of the system ([`crate::Repository`], snapshots, diffs, merges,
//! remotes, and every layer above) is backend-agnostic. Four backends
//! ship with the crate:
//!
//! * [`MemStore`] — a `HashMap` of `Arc<Object>`s; the default backend
//!   and the fastest for ephemeral repositories (tests, hosted-platform
//!   simulation, benchmarks).
//! * [`DiskStore`] — durable loose objects in a sharded
//!   `objects/ab/cdef...` layout holding each object's canonical bytes
//!   (`"<kind> <len>\0<body>"`, hashed to its id). Writes go straight to
//!   disk (atomically, via temp file + rename); reads decode on demand.
//! * [`crate::PackStore`] — the packfile backend ([`crate::pack`]): reads
//!   served from buffered `pack-<checksum>.pack` files through a sorted
//!   fanout index (O(log n) id→offset, one file read per pack instead of
//!   one per object), with new writes overflowing into a loose
//!   [`DiskStore`] area under the same root. `PackStore::repack`/`gc`
//!   consolidate the overflow into a fresh pack (and `gc` drops objects
//!   unreachable from the given roots) — run `gitcite gc` after enough
//!   loose objects accumulate to matter (hundreds). This is what the
//!   local tool persists repositories with.
//! * [`CachedStore<S>`] — an LRU read-through cache over any other
//!   backend, for hot resolution paths (snapshot listing, citation
//!   resolution, diff/merge walks) where the same trees and blobs are
//!   fetched repeatedly. [`CachedStore::stats`] reports hits, misses and
//!   evictions for capacity planning.
//!
//! Objects are immutable once stored (they are keyed by the hash of
//! their bytes), so stores hand out `Arc<Object>` and never copy object
//! payloads on fetch. Because ids are content addresses, two stores —
//! or two handles onto the same on-disk store — can share objects
//! freely; inserts are idempotent.

use crate::codec::decode_object;
use crate::error::{GitError, Result};
use crate::hash::ObjectId;
use crate::object::{Blob, Object};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// A content-addressed object database backend.
///
/// Implementations supply the five primitives (`get`, `put_with_id`,
/// `contains`, `len`, `ids`) plus `clone_box`; everything else — typed
/// fetches, hashing inserts, raw-byte loads, reachability — is provided
/// on top. The trait is object-safe: [`crate::Repository`] holds a
/// `Box<dyn ObjectStore>`.
pub trait ObjectStore: fmt::Debug + Send + Sync {
    /// Fetches an object.
    fn get(&self, id: ObjectId) -> Result<Arc<Object>>;

    /// Stores an object under a caller-supplied id, without re-hashing.
    /// Idempotent: inserting an id that is already present is a no-op.
    ///
    /// The id **must** be the object's content address; that is the
    /// caller's contract (debug builds verify it). Callers that do not
    /// already know the id use [`ObjectStore::put`] instead.
    fn put_with_id(&mut self, id: ObjectId, object: Arc<Object>);

    /// True when the id is present.
    fn contains(&self, id: ObjectId) -> bool;

    /// Number of stored objects.
    fn len(&self) -> usize;

    /// All stored ids, in unspecified order. (The object-safe form of
    /// iteration: pair with [`ObjectStore::get`] to walk objects.)
    fn ids(&self) -> Vec<ObjectId>;

    /// Clones the backend behind a fresh box. For shared-medium backends
    /// (e.g. [`DiskStore`]) the clone addresses the same underlying
    /// objects — safe, because object storage is append-only and
    /// content-addressed.
    fn clone_box(&self) -> Box<dyn ObjectStore>;

    /// Dynamic-typing escape hatch: lets code holding a `&dyn
    /// ObjectStore` recognize a concrete backend (e.g. the local tool
    /// skips re-syncing objects when a repository is already backed by
    /// the directory it is being saved to).
    fn as_any(&self) -> &dyn std::any::Any;

    // ----- provided API --------------------------------------------------

    /// True when no objects are stored.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Hashes and stores an object, returning its id. Idempotent.
    fn put(&mut self, object: Object) -> ObjectId {
        let id = object.id();
        if !self.contains(id) {
            self.put_with_id(id, Arc::new(object));
        }
        id
    }

    /// Stores an already-shared object (used by object transfer; avoids a
    /// deep copy). Prefer [`ObjectStore::put_with_id`] when the id is
    /// already known — this method must re-hash.
    fn put_shared(&mut self, object: Arc<Object>) -> ObjectId {
        let id = object.id();
        self.put_with_id(id, object);
        id
    }

    /// Stores an object from its canonical bytes under a claimed id,
    /// verifying that the bytes actually hash to that id before trusting
    /// it. This is the checked fast path for loading persisted objects:
    /// one hash over the raw bytes replaces re-encode + re-hash.
    fn put_raw(&mut self, id: ObjectId, bytes: &[u8]) -> Result<ObjectId> {
        verify_claimed_id(id, bytes)?;
        if !self.contains(id) {
            let object = decode_object(bytes)?;
            self.put_with_id(id, Arc::new(object));
        }
        Ok(id)
    }

    /// Stores a batch of objects under caller-supplied ids (the same
    /// contract as [`ObjectStore::put_with_id`], object by object).
    /// Object transfer (clone/fetch/push) inserts through this so
    /// backends can amortize per-insert overhead — [`DiskStore`] creates
    /// each shard directory once per batch instead of once per object.
    fn put_many(&mut self, objects: Vec<(ObjectId, Arc<Object>)>) {
        for (id, object) in objects {
            if !self.contains(id) {
                self.put_with_id(id, object);
            }
        }
    }

    /// Fetches an object expected to be a blob.
    fn blob(&self, id: ObjectId) -> Result<Arc<Object>> {
        expect_kind(self, id, "blob")
    }

    /// Fetches and clones a tree (mutation needs ownership). Walk-only
    /// callers use [`ObjectStore::tree_ref`] instead — cloning a wide
    /// tree per visit is pure overhead on hot paths.
    fn tree(&self, id: ObjectId) -> Result<crate::object::Tree> {
        let obj = expect_kind(self, id, "tree")?;
        Ok(obj.as_tree().expect("checked kind").clone())
    }

    /// Fetches and clones a commit. Walk-only callers use
    /// [`ObjectStore::commit_ref`] instead.
    fn commit(&self, id: ObjectId) -> Result<crate::object::Commit> {
        let obj = expect_kind(self, id, "commit")?;
        Ok(obj.as_commit().expect("checked kind").clone())
    }

    /// Fetches a commit **without cloning it**: the shared handle is
    /// kind-checked, so `.as_commit().expect("checked kind")` on the
    /// result is safe. This is what history walks (`log`, `merge_base`,
    /// reachability, annotate) use — a walk visits every commit once and
    /// needs only to *read* parents and timestamps, so cloning each
    /// `Commit` (parents vector, author strings, message) per visit is
    /// pure allocation overhead.
    fn commit_ref(&self, id: ObjectId) -> Result<Arc<Object>> {
        expect_kind(self, id, "commit")
    }

    /// Fetches a tree without cloning it (see [`ObjectStore::commit_ref`];
    /// the same applies to tree walks — snapshot listing, path
    /// resolution).
    fn tree_ref(&self, id: ObjectId) -> Result<Arc<Object>> {
        expect_kind(self, id, "tree")
    }

    /// The commit-graph index over this store's history, when the backend
    /// maintains one ([`crate::graph::CommitGraph`]): [`crate::PackStore`]
    /// loads the `GLCG` sidecar written by its own `repack`/`gc`;
    /// wrappers forward to their inner backend. `None` (the default)
    /// means history walks fall back to decoding commits — always
    /// correct, just slower. Callers must treat the graph as possibly
    /// *stale*: a commit absent from it simply is not covered, so walks
    /// check their starting points with [`crate::graph::CommitGraph::lookup`]
    /// before trusting it.
    fn commit_graph(&self) -> Option<Arc<crate::graph::CommitGraph>> {
        None
    }

    /// Number of pack records stored as deltas, when the backend packs
    /// its objects ([`crate::PackStore`]); `None` (the default) for
    /// backends with no delta concept. Wrappers forward to their inner
    /// backend.
    fn delta_objects(&self) -> Option<u64> {
        None
    }

    /// Fetches blob data directly.
    fn blob_data(&self, id: ObjectId) -> Result<bytes::Bytes> {
        let obj = expect_kind(self, id, "blob")?;
        Ok(obj.as_blob().expect("checked kind").data.clone())
    }

    /// Cache-effectiveness counters, when a read cache sits in this
    /// backend's stack ([`CachedStore`] reports its LRU; everything else
    /// returns `None`). This is the introspection hook that lets code
    /// holding a `&dyn ObjectStore` — e.g. the hub's `store_stats`
    /// endpoint — surface cache metrics without knowing the backend.
    fn cache_metrics(&self) -> Option<CacheStats> {
        None
    }

    /// Runs storage maintenance, keeping only objects reachable from
    /// `roots`: [`crate::PackStore`] consolidates packs + loose overflow
    /// into one fresh pack and drops the rest ([`crate::PackStore::gc`]);
    /// wrappers forward to their inner backend. Returns `None` when the
    /// backend has no maintenance concept (in-memory and plain loose
    /// stores).
    fn maintain(&mut self, roots: &[ObjectId]) -> Option<Result<crate::pack::MaintenanceReport>> {
        let _ = roots;
        None
    }

    /// Collects every object reachable from `roots` (commits walk to
    /// their trees and parents; trees walk to entries). Missing objects
    /// are an error — a reachable closure must be complete.
    fn reachable_closure(&self, roots: &[ObjectId]) -> Result<Vec<ObjectId>> {
        let mut seen = HashSet::new();
        let mut stack: Vec<ObjectId> = roots.to_vec();
        let mut out = Vec::new();
        while let Some(id) = stack.pop() {
            if !seen.insert(id) {
                continue;
            }
            let obj = self.get(id)?;
            out.push(id);
            match &*obj {
                Object::Blob(_) => {}
                Object::Tree(t) => {
                    for (_, entry) in t.iter() {
                        stack.push(entry.id);
                    }
                }
                Object::Commit(c) => {
                    stack.push(c.tree);
                    for p in &c.parents {
                        stack.push(*p);
                    }
                }
            }
        }
        Ok(out)
    }
}

/// Verifies that `bytes` really hash to the claimed `id` — the integrity
/// check shared by every raw-bytes path.
fn verify_claimed_id(id: ObjectId, bytes: &[u8]) -> Result<()> {
    let actual = ObjectId::hash_bytes(bytes);
    if actual != id {
        return Err(GitError::Corrupt(format!(
            "object {} does not match its content: bytes hash to {}",
            id.short(),
            actual.short()
        )));
    }
    Ok(())
}

fn expect_kind<S: ObjectStore + ?Sized>(
    store: &S,
    id: ObjectId,
    expected: &'static str,
) -> Result<Arc<Object>> {
    let obj = store.get(id)?;
    if obj.kind() != expected {
        return Err(GitError::WrongKind {
            id,
            expected,
            actual: obj.kind(),
        });
    }
    Ok(obj)
}

/// Convenience methods that need generics and therefore live outside the
/// object-safe trait. Blanket-implemented for every store, including
/// `dyn ObjectStore`.
pub trait ObjectStoreExt: ObjectStore {
    /// Stores raw bytes as a blob.
    fn put_blob(&mut self, data: impl Into<bytes::Bytes>) -> ObjectId {
        self.put(Object::Blob(Blob::new(data.into())))
    }
}

impl<S: ObjectStore + ?Sized> ObjectStoreExt for S {}

impl Clone for Box<dyn ObjectStore> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

impl ObjectStore for Box<dyn ObjectStore> {
    fn get(&self, id: ObjectId) -> Result<Arc<Object>> {
        (**self).get(id)
    }
    fn put_with_id(&mut self, id: ObjectId, object: Arc<Object>) {
        (**self).put_with_id(id, object)
    }
    fn contains(&self, id: ObjectId) -> bool {
        (**self).contains(id)
    }
    fn len(&self) -> usize {
        (**self).len()
    }
    fn ids(&self) -> Vec<ObjectId> {
        (**self).ids()
    }
    // Forward the provided methods with backend-specific overrides too,
    // so e.g. `DiskStore`'s no-decode `put_raw` survives boxing.
    fn put_raw(&mut self, id: ObjectId, bytes: &[u8]) -> Result<ObjectId> {
        (**self).put_raw(id, bytes)
    }
    fn put_many(&mut self, objects: Vec<(ObjectId, Arc<Object>)>) {
        (**self).put_many(objects)
    }
    fn cache_metrics(&self) -> Option<CacheStats> {
        (**self).cache_metrics()
    }
    fn commit_graph(&self) -> Option<Arc<crate::graph::CommitGraph>> {
        (**self).commit_graph()
    }
    fn delta_objects(&self) -> Option<u64> {
        (**self).delta_objects()
    }
    fn maintain(&mut self, roots: &[ObjectId]) -> Option<Result<crate::pack::MaintenanceReport>> {
        (**self).maintain(roots)
    }
    fn clone_box(&self) -> Box<dyn ObjectStore> {
        (**self).clone_box()
    }
    fn as_any(&self) -> &dyn std::any::Any {
        (**self).as_any()
    }
}

/// The historical name of the in-memory object database; kept as an alias
/// so existing call sites and docs keep working.
pub type Odb = MemStore;

// ---------------------------------------------------------------------
// MemStore
// ---------------------------------------------------------------------

/// An in-memory content-addressed object database (the default backend).
#[derive(Debug, Clone, Default)]
pub struct MemStore {
    objects: HashMap<ObjectId, Arc<Object>>,
}

impl MemStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        MemStore {
            objects: HashMap::new(),
        }
    }

    /// Iterates all `(id, object)` pairs in unspecified order (the
    /// in-memory store can iterate without fetching; generic code uses
    /// [`ObjectStore::ids`] + [`ObjectStore::get`] instead).
    pub fn iter(&self) -> impl Iterator<Item = (ObjectId, &Arc<Object>)> {
        self.objects.iter().map(|(id, obj)| (*id, obj))
    }
}

impl ObjectStore for MemStore {
    fn get(&self, id: ObjectId) -> Result<Arc<Object>> {
        self.objects
            .get(&id)
            .cloned()
            .ok_or(GitError::ObjectNotFound(id))
    }

    fn put_with_id(&mut self, id: ObjectId, object: Arc<Object>) {
        debug_assert_eq!(object.id(), id, "put_with_id called with a mismatched id");
        self.objects.entry(id).or_insert(object);
    }

    fn contains(&self, id: ObjectId) -> bool {
        self.objects.contains_key(&id)
    }

    fn len(&self) -> usize {
        self.objects.len()
    }

    fn ids(&self) -> Vec<ObjectId> {
        self.objects.keys().copied().collect()
    }

    fn clone_box(&self) -> Box<dyn ObjectStore> {
        Box::new(self.clone())
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

// ---------------------------------------------------------------------
// DiskStore
// ---------------------------------------------------------------------

/// A durable object database: loose objects under a root directory, in
/// Git's sharded layout (`<root>/ab/cdef...` for id `abcdef...`), each
/// file holding the object's canonical bytes.
///
/// * `open` scans the shard directories once to index what is present;
///   after that, `contains`/`len` are in-memory operations.
/// * `put` writes through to disk immediately (via a temp file + rename,
///   so concurrent writers of the same content-addressed object are
///   safe). If an I/O error occurs, the object is kept in a staging map
///   so the store stays consistent, and the error is surfaced by the
///   next [`DiskStore::flush`].
/// * `get` reads and decodes on every call, verifying that the bytes
///   hash back to the requested id (corruption is detected at read
///   time). Wrap a `DiskStore` in a [`CachedStore`] for hot paths.
#[derive(Debug, Clone)]
pub struct DiskStore {
    root: PathBuf,
    ids: HashSet<ObjectId>,
    /// Objects whose disk write failed; kept readable, flushed later.
    staged: HashMap<ObjectId, Arc<Object>>,
    first_error: Option<String>,
}

impl DiskStore {
    /// Opens (creating if needed) the store rooted at `root` and indexes
    /// the objects already present.
    pub fn open(root: impl Into<PathBuf>) -> Result<DiskStore> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        let mut ids = HashSet::new();
        for bucket in fs::read_dir(&root)? {
            let bucket = bucket?.path();
            let Some(prefix) = bucket
                .file_name()
                .and_then(|n| n.to_str())
                .map(str::to_owned)
            else {
                continue;
            };
            if !bucket.is_dir() || prefix.len() != 2 {
                continue;
            }
            for entry in fs::read_dir(&bucket)? {
                let entry = entry?.path();
                let Some(rest) = entry.file_name().and_then(|n| n.to_str()) else {
                    continue;
                };
                if let Some(id) = ObjectId::from_hex(&format!("{prefix}{rest}")) {
                    ids.insert(id);
                }
            }
        }
        Ok(DiskStore {
            root,
            ids,
            staged: HashMap::new(),
            first_error: None,
        })
    }

    /// The directory objects are stored under.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// True when every object this handle holds has reached disk (no
    /// staged writes pending a [`DiskStore::flush`]).
    pub fn is_durable(&self) -> bool {
        self.staged.is_empty()
    }

    /// Retries any writes that previously failed and reports the first
    /// recorded I/O error if the store still is not fully durable.
    /// A no-op on a healthy store.
    pub fn flush(&mut self) -> Result<()> {
        if self.staged.is_empty() {
            self.first_error = None;
            return Ok(());
        }
        let mut failed = HashMap::new();
        let mut error = None;
        for (id, object) in std::mem::take(&mut self.staged) {
            match self.write_object(id, &object.canonical_bytes()) {
                Ok(()) => {
                    self.ids.insert(id);
                }
                Err(e) => {
                    // Keep the object readable and retryable; report the
                    // oldest recorded error after attempting everything.
                    error.get_or_insert_with(|| {
                        self.first_error.clone().unwrap_or_else(|| e.to_string())
                    });
                    failed.insert(id, object);
                }
            }
        }
        self.staged = failed;
        match error {
            Some(msg) => Err(GitError::Io(msg)),
            None => {
                self.first_error = None;
                Ok(())
            }
        }
    }

    fn object_file(&self, id: ObjectId) -> PathBuf {
        let hex = id.to_hex();
        self.root.join(&hex[..2]).join(&hex[2..])
    }

    /// `contains` for the write paths: like [`ObjectStore::contains`],
    /// but when the object turns out to exist only as a file (written by
    /// another handle onto the same directory), the id is pulled into the
    /// index so `ids()`/`len()` reflect it from now on.
    fn known(&mut self, id: ObjectId) -> bool {
        if self.ids.contains(&id) || self.staged.contains_key(&id) {
            return true;
        }
        if self.object_file(id).is_file() {
            self.ids.insert(id);
            return true;
        }
        false
    }

    fn write_object(&self, id: ObjectId, bytes: &[u8]) -> std::io::Result<()> {
        // No exists() pre-check: callers filter through `known()`, and a
        // racing duplicate write produces identical bytes via temp+rename
        // anyway, so re-writing is harmless — just skip the extra stat.
        let file = self.object_file(id);
        let bucket = file.parent().expect("object files live in a bucket");
        fs::create_dir_all(bucket)?;
        write_via_rename(bucket, &file, bytes)
    }
}

/// Temp-then-rename write, keeping readers (and racing writers of the
/// same object, which by content addressing write identical bytes) from
/// ever seeing a partial file. The bucket directory must already exist.
/// Shared with [`crate::pack`], whose pack/idx files are content-named
/// and need the same atomicity.
pub(crate) fn write_via_rename(bucket: &Path, file: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let tmp = bucket.join(format!(
        ".tmp-{}-{:x}",
        std::process::id(),
        bytes.as_ptr() as usize
    ));
    fs::write(&tmp, bytes)?;
    match fs::rename(&tmp, file) {
        Ok(()) => Ok(()),
        Err(e) => {
            let _ = fs::remove_file(&tmp);
            if file.exists() {
                Ok(()) // lost a benign race to an identical writer
            } else {
                Err(e)
            }
        }
    }
}

impl ObjectStore for DiskStore {
    fn get(&self, id: ObjectId) -> Result<Arc<Object>> {
        if let Some(obj) = self.staged.get(&id) {
            return Ok(Arc::clone(obj));
        }
        let bytes = match fs::read(self.object_file(id)) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Err(GitError::ObjectNotFound(id))
            }
            Err(e) => return Err(GitError::Io(e.to_string())),
        };
        let actual = ObjectId::hash_bytes(&bytes);
        if actual != id {
            return Err(GitError::Corrupt(format!(
                "object file {} holds bytes hashing to {}",
                id.short(),
                actual.short()
            )));
        }
        Ok(Arc::new(decode_object(&bytes)?))
    }

    /// Raw-bytes fast path: after the hash check, the bytes go straight
    /// to disk — no decode at all (the provided method would decode just
    /// to re-encode).
    fn put_raw(&mut self, id: ObjectId, bytes: &[u8]) -> Result<ObjectId> {
        verify_claimed_id(id, bytes)?;
        if self.known(id) {
            return Ok(id);
        }
        match self.write_object(id, bytes) {
            Ok(()) => {
                self.ids.insert(id);
            }
            Err(e) => {
                // Fall back to staging the decoded object in memory.
                self.first_error.get_or_insert_with(|| e.to_string());
                self.staged.insert(id, Arc::new(decode_object(bytes)?));
            }
        }
        Ok(id)
    }

    fn put_with_id(&mut self, id: ObjectId, object: Arc<Object>) {
        debug_assert_eq!(object.id(), id, "put_with_id called with a mismatched id");
        if self.known(id) {
            return;
        }
        match self.write_object(id, &object.canonical_bytes()) {
            Ok(()) => {
                self.ids.insert(id);
            }
            Err(e) => {
                self.first_error.get_or_insert_with(|| e.to_string());
                self.staged.insert(id, object);
            }
        }
    }

    /// Batch insert, amortizing the per-object `create_dir_all` syscall:
    /// each shard directory is created once per batch, and subsequent
    /// writes into it skip the directory check entirely.
    fn put_many(&mut self, objects: Vec<(ObjectId, Arc<Object>)>) {
        let mut made_buckets: HashSet<PathBuf> = HashSet::new();
        for (id, object) in objects {
            debug_assert_eq!(object.id(), id, "put_many called with a mismatched id");
            if self.known(id) {
                continue;
            }
            let file = self.object_file(id);
            let bucket = file.parent().expect("object files live in a bucket");
            let result = if made_buckets.contains(bucket) {
                write_via_rename(bucket, &file, &object.canonical_bytes())
            } else {
                match fs::create_dir_all(bucket) {
                    Ok(()) => {
                        made_buckets.insert(bucket.to_path_buf());
                        write_via_rename(bucket, &file, &object.canonical_bytes())
                    }
                    Err(e) => Err(e),
                }
            };
            match result {
                Ok(()) => {
                    self.ids.insert(id);
                }
                Err(e) => {
                    self.first_error.get_or_insert_with(|| e.to_string());
                    self.staged.insert(id, object);
                }
            }
        }
    }

    fn contains(&self, id: ObjectId) -> bool {
        self.ids.contains(&id) || self.staged.contains_key(&id) || self.object_file(id).is_file()
    }

    fn len(&self) -> usize {
        self.ids.len() + self.staged.len()
    }

    fn ids(&self) -> Vec<ObjectId> {
        self.ids
            .iter()
            .copied()
            .chain(self.staged.keys().copied())
            .collect()
    }

    fn clone_box(&self) -> Box<dyn ObjectStore> {
        Box::new(self.clone())
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

// ---------------------------------------------------------------------
// CachedStore
// ---------------------------------------------------------------------

/// Default capacity (in objects) of a [`CachedStore`].
pub const DEFAULT_CACHE_CAPACITY: usize = 8192;

/// An LRU read-through cache over another backend.
///
/// `get` serves hot objects from memory; misses fall through to the
/// inner store and populate the cache. Writes go through to the inner
/// store and prime the cache (a freshly written object is usually read
/// next). `contains`/`len`/`ids` always reflect the inner store.
pub struct CachedStore<S> {
    inner: S,
    cache: Mutex<Lru>,
}

impl<S: ObjectStore> CachedStore<S> {
    /// Wraps `inner` with the default cache capacity.
    pub fn new(inner: S) -> Self {
        Self::with_capacity(inner, DEFAULT_CACHE_CAPACITY)
    }

    /// Wraps `inner`, keeping at most `capacity` objects in memory.
    pub fn with_capacity(inner: S, capacity: usize) -> Self {
        CachedStore {
            inner,
            cache: Mutex::new(Lru::new(capacity)),
        }
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Unwraps into the inner backend, discarding the cache.
    pub fn into_inner(self) -> S {
        self.inner
    }

    /// `(hits, misses)` since creation — used by benchmarks and tests to
    /// verify the cache is actually serving hot reads.
    pub fn cache_stats(&self) -> (u64, u64) {
        let stats = self.stats();
        (stats.hits, stats.misses)
    }

    /// Full cache-effectiveness counters since creation. The hub and the
    /// `store_backends` bench surface these for capacity planning: a high
    /// eviction count with a low hit rate means the capacity is too small
    /// for the working set.
    pub fn stats(&self) -> CacheStats {
        let cache = self.cache.lock().unwrap_or_else(|e| e.into_inner());
        CacheStats {
            hits: cache.hits,
            misses: cache.misses,
            evictions: cache.evictions,
            len: cache.map.len(),
            capacity: cache.capacity,
        }
    }
}

/// Counters reported by [`CachedStore::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Reads served from memory.
    pub hits: u64,
    /// Reads that fell through to the inner store.
    pub misses: u64,
    /// Objects pushed out by the LRU policy.
    pub evictions: u64,
    /// Objects currently cached.
    pub len: usize,
    /// Maximum objects the cache will hold.
    pub capacity: usize,
}

impl CacheStats {
    /// Hit fraction in `[0, 1]` (0 when nothing was read yet).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

impl<S: fmt::Debug> fmt::Debug for CachedStore<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cache = self.cache.lock().unwrap_or_else(|e| e.into_inner());
        f.debug_struct("CachedStore")
            .field("inner", &self.inner)
            .field("cached", &cache.map.len())
            .field("capacity", &cache.capacity)
            .finish()
    }
}

impl<S: Clone> Clone for CachedStore<S> {
    fn clone(&self) -> Self {
        let cache = self.cache.lock().unwrap_or_else(|e| e.into_inner());
        CachedStore {
            inner: self.inner.clone(),
            cache: Mutex::new(cache.clone()),
        }
    }
}

impl<S: ObjectStore + Clone + 'static> ObjectStore for CachedStore<S> {
    fn get(&self, id: ObjectId) -> Result<Arc<Object>> {
        {
            let mut cache = self.cache.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(obj) = cache.get(id) {
                return Ok(obj);
            }
        }
        let obj = self.inner.get(id)?;
        let mut cache = self.cache.lock().unwrap_or_else(|e| e.into_inner());
        cache.insert(id, Arc::clone(&obj));
        Ok(obj)
    }

    fn put_with_id(&mut self, id: ObjectId, object: Arc<Object>) {
        self.inner.put_with_id(id, Arc::clone(&object));
        let mut cache = self.cache.lock().unwrap_or_else(|e| e.into_inner());
        cache.insert(id, object);
    }

    fn contains(&self, id: ObjectId) -> bool {
        self.inner.contains(id)
    }

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn ids(&self) -> Vec<ObjectId> {
        self.inner.ids()
    }

    /// Delegates so the inner backend's raw-bytes fast path is kept
    /// (`DiskStore` writes the bytes without decoding them).
    fn put_raw(&mut self, id: ObjectId, bytes: &[u8]) -> Result<ObjectId> {
        self.inner.put_raw(id, bytes)
    }

    /// Delegates the batch to the inner backend (keeping its amortized
    /// path) and primes the cache with the freshly written objects.
    fn put_many(&mut self, objects: Vec<(ObjectId, Arc<Object>)>) {
        {
            let mut cache = self.cache.lock().unwrap_or_else(|e| e.into_inner());
            for (id, object) in &objects {
                cache.insert(*id, Arc::clone(object));
            }
        }
        self.inner.put_many(objects);
    }

    fn cache_metrics(&self) -> Option<CacheStats> {
        Some(self.stats())
    }

    /// Forwards to the inner backend, so a `CachedStore<PackStore>` —
    /// the local tool's and the hub's serving stack — exposes the pack
    /// layer's commit-graph to history walks.
    fn commit_graph(&self) -> Option<Arc<crate::graph::CommitGraph>> {
        self.inner.commit_graph()
    }

    fn delta_objects(&self) -> Option<u64> {
        self.inner.delta_objects()
    }

    /// Forwards to the inner backend and, when maintenance actually ran,
    /// drops every cached object: gc may have discarded unreachable ids,
    /// and the cache must not keep serving them.
    fn maintain(&mut self, roots: &[ObjectId]) -> Option<Result<crate::pack::MaintenanceReport>> {
        let report = self.inner.maintain(roots)?;
        self.cache.lock().unwrap_or_else(|e| e.into_inner()).clear();
        Some(report)
    }

    fn clone_box(&self) -> Box<dyn ObjectStore> {
        Box::new(self.clone())
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

/// A small exact-LRU: map plus a recency index ordered by logical tick.
#[derive(Clone)]
struct Lru {
    capacity: usize,
    tick: u64,
    map: HashMap<ObjectId, (Arc<Object>, u64)>,
    recency: BTreeMap<u64, ObjectId>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl Lru {
    fn new(capacity: usize) -> Self {
        Lru {
            capacity: capacity.max(1),
            tick: 0,
            map: HashMap::new(),
            recency: BTreeMap::new(),
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    fn touch(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    fn get(&mut self, id: ObjectId) -> Option<Arc<Object>> {
        let tick = self.touch();
        match self.map.get_mut(&id) {
            Some((obj, last)) => {
                self.recency.remove(last);
                *last = tick;
                self.recency.insert(tick, id);
                self.hits += 1;
                Some(Arc::clone(obj))
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    fn insert(&mut self, id: ObjectId, obj: Arc<Object>) {
        let tick = self.touch();
        if let Some((_, last)) = self.map.remove(&id) {
            self.recency.remove(&last);
        }
        self.map.insert(id, (obj, tick));
        self.recency.insert(tick, id);
        while self.map.len() > self.capacity {
            let (_, evicted) = self.recency.pop_first().expect("recency tracks map");
            self.map.remove(&evicted);
            self.evictions += 1;
        }
    }

    /// Empties the cache, keeping the counters (an invalidation, not a
    /// reset — hit/miss history is still meaningful for capacity
    /// planning).
    fn clear(&mut self) {
        self.map.clear();
        self.recency.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::{Commit, EntryMode, Signature, Tree, TreeEntry};

    fn sample_commit<S: ObjectStore + ?Sized>(
        odb: &mut S,
        msg: &str,
        parents: Vec<ObjectId>,
    ) -> ObjectId {
        let blob = odb.put_blob(format!("content of {msg}"));
        let mut tree = Tree::new();
        tree.insert(
            "f.txt",
            TreeEntry {
                mode: EntryMode::File,
                id: blob,
            },
        );
        let tree_id = odb.put(Object::Tree(tree));
        odb.put(Object::Commit(Commit {
            tree: tree_id,
            parents,
            author: Signature::new("t", "t@t", 0),
            message: msg.into(),
        }))
    }

    fn temp_dir(tag: &str) -> PathBuf {
        use std::sync::atomic::{AtomicU64, Ordering};
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "gitlite-store-test-{tag}-{}-{n}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn put_get_round_trip() {
        let mut odb = Odb::new();
        let id = odb.put_blob("hello");
        assert!(odb.contains(id));
        assert_eq!(odb.blob_data(id).unwrap().as_ref(), b"hello");
    }

    #[test]
    fn put_is_idempotent() {
        let mut odb = Odb::new();
        let a = odb.put_blob("same");
        let b = odb.put_blob("same");
        assert_eq!(a, b);
        assert_eq!(odb.len(), 1);
    }

    #[test]
    fn missing_object_errors() {
        let odb = Odb::new();
        let id = ObjectId::hash_bytes(b"nope");
        assert_eq!(odb.get(id).unwrap_err(), GitError::ObjectNotFound(id));
    }

    #[test]
    fn kind_mismatch_errors() {
        let mut odb = Odb::new();
        let id = odb.put_blob("x");
        let err = odb.tree(id).unwrap_err();
        assert_eq!(
            err,
            GitError::WrongKind {
                id,
                expected: "tree",
                actual: "blob"
            }
        );
    }

    #[test]
    fn reachable_closure_walks_commits_trees_blobs() {
        let mut odb = Odb::new();
        let c1 = sample_commit(&mut odb, "one", vec![]);
        let c2 = sample_commit(&mut odb, "two", vec![c1]);
        // Unreachable garbage:
        odb.put_blob("garbage");
        let closure = odb.reachable_closure(&[c2]).unwrap();
        // c2 + c1 + 2 trees + 2 blobs = 6
        assert_eq!(closure.len(), 6);
        assert!(closure.contains(&c1));
        assert!(closure.contains(&c2));
    }

    #[test]
    fn reachable_closure_detects_missing() {
        let mut odb = Odb::new();
        let c1 = sample_commit(&mut odb, "one", vec![]);
        // Commit referencing a parent we never stored.
        let dangling = Commit {
            tree: odb.commit(c1).unwrap().tree,
            parents: vec![ObjectId::hash_bytes(b"missing")],
            author: Signature::new("t", "t@t", 0),
            message: "dangling".into(),
        };
        let c2 = odb.put(Object::Commit(dangling));
        assert!(matches!(
            odb.reachable_closure(&[c2]),
            Err(GitError::ObjectNotFound(_))
        ));
    }

    #[test]
    fn put_raw_verifies_the_claimed_id() {
        let mut odb = Odb::new();
        let blob = Blob::new(&b"raw"[..]);
        let bytes = blob.canonical_bytes();
        let id = odb.put_raw(blob.id(), &bytes).unwrap();
        assert_eq!(odb.blob_data(id).unwrap().as_ref(), b"raw");
        // Lying about the id is caught by a single hash over the bytes.
        let wrong = ObjectId::hash_bytes(b"lie");
        assert!(matches!(
            odb.put_raw(wrong, &bytes),
            Err(GitError::Corrupt(_))
        ));
    }

    #[test]
    fn disk_store_persists_and_reopens() {
        let dir = temp_dir("reopen");
        let mut disk = DiskStore::open(&dir).unwrap();
        let c1 = sample_commit(&mut disk, "one", vec![]);
        let blob = disk.put_blob("loose");
        assert_eq!(disk.len(), 4);
        drop(disk);

        let reopened = DiskStore::open(&dir).unwrap();
        assert_eq!(reopened.len(), 4);
        assert!(reopened.contains(c1));
        assert_eq!(reopened.blob_data(blob).unwrap().as_ref(), b"loose");
        assert_eq!(reopened.commit(c1).unwrap().message, "one");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn disk_store_layout_is_sharded_canonical_bytes() {
        let dir = temp_dir("layout");
        let mut disk = DiskStore::open(&dir).unwrap();
        let id = disk.put_blob("sharded");
        let hex = id.to_hex();
        let file = dir.join(&hex[..2]).join(&hex[2..]);
        assert!(file.is_file());
        let bytes = fs::read(&file).unwrap();
        assert_eq!(ObjectId::hash_bytes(&bytes), id);
        assert_eq!(decode_object(&bytes).unwrap().id(), id);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn disk_store_put_raw_writes_without_decoding() {
        let dir = temp_dir("raw");
        let mut disk = DiskStore::open(&dir).unwrap();
        let blob = Blob::new(&b"raw bytes"[..]);
        let bytes = blob.canonical_bytes();
        let id = disk.put_raw(blob.id(), &bytes).unwrap();
        assert_eq!(disk.blob_data(id).unwrap().as_ref(), b"raw bytes");
        let wrong = ObjectId::hash_bytes(b"lie");
        assert!(matches!(
            disk.put_raw(wrong, &bytes),
            Err(GitError::Corrupt(_))
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn disk_store_detects_corruption_on_read() {
        let dir = temp_dir("corrupt");
        let mut disk = DiskStore::open(&dir).unwrap();
        let id = disk.put_blob("pristine");
        let hex = id.to_hex();
        fs::write(dir.join(&hex[..2]).join(&hex[2..]), b"tampered").unwrap();
        assert!(matches!(disk.get(id), Err(GitError::Corrupt(_))));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn disk_store_clones_share_the_medium() {
        let dir = temp_dir("clone");
        let mut a = DiskStore::open(&dir).unwrap();
        let mut b = a.clone();
        let id = b.put_blob("written by clone");
        // The original can read it (content addressing makes sharing safe).
        assert_eq!(
            a.get(id).unwrap().as_blob().unwrap().data.as_ref(),
            b"written by clone"
        );
        a.flush().unwrap();
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn disk_store_put_indexes_objects_written_by_another_handle() {
        let dir = temp_dir("shared-index");
        let mut a = DiskStore::open(&dir).unwrap();
        let mut b = a.clone();
        let id = b.put_blob("written by b");
        assert!(!a.ids().contains(&id), "a has not seen the object yet");
        // a's put must notice the file already exists AND index it, so
        // ids()/len() keep matching what the store reports as contained.
        a.put_with_id(id, b.get(id).unwrap());
        assert!(a.ids().contains(&id));
        assert_eq!(a.len(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn put_many_batches_across_backends() {
        let dir = temp_dir("put-many");
        let blobs: Vec<(ObjectId, Arc<Object>)> = (0..20)
            .map(|i| {
                let blob = Blob::new(format!("batch {i}").into_bytes());
                (blob.id(), Arc::new(Object::Blob(blob)))
            })
            .collect();

        // Default impl (MemStore) and the DiskStore override agree.
        let mut mem = MemStore::new();
        mem.put_many(blobs.clone());
        let mut disk = DiskStore::open(&dir).unwrap();
        disk.put_many(blobs.clone());
        assert_eq!(mem.len(), 20);
        assert_eq!(disk.len(), 20);
        for (id, _) in &blobs {
            assert!(disk.contains(*id));
            assert_eq!(mem.get(*id).unwrap(), disk.get(*id).unwrap());
        }
        // Batches are idempotent, and re-batching indexes nothing twice.
        disk.put_many(blobs.clone());
        assert_eq!(disk.len(), 20);
        // A fresh handle sees everything (the writes really hit disk).
        assert_eq!(DiskStore::open(&dir).unwrap().len(), 20);

        // The cached wrapper primes its cache from the batch: reading
        // every object back is pure hits.
        let mut cached = CachedStore::new(MemStore::new());
        cached.put_many(blobs.clone());
        for (id, _) in &blobs {
            cached.get(*id).unwrap();
        }
        let stats = cached.stats();
        assert_eq!(stats.hits, 20);
        assert_eq!(stats.misses, 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn cache_stats_count_evictions() {
        let mut cached = CachedStore::with_capacity(MemStore::new(), 2);
        let ids: Vec<ObjectId> = (0..5).map(|i| cached.put_blob(format!("v{i}"))).collect();
        let stats = cached.stats();
        assert_eq!(stats.evictions, 3, "capacity 2, 5 inserts");
        assert_eq!(stats.len, 2);
        assert_eq!(stats.capacity, 2);
        // Hit rate reflects a miss (evicted) then hits (recached).
        cached.get(ids[0]).unwrap();
        cached.get(ids[0]).unwrap();
        let stats = cached.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 1);
        assert!((stats.hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn put_shared_deduplicates_against_put() {
        let mut odb = Odb::new();
        let id = odb.put_blob("shared");
        let same = odb.put_shared(odb.get(id).unwrap());
        assert_eq!(same, id);
        assert_eq!(odb.len(), 1);
    }

    #[test]
    fn cached_store_serves_hot_reads_from_memory() {
        let dir = temp_dir("cache");
        let mut cached = CachedStore::new(DiskStore::open(&dir).unwrap());
        let id = cached.put_blob("hot");
        for _ in 0..10 {
            assert_eq!(cached.blob_data(id).unwrap().as_ref(), b"hot");
        }
        let (hits, misses) = cached.cache_stats();
        assert_eq!(hits, 10, "writes prime the cache; every read hits");
        assert_eq!(misses, 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn cached_store_evicts_least_recently_used() {
        let mut cached = CachedStore::with_capacity(MemStore::new(), 2);
        let a = cached.put_blob("a");
        let b = cached.put_blob("b");
        let c = cached.put_blob("c"); // evicts a
        cached.get(b).unwrap();
        cached.get(c).unwrap();
        let before = cached.cache_stats();
        cached.get(a).unwrap(); // miss: was evicted, refetched from inner
        let after = cached.cache_stats();
        assert_eq!(after.1, before.1 + 1);
        // All objects still retrievable (inner store is authoritative).
        assert_eq!(cached.len(), 3);
    }

    #[test]
    fn boxed_stores_clone_and_delegate() {
        let mut store: Box<dyn ObjectStore> = Box::new(MemStore::new());
        let id = store.put_blob("boxed");
        let copy = store.clone();
        assert!(copy.contains(id));
        assert_eq!(copy.ids(), vec![id]);
        assert_eq!(copy.blob_data(id).unwrap().as_ref(), b"boxed");
    }
}
