//! The object database: content-addressed storage for blobs, trees and
//! commits.

use crate::error::{GitError, Result};
use crate::hash::ObjectId;
use crate::object::{Blob, Commit, Object, Tree};
use std::collections::HashMap;
use std::sync::Arc;

/// An in-memory content-addressed object database.
///
/// Objects are immutable once stored (they are keyed by the hash of their
/// bytes), so they are kept behind `Arc` and shared freely — a clone of the
/// store or a fetched object never copies object payloads.
#[derive(Debug, Clone, Default)]
pub struct Odb {
    objects: HashMap<ObjectId, Arc<Object>>,
}

impl Odb {
    /// Creates an empty store.
    pub fn new() -> Self {
        Odb { objects: HashMap::new() }
    }

    /// Number of stored objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// True when no objects are stored.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Stores an object, returning its id. Idempotent.
    pub fn put(&mut self, object: Object) -> ObjectId {
        let id = object.id();
        self.objects.entry(id).or_insert_with(|| Arc::new(object));
        id
    }

    /// Stores an already-shared object (used by object transfer, avoids a
    /// deep copy).
    pub fn put_shared(&mut self, object: Arc<Object>) -> ObjectId {
        let id = object.id();
        self.objects.entry(id).or_insert(object);
        id
    }

    /// True when the id is present.
    pub fn contains(&self, id: ObjectId) -> bool {
        self.objects.contains_key(&id)
    }

    /// Fetches an object.
    pub fn get(&self, id: ObjectId) -> Result<Arc<Object>> {
        self.objects.get(&id).cloned().ok_or(GitError::ObjectNotFound(id))
    }

    /// Fetches an object expected to be a blob.
    pub fn blob(&self, id: ObjectId) -> Result<Arc<Object>> {
        self.expect_kind(id, "blob")
    }

    /// Fetches and clones a tree (trees are small; mutation needs ownership).
    pub fn tree(&self, id: ObjectId) -> Result<Tree> {
        let obj = self.expect_kind(id, "tree")?;
        Ok(obj.as_tree().expect("checked kind").clone())
    }

    /// Fetches and clones a commit.
    pub fn commit(&self, id: ObjectId) -> Result<Commit> {
        let obj = self.expect_kind(id, "commit")?;
        Ok(obj.as_commit().expect("checked kind").clone())
    }

    /// Fetches blob data directly.
    pub fn blob_data(&self, id: ObjectId) -> Result<bytes::Bytes> {
        let obj = self.expect_kind(id, "blob")?;
        Ok(obj.as_blob().expect("checked kind").data.clone())
    }

    fn expect_kind(&self, id: ObjectId, expected: &'static str) -> Result<Arc<Object>> {
        let obj = self.get(id)?;
        if obj.kind() != expected {
            return Err(GitError::WrongKind { id, expected, actual: obj.kind() });
        }
        Ok(obj)
    }

    /// Iterates all `(id, object)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (ObjectId, &Arc<Object>)> {
        self.objects.iter().map(|(id, obj)| (*id, obj))
    }

    /// Convenience: store raw bytes as a blob.
    pub fn put_blob(&mut self, data: impl Into<bytes::Bytes>) -> ObjectId {
        self.put(Object::Blob(Blob::new(data.into())))
    }

    /// Collects every object reachable from `roots` (commits walk to their
    /// trees and parents; trees walk to entries). Missing objects are an
    /// error — a reachable closure must be complete.
    pub fn reachable_closure(&self, roots: &[ObjectId]) -> Result<Vec<ObjectId>> {
        let mut seen = std::collections::HashSet::new();
        let mut stack: Vec<ObjectId> = roots.to_vec();
        let mut out = Vec::new();
        while let Some(id) = stack.pop() {
            if !seen.insert(id) {
                continue;
            }
            let obj = self.get(id)?;
            out.push(id);
            match &*obj {
                Object::Blob(_) => {}
                Object::Tree(t) => {
                    for (_, entry) in t.iter() {
                        stack.push(entry.id);
                    }
                }
                Object::Commit(c) => {
                    stack.push(c.tree);
                    for p in &c.parents {
                        stack.push(*p);
                    }
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::{EntryMode, Signature, TreeEntry};

    fn sample_commit(odb: &mut Odb, msg: &str, parents: Vec<ObjectId>) -> ObjectId {
        let blob = odb.put_blob(format!("content of {msg}"));
        let mut tree = Tree::new();
        tree.insert("f.txt", TreeEntry { mode: EntryMode::File, id: blob });
        let tree_id = odb.put(Object::Tree(tree));
        odb.put(Object::Commit(Commit {
            tree: tree_id,
            parents,
            author: Signature::new("t", "t@t", 0),
            message: msg.into(),
        }))
    }

    #[test]
    fn put_get_round_trip() {
        let mut odb = Odb::new();
        let id = odb.put_blob("hello");
        assert!(odb.contains(id));
        assert_eq!(odb.blob_data(id).unwrap().as_ref(), b"hello");
    }

    #[test]
    fn put_is_idempotent() {
        let mut odb = Odb::new();
        let a = odb.put_blob("same");
        let b = odb.put_blob("same");
        assert_eq!(a, b);
        assert_eq!(odb.len(), 1);
    }

    #[test]
    fn missing_object_errors() {
        let odb = Odb::new();
        let id = ObjectId::hash_bytes(b"nope");
        assert_eq!(odb.get(id).unwrap_err(), GitError::ObjectNotFound(id));
    }

    #[test]
    fn kind_mismatch_errors() {
        let mut odb = Odb::new();
        let id = odb.put_blob("x");
        let err = odb.tree(id).unwrap_err();
        assert_eq!(err, GitError::WrongKind { id, expected: "tree", actual: "blob" });
    }

    #[test]
    fn reachable_closure_walks_commits_trees_blobs() {
        let mut odb = Odb::new();
        let c1 = sample_commit(&mut odb, "one", vec![]);
        let c2 = sample_commit(&mut odb, "two", vec![c1]);
        // Unreachable garbage:
        odb.put_blob("garbage");
        let closure = odb.reachable_closure(&[c2]).unwrap();
        // c2 + c1 + 2 trees + 2 blobs = 6
        assert_eq!(closure.len(), 6);
        assert!(closure.contains(&c1));
        assert!(closure.contains(&c2));
    }

    #[test]
    fn reachable_closure_detects_missing() {
        let mut odb = Odb::new();
        let c1 = sample_commit(&mut odb, "one", vec![]);
        // Commit referencing a parent we never stored.
        let dangling = Commit {
            tree: odb.commit(c1).unwrap().tree,
            parents: vec![ObjectId::hash_bytes(b"missing")],
            author: Signature::new("t", "t@t", 0),
            message: "dangling".into(),
        };
        let c2 = odb.put(Object::Commit(dangling));
        assert!(matches!(
            odb.reachable_closure(&[c2]),
            Err(GitError::ObjectNotFound(_))
        ));
    }
}
