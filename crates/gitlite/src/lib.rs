//! # gitlite — a from-scratch version-control substrate with Git semantics
//!
//! The GitCite paper (Chen & Davidson) defines its citation model over
//! Git's data model: a *project repository* is a DAG of versions, each
//! version a rooted directory tree (§2). The paper's implementation runs on
//! real Git and GitHub; this crate rebuilds the parts of Git the citation
//! system actually depends on, from scratch, so the reproduction is
//! self-contained and deterministic:
//!
//! * **Content addressing** — SHA-1 object ids over Git's canonical object
//!   encodings ([`hash`], [`object`], [`codec`]); identical content has the
//!   same id in every repository, which is what lets `CopyCite`/`ForkCite`
//!   deduplicate and track content across projects.
//! * **Object database** — blobs, trees, commits ([`store`]), including a
//!   packfile backend with fanout-indexed consolidated storage ([`pack`])
//!   and a generation-numbered commit-graph index that makes history
//!   walks near O(output) ([`graph`]).
//! * **Repositories** — branches, HEAD, worktree, commit/checkout/log
//!   ([`repo`], [`worktree`], [`snapshot`]).
//! * **Diffs** — tree diffs with rename detection, including inferred
//!   directory renames ([`diff`], [`textdiff`]); citation keys follow
//!   renames through these.
//! * **Merges** — merge-base selection and three-way merge with diff3
//!   conflict markers ([`mergebase`], [`merge`]), with an exclusion hook so
//!   `citation.cite` is never text-merged.
//! * **Remotes** — clone / fetch / push between repositories ([`remote`]).
//!
//! ```
//! use gitlite::{Repository, Signature, path};
//!
//! let mut repo = Repository::init("demo");
//! repo.worktree_mut().write(&path("README.md"), &b"# demo\n"[..]).unwrap();
//! let c1 = repo.commit(Signature::new("alice", "alice@example.org", 1), "initial").unwrap();
//! assert_eq!(repo.log_head().unwrap(), vec![c1]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod annotate;
pub mod codec;
pub mod diff;
pub mod error;
pub mod graph;
pub mod hash;
pub mod merge;
pub mod mergebase;
pub mod metrics;
pub mod object;
pub mod pack;
pub mod path;
pub mod remote;
pub mod repo;
pub mod snapshot;
pub mod store;
pub mod textdiff;
pub mod worktree;

pub use annotate::{annotate, LineOrigin};
pub use diff::{diff_listings, diff_trees, Rename, TreeDiff, RENAME_THRESHOLD};
pub use error::{GitError, Result};
pub use graph::{CommitGraph, GraphEntry, PathChange, GRAPH_FILE};
pub use hash::{ObjectId, Sha1};
pub use merge::{merge_listings, Conflict, ConflictKind, MergeOptions, MergeReport, TreeMerge};
pub use mergebase::{ancestor_set, merge_base};
pub use metrics::StoreReadStats;
pub use object::{Blob, Commit, EntryMode, Object, Signature, Tree, TreeEntry};
pub use pack::{
    apply_delta, compute_delta, encode_pack, encode_pack_deltified, index_pack, EncodedPack,
    MaintenanceReport, Pack, PackIndex, PackStore, MAX_DELTA_DEPTH, PACK_DIR,
};
pub use path::{path, PathError, RepoPath};
pub use remote::{clone_repository, clone_repository_into, fetch, push, transfer_objects};
pub use repo::{Head, Repository, DEFAULT_BRANCH};
pub use snapshot::{
    flatten_tree, read_tree, resolve_path, tree_directories, write_tree, write_tree_from_listing,
};
pub use store::{
    CacheStats, CachedStore, DiskStore, MemStore, ObjectStore, ObjectStoreExt, Odb,
    DEFAULT_CACHE_CAPACITY,
};
pub use textdiff::{
    bag_similarity, diff3_merge, lcs_matches, sequence_similarity, Diff3Result, MergeLabels,
};
pub use worktree::WorkTree;
