//! The commit-graph: a persisted, generation-numbered index of commit
//! history that makes ancestry walks near O(output).
//!
//! Every history question this system answers — `log`, `merge_base`,
//! reachability for push/fork checks and gc root closures, the citation
//! layer's audit scans — is a walk over the commit DAG. Without an index,
//! each visited commit must be fetched from the object store and decoded
//! from its canonical bytes, so a walk over an N-commit history costs
//! N store lookups *and* N decodes, every time. The commit-graph
//! (mirroring real Git's `commit-graph` file) precomputes exactly the
//! fields walks need and stores parents as *positions* into the index
//! itself, so a warm walk never touches the object store at all.
//!
//! # The `GLCG` file
//!
//! Same framing discipline as the pack formats ([`crate::pack`]): all
//! integers big-endian, a SHA-1 trailer over everything before it, and a
//! 256-entry fanout table over the sorted id list:
//!
//! ```text
//! "GLCG" | u32 version | u32 count | u32 edge_count
//! 256 × u32 cumulative fanout
//! count × 20-byte commit id (sorted ascending)
//! count × ( 20-byte tree id | i64 timestamp | u32 generation
//!         | u32 parent1 | u32 parent2 )
//! edge_count × u32 extra parent positions (octopus merges)
//! 20-byte SHA-1 trailer
//! ```
//!
//! `parent1`/`parent2` are positions into the sorted id table
//! (`0xffff_ffff` = no parent). A commit with more than two parents sets
//! the high bit of `parent2`; the low bits then index the extra-edges
//! table, which lists `parents[1..]` in order, the last entry flagged
//! with the high bit — exactly Git's octopus encoding. Parent *order* is
//! preserved (first-parent walks depend on it).
//!
//! # Generation numbers
//!
//! A commit's generation is the length of the longest path from it to a
//! root commit (roots have generation 0) — identical to the notion the
//! decode-walk `merge_base` computes on the fly. Because a parent's
//! generation is strictly smaller than its child's, generations bound
//! every ancestry question: an alleged ancestor with generation ≥ the
//! descendant's can be rejected without walking, and a best-first walk
//! keyed by `(generation, timestamp, id)` pops commits in strictly
//! decreasing key order, so the first common ancestor it pops *is* the
//! best one — no full ancestor sets.
//!
//! # Lifecycle
//!
//! The file lives next to the packs (`<root>/pack/commit-graph.glcg`)
//! and is written by [`crate::PackStore::repack`] / [`crate::PackStore::gc`]
//! (and therefore by `gitcite gc` and the hub's maintenance sweep). On
//! open, a present-but-corrupt or stale (referencing ids the store no
//! longer holds) graph is rebuilt from a full scan of the store's commit
//! objects — the same recovery policy as a damaged `.idx`. A *missing*
//! graph costs nothing at open and is built by the next maintenance run.
//! Commits created after the graph was written are simply absent from
//! it; walks starting at such a commit fall back to the always-correct
//! decode walk, so a stale graph can delay the speedup but never change
//! an answer.

use crate::error::{GitError, Result};
use crate::hash::ObjectId;
use crate::store::ObjectStore;
use std::collections::hash_map::Entry as MapEntry;
use std::collections::{BinaryHeap, HashMap, HashSet};

/// Magic bytes opening every commit-graph file.
pub const GRAPH_MAGIC: &[u8; 4] = b"GLCG";
/// Current version of the on-disk format.
pub const GRAPH_VERSION: u32 = 1;
/// File name of the commit-graph, under the pack directory.
pub const GRAPH_FILE: &str = "commit-graph.glcg";

const HEADER_LEN: usize = 16; // magic + version + count + edge_count
const FANOUT_LEN: usize = 1024; // 256 × u32
const ID_LEN: usize = 20;
const RECORD_LEN: usize = 40; // tree 20 + timestamp 8 + generation 4 + p1 4 + p2 4
const TRAILER_LEN: usize = 20; // SHA-1

/// "No parent" sentinel in a record's parent slots.
const NO_PARENT: u32 = 0xffff_ffff;
/// High bit of `parent2`: the low bits index the extra-edges table.
const OCTOPUS_FLAG: u32 = 0x8000_0000;
/// High bit of an extra-edges entry: last parent of this commit.
const LAST_EDGE: u32 = 0x8000_0000;
/// Positions must stay below the flag bits.
const MAX_COMMITS: usize = 0x7fff_ffff;

/// Everything the graph records about one commit. [`CommitGraph::from_entries`]
/// consumes these; [`CommitGraph::build`] produces them by walking a store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphEntry {
    /// The commit's id.
    pub id: ObjectId,
    /// Its root tree.
    pub tree: ObjectId,
    /// Its author timestamp (what `log` orders by).
    pub timestamp: i64,
    /// Its parent commit ids, in commit order.
    pub parents: Vec<ObjectId>,
}

/// One decoded per-commit record (parents as positions).
#[derive(Debug, Clone, Copy)]
struct Record {
    tree: ObjectId,
    timestamp: i64,
    generation: u32,
    parent1: u32,
    parent2: u32,
}

/// An immutable, position-indexed view of a commit DAG: sorted ids, a
/// fanout table for O(log n) id lookup, and per-commit records whose
/// parent links are positions back into the table — so every walk is
/// array reads, never store fetches or decodes.
#[derive(Debug, Clone)]
pub struct CommitGraph {
    fanout: [u32; 256],
    ids: Vec<ObjectId>,
    records: Vec<Record>,
    edges: Vec<u32>,
}

impl CommitGraph {
    // ----- construction -------------------------------------------------

    /// Builds a graph over every commit reachable from `tips`, fetching
    /// and decoding each commit once from `store`. Errors if a reachable
    /// commit (or parent) is missing.
    pub fn build<S: ObjectStore + ?Sized>(store: &S, tips: &[ObjectId]) -> Result<CommitGraph> {
        let mut entries = Vec::new();
        collect_entries(store, tips, &mut HashSet::new(), &mut entries)?;
        CommitGraph::from_entries(entries)
    }

    /// Rebuilds a graph covering this graph's commits **plus** everything
    /// reachable from `tips`, fetching from `store` only the commits this
    /// graph does not already describe — the incremental-extension path
    /// for a graph that is merely stale (new commits since it was
    /// written).
    pub fn extend<S: ObjectStore + ?Sized>(
        &self,
        store: &S,
        tips: &[ObjectId],
    ) -> Result<CommitGraph> {
        let mut entries: Vec<GraphEntry> = (0..self.ids.len() as u32)
            .map(|pos| GraphEntry {
                id: self.ids[pos as usize],
                tree: self.records[pos as usize].tree,
                timestamp: self.records[pos as usize].timestamp,
                parents: self
                    .parents_of(pos)
                    .into_iter()
                    .map(|p| self.ids[p as usize])
                    .collect(),
            })
            .collect();
        let mut seen: HashSet<ObjectId> = self.ids.iter().copied().collect();
        collect_entries(store, tips, &mut seen, &mut entries)?;
        CommitGraph::from_entries(entries)
    }

    /// Assembles a graph from explicit entries. The set must be *closed*:
    /// every parent id must itself appear as an entry (missing parents
    /// are [`GitError::ObjectNotFound`]); a parent cycle — impossible for
    /// content-addressed commits, but `entries` is caller-supplied — is
    /// reported as [`GitError::Corrupt`].
    pub fn from_entries(mut entries: Vec<GraphEntry>) -> Result<CommitGraph> {
        entries.sort_by_key(|e| e.id);
        entries.dedup_by(|a, b| a.id == b.id);
        if entries.len() > MAX_COMMITS {
            return Err(GitError::Corrupt(format!(
                "commit-graph: {} commits exceed the format's 2^31-1 limit",
                entries.len()
            )));
        }
        let pos_of: HashMap<ObjectId, u32> = entries
            .iter()
            .enumerate()
            .map(|(i, e)| (e.id, i as u32))
            .collect();

        // Parents as positions, preserving order.
        let mut parent_positions: Vec<Vec<u32>> = Vec::with_capacity(entries.len());
        for e in &entries {
            let mut ps = Vec::with_capacity(e.parents.len());
            for p in &e.parents {
                match pos_of.get(p) {
                    Some(&pos) => ps.push(pos),
                    None => return Err(GitError::ObjectNotFound(*p)),
                }
            }
            parent_positions.push(ps);
        }

        // Generation numbers: longest path to a root, iteratively (deep
        // histories must not overflow the call stack), detecting cycles.
        const UNSET: u32 = u32::MAX;
        let mut gen = vec![UNSET; entries.len()];
        let mut on_stack = vec![false; entries.len()];
        for start in 0..entries.len() {
            if gen[start] != UNSET {
                continue;
            }
            let mut stack: Vec<(usize, bool)> = vec![(start, false)];
            while let Some((pos, expanded)) = stack.pop() {
                if expanded {
                    on_stack[pos] = false;
                    gen[pos] = parent_positions[pos]
                        .iter()
                        .map(|&p| gen[p as usize] + 1)
                        .max()
                        .unwrap_or(0);
                    continue;
                }
                if gen[pos] != UNSET {
                    continue;
                }
                on_stack[pos] = true;
                stack.push((pos, true));
                for &p in &parent_positions[pos] {
                    if gen[p as usize] == UNSET {
                        if on_stack[p as usize] {
                            return Err(GitError::Corrupt(
                                "commit-graph: parent cycle in entries".into(),
                            ));
                        }
                        stack.push((p as usize, false));
                    }
                }
            }
        }

        // Records plus the octopus extra-edges table.
        let mut records = Vec::with_capacity(entries.len());
        let mut edges: Vec<u32> = Vec::new();
        for (i, e) in entries.iter().enumerate() {
            let ps = &parent_positions[i];
            let (parent1, parent2) = match ps.len() {
                0 => (NO_PARENT, NO_PARENT),
                1 => (ps[0], NO_PARENT),
                2 => (ps[0], ps[1]),
                _ => {
                    let at = edges.len() as u32;
                    for (k, &p) in ps[1..].iter().enumerate() {
                        let last = k + 2 == ps.len();
                        edges.push(if last { p | LAST_EDGE } else { p });
                    }
                    (ps[0], OCTOPUS_FLAG | at)
                }
            };
            records.push(Record {
                tree: e.tree,
                timestamp: e.timestamp,
                generation: gen[i],
                parent1,
                parent2,
            });
        }
        let ids: Vec<ObjectId> = entries.iter().map(|e| e.id).collect();
        Ok(CommitGraph {
            fanout: fanout_of(&ids),
            ids,
            records,
            edges,
        })
    }

    // ----- encoding -----------------------------------------------------

    /// Serializes the graph into `GLCG` bytes (see the module docs for
    /// the layout).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(
            HEADER_LEN
                + FANOUT_LEN
                + self.ids.len() * (ID_LEN + RECORD_LEN)
                + self.edges.len() * 4
                + TRAILER_LEN,
        );
        out.extend_from_slice(GRAPH_MAGIC);
        out.extend_from_slice(&GRAPH_VERSION.to_be_bytes());
        out.extend_from_slice(&(self.ids.len() as u32).to_be_bytes());
        out.extend_from_slice(&(self.edges.len() as u32).to_be_bytes());
        for f in self.fanout {
            out.extend_from_slice(&f.to_be_bytes());
        }
        for id in &self.ids {
            out.extend_from_slice(&id.0);
        }
        for r in &self.records {
            out.extend_from_slice(&r.tree.0);
            out.extend_from_slice(&r.timestamp.to_be_bytes());
            out.extend_from_slice(&r.generation.to_be_bytes());
            out.extend_from_slice(&r.parent1.to_be_bytes());
            out.extend_from_slice(&r.parent2.to_be_bytes());
        }
        for e in &self.edges {
            out.extend_from_slice(&e.to_be_bytes());
        }
        let trailer = ObjectId::hash_bytes(&out);
        out.extend_from_slice(&trailer.0);
        out
    }

    /// Parses and validates `GLCG` bytes: magic, version, structural
    /// sizes, the SHA-1 trailer, fanout monotonicity, id ordering, parent
    /// position bounds, edge-table termination, and generation-number
    /// consistency (each commit's generation must be exactly one more
    /// than its deepest parent's — which also proves acyclicity). A graph
    /// that parses is safe to walk without further checks.
    pub fn parse(bytes: &[u8]) -> Result<CommitGraph> {
        let corrupt = |msg: &str| GitError::Corrupt(format!("commit-graph: {msg}"));
        if bytes.len() < HEADER_LEN + FANOUT_LEN + TRAILER_LEN {
            return Err(corrupt("truncated"));
        }
        if &bytes[..4] != GRAPH_MAGIC {
            return Err(corrupt("bad magic"));
        }
        let version = u32::from_be_bytes(bytes[4..8].try_into().unwrap());
        if version != GRAPH_VERSION {
            return Err(corrupt(&format!("unsupported version {version}")));
        }
        let count = u32::from_be_bytes(bytes[8..12].try_into().unwrap()) as usize;
        let edge_count = u32::from_be_bytes(bytes[12..16].try_into().unwrap()) as usize;
        let expected =
            HEADER_LEN + FANOUT_LEN + count * (ID_LEN + RECORD_LEN) + edge_count * 4 + TRAILER_LEN;
        if bytes.len() != expected {
            return Err(corrupt(&format!(
                "size mismatch: {} bytes for {count} commits / {edge_count} edges, expected {expected}",
                bytes.len()
            )));
        }
        let body = &bytes[..bytes.len() - TRAILER_LEN];
        let trailer = &bytes[bytes.len() - TRAILER_LEN..];
        if ObjectId::hash_bytes(body).0 != trailer {
            return Err(corrupt("trailer checksum mismatch"));
        }

        let mut fanout = [0u32; 256];
        for i in 0..256 {
            let at = HEADER_LEN + i * 4;
            fanout[i] = u32::from_be_bytes(bytes[at..at + 4].try_into().unwrap());
            if i > 0 && fanout[i] < fanout[i - 1] {
                return Err(corrupt("fanout not monotone"));
            }
        }
        if fanout[255] as usize != count {
            return Err(corrupt("fanout total disagrees with count"));
        }

        let ids_at = HEADER_LEN + FANOUT_LEN;
        let mut ids = Vec::with_capacity(count);
        for i in 0..count {
            let at = ids_at + i * ID_LEN;
            let mut id = [0u8; 20];
            id.copy_from_slice(&bytes[at..at + 20]);
            let id = ObjectId(id);
            if let Some(prev) = ids.last() {
                if *prev >= id {
                    return Err(corrupt("ids not strictly ascending"));
                }
            }
            ids.push(id);
        }

        let recs_at = ids_at + count * ID_LEN;
        let mut records = Vec::with_capacity(count);
        for i in 0..count {
            let at = recs_at + i * RECORD_LEN;
            let mut tree = [0u8; 20];
            tree.copy_from_slice(&bytes[at..at + 20]);
            records.push(Record {
                tree: ObjectId(tree),
                timestamp: i64::from_be_bytes(bytes[at + 20..at + 28].try_into().unwrap()),
                generation: u32::from_be_bytes(bytes[at + 28..at + 32].try_into().unwrap()),
                parent1: u32::from_be_bytes(bytes[at + 32..at + 36].try_into().unwrap()),
                parent2: u32::from_be_bytes(bytes[at + 36..at + 40].try_into().unwrap()),
            });
        }
        let edges_at = recs_at + count * RECORD_LEN;
        let edges: Vec<u32> = (0..edge_count)
            .map(|i| {
                let at = edges_at + i * 4;
                u32::from_be_bytes(bytes[at..at + 4].try_into().unwrap())
            })
            .collect();

        let graph = CommitGraph {
            fanout,
            ids,
            records,
            edges,
        };
        graph.validate_structure()?;
        Ok(graph)
    }

    /// Bounds-checks every parent link and re-derives each generation
    /// from the parents' stored generations (a purely local check that,
    /// when it holds everywhere, proves the stored generations are the
    /// true longest-path numbers and the graph is acyclic).
    fn validate_structure(&self) -> Result<()> {
        let corrupt = |msg: &str| GitError::Corrupt(format!("commit-graph: {msg}"));
        let count = self.ids.len() as u32;
        for pos in 0..count {
            let r = &self.records[pos as usize];
            for slot in [r.parent1, r.parent2] {
                if slot == NO_PARENT {
                    continue;
                }
                if slot & OCTOPUS_FLAG != 0 {
                    if slot == r.parent1 {
                        return Err(corrupt("parent1 carries the octopus flag"));
                    }
                    let mut at = (slot & !OCTOPUS_FLAG) as usize;
                    loop {
                        let Some(&edge) = self.edges.get(at) else {
                            return Err(corrupt("octopus edge list runs off the table"));
                        };
                        if edge & !LAST_EDGE >= count {
                            return Err(corrupt("octopus parent position out of bounds"));
                        }
                        if edge & LAST_EDGE != 0 {
                            break;
                        }
                        at += 1;
                    }
                } else if slot >= count {
                    return Err(corrupt("parent position out of bounds"));
                }
            }
            let expected = self
                .parents_of(pos)
                .into_iter()
                .map(|p| self.records[p as usize].generation.saturating_add(1))
                .max()
                .unwrap_or(0);
            if r.generation != expected {
                return Err(corrupt("generation numbers inconsistent with parents"));
            }
        }
        Ok(())
    }

    // ----- lookup -------------------------------------------------------

    /// Number of commits indexed.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when no commits are indexed.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// The indexed commit ids, ascending.
    pub fn ids(&self) -> &[ObjectId] {
        &self.ids
    }

    /// Position of `id` in the sorted table: fanout bucket, then binary
    /// search inside it.
    pub fn lookup(&self, id: ObjectId) -> Option<u32> {
        let bucket = id.0[0] as usize;
        let lo = if bucket == 0 {
            0
        } else {
            self.fanout[bucket - 1] as usize
        };
        let hi = self.fanout[bucket] as usize;
        let i = self.ids[lo..hi].binary_search(&id).ok()?;
        Some((lo + i) as u32)
    }

    /// True when the graph describes `id`.
    pub fn contains(&self, id: ObjectId) -> bool {
        self.lookup(id).is_some()
    }

    /// The commit id at `pos`.
    pub fn id_at(&self, pos: u32) -> ObjectId {
        self.ids[pos as usize]
    }

    /// The root tree of the commit at `pos`.
    pub fn tree_of(&self, pos: u32) -> ObjectId {
        self.records[pos as usize].tree
    }

    /// The author timestamp of the commit at `pos`.
    pub fn timestamp_of(&self, pos: u32) -> i64 {
        self.records[pos as usize].timestamp
    }

    /// The generation number (longest path to a root) of the commit at
    /// `pos`.
    pub fn generation_of(&self, pos: u32) -> u32 {
        self.records[pos as usize].generation
    }

    /// Parent positions of the commit at `pos`, in commit order.
    pub fn parents_of(&self, pos: u32) -> Vec<u32> {
        let mut out = Vec::new();
        self.for_each_parent(pos, |p| out.push(p));
        out
    }

    /// Visits the parents of `pos` in commit order without allocating —
    /// the walks' form of [`CommitGraph::parents_of`] (a walk touches
    /// every commit once; a fresh `Vec` per visit would be the only
    /// allocation left on the hot path).
    #[inline]
    fn for_each_parent(&self, pos: u32, mut f: impl FnMut(u32)) {
        let r = &self.records[pos as usize];
        if r.parent1 == NO_PARENT {
            return;
        }
        f(r.parent1);
        if r.parent2 == NO_PARENT {
            return;
        }
        if r.parent2 & OCTOPUS_FLAG == 0 {
            f(r.parent2);
            return;
        }
        let mut at = (r.parent2 & !OCTOPUS_FLAG) as usize;
        loop {
            let edge = self.edges[at];
            f(edge & !LAST_EDGE);
            if edge & LAST_EDGE != 0 {
                break;
            }
            at += 1;
        }
    }

    // ----- walks (positions only — the store is never touched) ----------

    /// Commits reachable from `from`, newest first (by timestamp, ties by
    /// id) — byte-identical to [`crate::Repository::log`]'s decode walk.
    /// Position order *is* id order (the table is sorted), so `(timestamp,
    /// position)` keys reproduce the reference's `(timestamp, id)` ties.
    pub fn log(&self, from: u32) -> Vec<ObjectId> {
        #[derive(PartialEq, Eq)]
        struct Entry(i64, u32);
        impl Ord for Entry {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                self.0.cmp(&other.0).then_with(|| self.1.cmp(&other.1))
            }
        }
        impl PartialOrd for Entry {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }
        let mut heap = BinaryHeap::new();
        let mut seen = HashSet::new();
        heap.push(Entry(self.timestamp_of(from), from));
        seen.insert(from);
        let mut out = Vec::new();
        while let Some(Entry(_, pos)) = heap.pop() {
            out.push(self.id_at(pos));
            self.for_each_parent(pos, |p| {
                if seen.insert(p) {
                    heap.push(Entry(self.timestamp_of(p), p));
                }
            });
        }
        out
    }

    /// All commits reachable from `from` (inclusive).
    pub fn ancestor_set(&self, from: u32) -> HashSet<ObjectId> {
        let mut seen_pos = HashSet::new();
        let mut stack = vec![from];
        while let Some(pos) = stack.pop() {
            if !seen_pos.insert(pos) {
                continue;
            }
            self.for_each_parent(pos, |p| stack.push(p));
        }
        seen_pos.into_iter().map(|p| self.id_at(p)).collect()
    }

    /// The first-parent chain from `from` back to a root, `from` first.
    pub fn first_parent_chain(&self, from: u32) -> Vec<ObjectId> {
        let mut out = Vec::new();
        let mut cursor = Some(from);
        while let Some(pos) = cursor {
            out.push(self.id_at(pos));
            let p1 = self.records[pos as usize].parent1;
            cursor = (p1 != NO_PARENT).then_some(p1);
        }
        out
    }

    /// True when `anc` is reachable from `desc` (or equal). Generation
    /// numbers prune the walk: only commits with generation strictly
    /// greater than `anc`'s can lie on a path to it.
    pub fn is_ancestor(&self, anc: u32, desc: u32) -> bool {
        if anc == desc {
            return true;
        }
        let floor = self.generation_of(anc);
        if self.generation_of(desc) <= floor {
            return false;
        }
        let mut stack = vec![desc];
        let mut seen = HashSet::new();
        seen.insert(desc);
        let mut found = false;
        while let Some(pos) = stack.pop() {
            self.for_each_parent(pos, |p| {
                if p == anc {
                    found = true;
                } else if self.generation_of(p) > floor && seen.insert(p) {
                    stack.push(p);
                }
            });
            if found {
                return true;
            }
        }
        false
    }

    /// The best common ancestor of `a` and `b`: among all common
    /// ancestors, the one with the greatest `(generation, timestamp, id)`
    /// — the same selection rule as the decode-walk
    /// [`crate::merge_base`], without materializing either ancestor set.
    ///
    /// A single max-heap keyed by `(generation, timestamp, position)`
    /// walks from both tips, tagging each discovered commit with which
    /// side(s) reached it. Generations strictly decrease along parent
    /// edges, so pops occur in strictly decreasing key order and a
    /// commit's tags are complete by the time it is popped (any child
    /// that could still tag it has a larger key and was popped earlier).
    /// The first pop tagged by both sides is therefore exactly the
    /// maximum-key common ancestor. Returns `None` for unrelated
    /// histories.
    pub fn merge_base(&self, a: u32, b: u32) -> Option<ObjectId> {
        if a == b {
            return Some(self.id_at(a));
        }
        const SIDE_A: u8 = 1;
        const SIDE_B: u8 = 2;
        #[derive(PartialEq, Eq)]
        struct Key(u32, i64, u32); // (generation, timestamp, position)
        impl Ord for Key {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                (self.0, self.1, self.2).cmp(&(other.0, other.1, other.2))
            }
        }
        impl PartialOrd for Key {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }
        let mut flags: HashMap<u32, u8> = HashMap::new();
        let mut heap = BinaryHeap::new();
        for (pos, side) in [(a, SIDE_A), (b, SIDE_B)] {
            flags.insert(pos, side);
            heap.push(Key(self.generation_of(pos), self.timestamp_of(pos), pos));
        }
        while let Some(Key(_, _, pos)) = heap.pop() {
            let side = flags[&pos];
            if side == SIDE_A | SIDE_B {
                return Some(self.id_at(pos));
            }
            self.for_each_parent(pos, |p| match flags.entry(p) {
                MapEntry::Occupied(mut e) => {
                    *e.get_mut() |= side;
                }
                MapEntry::Vacant(e) => {
                    e.insert(side);
                    heap.push(Key(self.generation_of(p), self.timestamp_of(p), p));
                }
            });
        }
        None
    }
}

/// Walks commits reachable from `tips` (skipping ids already in `seen`),
/// decoding each exactly once and appending a [`GraphEntry`] per commit.
fn collect_entries<S: ObjectStore + ?Sized>(
    store: &S,
    tips: &[ObjectId],
    seen: &mut HashSet<ObjectId>,
    entries: &mut Vec<GraphEntry>,
) -> Result<()> {
    let mut stack: Vec<ObjectId> = tips.to_vec();
    while let Some(id) = stack.pop() {
        if !seen.insert(id) {
            continue;
        }
        let obj = store.commit_ref(id)?;
        let c = obj.as_commit().expect("checked kind");
        entries.push(GraphEntry {
            id,
            tree: c.tree,
            timestamp: c.author.timestamp,
            parents: c.parents.clone(),
        });
        stack.extend(c.parents.iter().copied());
    }
    Ok(())
}

fn fanout_of(sorted_ids: &[ObjectId]) -> [u32; 256] {
    let mut fanout = [0u32; 256];
    for id in sorted_ids {
        fanout[id.0[0] as usize] += 1;
    }
    for i in 1..256 {
        fanout[i] += fanout[i - 1];
    }
    fanout
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::{Commit, Object, Signature, Tree};
    use crate::store::Odb;

    fn mk(odb: &mut Odb, msg: &str, ts: i64, parents: Vec<ObjectId>) -> ObjectId {
        let tree = odb.put(Object::Tree(Tree::new()));
        odb.put(Object::Commit(Commit {
            tree,
            parents,
            author: Signature::new("t", "t@t", ts),
            message: msg.into(),
        }))
    }

    /// base ── x ── left ; right = merge(x, base) — plus an octopus.
    fn sample() -> (Odb, Vec<ObjectId>) {
        let mut odb = Odb::new();
        let base = mk(&mut odb, "base", 1, vec![]);
        let x = mk(&mut odb, "x", 2, vec![base]);
        let left = mk(&mut odb, "left", 3, vec![x]);
        let right = mk(&mut odb, "right", 4, vec![x, base]);
        let octo = mk(&mut odb, "octo", 5, vec![left, right, base]);
        (odb, vec![base, x, left, right, octo])
    }

    #[test]
    fn build_records_fields_and_generations() {
        let (odb, c) = sample();
        let g = CommitGraph::build(&odb, &[c[4]]).unwrap();
        assert_eq!(g.len(), 5);
        for (i, expect_gen) in [(0usize, 0u32), (1, 1), (2, 2), (3, 2), (4, 3)] {
            let pos = g.lookup(c[i]).unwrap();
            assert_eq!(g.generation_of(pos), expect_gen, "commit {i}");
            assert_eq!(g.timestamp_of(pos), i as i64 + 1);
            assert_eq!(g.tree_of(pos), odb.commit(c[i]).unwrap().tree);
            let parent_ids: Vec<ObjectId> =
                g.parents_of(pos).into_iter().map(|p| g.id_at(p)).collect();
            assert_eq!(parent_ids, odb.commit(c[i]).unwrap().parents, "commit {i}");
        }
        assert!(!g.contains(ObjectId::hash_bytes(b"absent")));
    }

    #[test]
    fn encode_parse_round_trips() {
        let (odb, c) = sample();
        let g = CommitGraph::build(&odb, &[c[4]]).unwrap();
        let bytes = g.encode();
        let parsed = CommitGraph::parse(&bytes).unwrap();
        assert_eq!(parsed.ids, g.ids);
        assert_eq!(parsed.edges, g.edges);
        for pos in 0..g.len() as u32 {
            assert_eq!(parsed.parents_of(pos), g.parents_of(pos));
            assert_eq!(parsed.generation_of(pos), g.generation_of(pos));
            assert_eq!(parsed.timestamp_of(pos), g.timestamp_of(pos));
            assert_eq!(parsed.tree_of(pos), g.tree_of(pos));
        }
        // And the encoding is deterministic.
        assert_eq!(parsed.encode(), bytes);
    }

    #[test]
    fn corruption_is_detected() {
        let (odb, c) = sample();
        let bytes = CommitGraph::build(&odb, &[c[4]]).unwrap().encode();
        // Any flipped byte breaks the trailer.
        for at in [0, 9, HEADER_LEN + 100, bytes.len() / 2, bytes.len() - 1] {
            let mut bad = bytes.clone();
            bad[at] ^= 0xff;
            assert!(
                matches!(CommitGraph::parse(&bad), Err(GitError::Corrupt(_))),
                "flip at {at}"
            );
        }
        // Truncation too.
        assert!(matches!(
            CommitGraph::parse(&bytes[..bytes.len() - 3]),
            Err(GitError::Corrupt(_))
        ));
        assert!(matches!(CommitGraph::parse(&[]), Err(GitError::Corrupt(_))));
    }

    #[test]
    fn from_entries_rejects_missing_parents_and_cycles() {
        let missing = GraphEntry {
            id: ObjectId::hash_bytes(b"a"),
            tree: ObjectId::ZERO,
            timestamp: 1,
            parents: vec![ObjectId::hash_bytes(b"ghost")],
        };
        assert!(matches!(
            CommitGraph::from_entries(vec![missing]),
            Err(GitError::ObjectNotFound(_))
        ));
        let a = ObjectId::hash_bytes(b"a");
        let b = ObjectId::hash_bytes(b"b");
        let cycle = vec![
            GraphEntry {
                id: a,
                tree: ObjectId::ZERO,
                timestamp: 1,
                parents: vec![b],
            },
            GraphEntry {
                id: b,
                tree: ObjectId::ZERO,
                timestamp: 2,
                parents: vec![a],
            },
        ];
        assert!(matches!(
            CommitGraph::from_entries(cycle),
            Err(GitError::Corrupt(_))
        ));
    }

    #[test]
    fn log_matches_decode_walk() {
        let (odb, c) = sample();
        let g = CommitGraph::build(&odb, &[c[4]]).unwrap();
        let repo = crate::Repository::init_with("t", Box::new(odb));
        for &tip in &c {
            assert_eq!(
                g.log(g.lookup(tip).unwrap()),
                repo.log(tip).unwrap(),
                "log from {tip:?}"
            );
        }
    }

    #[test]
    fn merge_base_and_reachability_match_reference() {
        let (odb, c) = sample();
        let g = CommitGraph::build(&odb, &[c[4]]).unwrap();
        for &x in &c {
            for &y in &c {
                let px = g.lookup(x).unwrap();
                let py = g.lookup(y).unwrap();
                assert_eq!(
                    g.merge_base(px, py),
                    crate::merge_base(&odb, x, y).unwrap(),
                    "merge_base({x:?}, {y:?})"
                );
                let reference = crate::mergebase::ancestor_set(&odb, y)
                    .unwrap()
                    .contains(&x);
                assert_eq!(
                    g.is_ancestor(px, py),
                    reference,
                    "is_ancestor({x:?}, {y:?})"
                );
            }
        }
        assert_eq!(
            g.ancestor_set(g.lookup(c[3]).unwrap()),
            crate::mergebase::ancestor_set(&odb, c[3]).unwrap()
        );
    }

    #[test]
    fn first_parent_chain_follows_parent1() {
        let (odb, c) = sample();
        let g = CommitGraph::build(&odb, &[c[4]]).unwrap();
        // octo → left → x → base (first parents only).
        assert_eq!(
            g.first_parent_chain(g.lookup(c[4]).unwrap()),
            vec![c[4], c[2], c[1], c[0]]
        );
    }

    #[test]
    fn extend_reuses_old_records_and_adds_new_commits() {
        let (mut odb, c) = sample();
        let g = CommitGraph::build(&odb, &[c[4]]).unwrap();
        let newer = mk(&mut odb, "newer", 6, vec![c[4]]);
        assert!(!g.contains(newer));
        let extended = g.extend(&odb, &[newer]).unwrap();
        assert_eq!(extended.len(), 6);
        let pos = extended.lookup(newer).unwrap();
        assert_eq!(extended.generation_of(pos), 4);
        assert_eq!(
            extended
                .parents_of(pos)
                .into_iter()
                .map(|p| extended.id_at(p))
                .collect::<Vec<_>>(),
            vec![c[4]]
        );
        // Old commits kept their data.
        for &old in &c {
            let p = extended.lookup(old).unwrap();
            let q = g.lookup(old).unwrap();
            assert_eq!(extended.generation_of(p), g.generation_of(q));
            assert_eq!(extended.timestamp_of(p), g.timestamp_of(q));
        }
    }

    #[test]
    fn unrelated_histories_have_no_merge_base() {
        let mut odb = Odb::new();
        let a = mk(&mut odb, "a", 1, vec![]);
        let b = mk(&mut odb, "b", 2, vec![]);
        let g = CommitGraph::build(&odb, &[a, b]).unwrap();
        assert_eq!(
            g.merge_base(g.lookup(a).unwrap(), g.lookup(b).unwrap()),
            None
        );
        assert!(!g.is_ancestor(g.lookup(a).unwrap(), g.lookup(b).unwrap()));
    }

    #[test]
    fn deep_history_does_not_overflow_stack() {
        let mut odb = Odb::new();
        let mut tip = mk(&mut odb, "0", 0, vec![]);
        for i in 1..5000 {
            tip = mk(&mut odb, &i.to_string(), i, vec![tip]);
        }
        let g = CommitGraph::build(&odb, &[tip]).unwrap();
        let pos = g.lookup(tip).unwrap();
        assert_eq!(g.generation_of(pos), 4999);
        assert_eq!(g.log(pos).len(), 5000);
        assert_eq!(g.first_parent_chain(pos).len(), 5000);
    }
}
