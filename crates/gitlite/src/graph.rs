//! The commit-graph: a persisted, generation-numbered index of commit
//! history that makes ancestry walks near O(output).
//!
//! Every history question this system answers — `log`, `merge_base`,
//! reachability for push/fork checks and gc root closures, the citation
//! layer's audit scans — is a walk over the commit DAG. Without an index,
//! each visited commit must be fetched from the object store and decoded
//! from its canonical bytes, so a walk over an N-commit history costs
//! N store lookups *and* N decodes, every time. The commit-graph
//! (mirroring real Git's `commit-graph` file) precomputes exactly the
//! fields walks need and stores parents as *positions* into the index
//! itself, so a warm walk never touches the object store at all.
//!
//! # The `GLCG` file
//!
//! Same framing discipline as the pack formats ([`crate::pack`]): all
//! integers big-endian, a SHA-1 trailer over everything before it, and a
//! 256-entry fanout table over the sorted id list:
//!
//! ```text
//! "GLCG" | u32 version | u32 count | u32 edge_count
//! 256 × u32 cumulative fanout
//! count × 20-byte commit id (sorted ascending)
//! count × ( 20-byte tree id | i64 timestamp | u32 generation
//!         | u32 parent1 | u32 parent2 )
//! edge_count × u32 extra parent positions (octopus merges)
//! [version ≥ 2: changed-path Bloom chunk]
//! 20-byte SHA-1 trailer
//! ```
//!
//! `parent1`/`parent2` are positions into the sorted id table
//! (`0xffff_ffff` = no parent). A commit with more than two parents sets
//! the high bit of `parent2`; the low bits then index the extra-edges
//! table, which lists `parents[1..]` in order, the last entry flagged
//! with the high bit — exactly Git's octopus encoding. Parent *order* is
//! preserved (first-parent walks depend on it).
//!
//! # Changed-path Bloom filters (version 2)
//!
//! Version-2 files append one chunk after the extra edges:
//!
//! ```text
//! u32 hash_count (k) | u32 data_len
//! count × u32 cumulative end offset into the filter data
//! data_len bytes of concatenated per-commit filters
//! ```
//!
//! Commit `pos`'s filter is `data[offsets[pos-1]..offsets[pos]]`
//! (`offsets[-1]` = 0). It is a Bloom filter over every path that
//! changed between the commit and its **first parent** (a root commit
//! diffs against the empty tree), plus each changed path's ancestor
//! directories — so a query for `"a/b/c.txt"` or for the directory
//! `"a"` both answer. A **zero-length** filter means "no filter
//! computed" (queries must fall back to an exact diff); a commit whose
//! diff is empty stores a single zero byte, which answers "definitely
//! unchanged" for every path. Commits touching more than
//! [`MAX_BLOOM_PATHS`] paths opt out (zero length) to bound the chunk.
//!
//! Filters use ~10 bits and `k` double-hashed probes per path
//! (`bit_i = h1 + i·h2 mod bits`, git's parameters). `h1`/`h2` are
//! 64-bit FNV-1a over the path bytes with two offset bases (`h2` forced
//! odd) — this reproduction's stand-in for git's murmur3 pair, chosen
//! because FNV is already the codebase's hash of record. Version-1
//! files parse as "no filter anywhere"; a graph with no filters encodes
//! as version 1, byte-identical to the pre-Bloom format. A corrupt
//! chunk fails the file's SHA-1 trailer and triggers the normal
//! full-scan rebuild.
//!
//! # Generation numbers
//!
//! A commit's generation is the length of the longest path from it to a
//! root commit (roots have generation 0) — identical to the notion the
//! decode-walk `merge_base` computes on the fly. Because a parent's
//! generation is strictly smaller than its child's, generations bound
//! every ancestry question: an alleged ancestor with generation ≥ the
//! descendant's can be rejected without walking, and a best-first walk
//! keyed by `(generation, timestamp, id)` pops commits in strictly
//! decreasing key order, so the first common ancestor it pops *is* the
//! best one — no full ancestor sets.
//!
//! # Lifecycle
//!
//! The file lives next to the packs (`<root>/pack/commit-graph.glcg`)
//! and is written by [`crate::PackStore::repack`] / [`crate::PackStore::gc`]
//! (and therefore by `gitcite gc` and the hub's maintenance sweep). On
//! open, a present-but-corrupt or stale (referencing ids the store no
//! longer holds) graph is rebuilt from a full scan of the store's commit
//! objects — the same recovery policy as a damaged `.idx`. A *missing*
//! graph costs nothing at open and is built by the next maintenance run.
//! Commits created after the graph was written are simply absent from
//! it; walks starting at such a commit fall back to the always-correct
//! decode walk, so a stale graph can delay the speedup but never change
//! an answer.

use crate::error::{GitError, Result};
use crate::hash::ObjectId;
use crate::object::{EntryMode, Tree, TreeEntry};
use crate::store::ObjectStore;
use std::collections::hash_map::Entry as MapEntry;
use std::collections::{BinaryHeap, HashMap, HashSet};
use std::rc::Rc;

/// Magic bytes opening every commit-graph file.
pub const GRAPH_MAGIC: &[u8; 4] = b"GLCG";
/// Version written when no commit carries a Bloom filter (the original
/// format, byte-for-byte).
pub const GRAPH_VERSION: u32 = 1;
/// Version written when at least one commit carries a changed-path
/// Bloom filter (appends one chunk; see the module docs).
pub const GRAPH_VERSION_BLOOM: u32 = 2;
/// File name of the commit-graph, under the pack directory.
pub const GRAPH_FILE: &str = "commit-graph.glcg";

/// Probes per path in a changed-path Bloom filter (git's default).
pub const BLOOM_K: u32 = 7;
/// Filter bits allocated per changed path (git's default).
pub const BLOOM_BITS_PER_PATH: usize = 10;
/// Commits changing more than this many paths (ancestor directories
/// included) store no filter and always fall back to an exact diff.
pub const MAX_BLOOM_PATHS: usize = 512;

const HEADER_LEN: usize = 16; // magic + version + count + edge_count
const FANOUT_LEN: usize = 1024; // 256 × u32
const ID_LEN: usize = 20;
const RECORD_LEN: usize = 40; // tree 20 + timestamp 8 + generation 4 + p1 4 + p2 4
const TRAILER_LEN: usize = 20; // SHA-1

/// "No parent" sentinel in a record's parent slots.
const NO_PARENT: u32 = 0xffff_ffff;
/// High bit of `parent2`: the low bits index the extra-edges table.
const OCTOPUS_FLAG: u32 = 0x8000_0000;
/// High bit of an extra-edges entry: last parent of this commit.
const LAST_EDGE: u32 = 0x8000_0000;
/// Positions must stay below the flag bits.
const MAX_COMMITS: usize = 0x7fff_ffff;

/// Everything the graph records about one commit. [`CommitGraph::from_entries`]
/// consumes these; [`CommitGraph::build`] produces them by walking a store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphEntry {
    /// The commit's id.
    pub id: ObjectId,
    /// Its root tree.
    pub tree: ObjectId,
    /// Its author timestamp (what `log` orders by).
    pub timestamp: i64,
    /// Its parent commit ids, in commit order.
    pub parents: Vec<ObjectId>,
}

/// One decoded per-commit record (parents as positions).
#[derive(Debug, Clone, Copy)]
struct Record {
    tree: ObjectId,
    timestamp: i64,
    generation: u32,
    parent1: u32,
    parent2: u32,
}

/// An immutable, position-indexed view of a commit DAG: sorted ids, a
/// fanout table for O(log n) id lookup, and per-commit records whose
/// parent links are positions back into the table — so every walk is
/// array reads, never store fetches or decodes.
#[derive(Debug, Clone)]
pub struct CommitGraph {
    fanout: [u32; 256],
    ids: Vec<ObjectId>,
    records: Vec<Record>,
    edges: Vec<u32>,
    /// Per-position changed-path Bloom filters (`None` = not computed;
    /// always `ids.len()` entries).
    filters: Vec<Option<Box<[u8]>>>,
    /// Probe count the stored filters were built with.
    bloom_k: u32,
}

/// Answer from a changed-path Bloom filter query
/// ([`CommitGraph::path_changed`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PathChange {
    /// The commit has no filter — run an exact diff.
    Absent,
    /// The filter says the path *may* have changed (Bloom filters can
    /// report false positives, never false negatives).
    Maybe,
    /// The path definitely did not change versus the first parent.
    No,
}

impl CommitGraph {
    // ----- construction -------------------------------------------------

    /// Builds a graph over every commit reachable from `tips`, fetching
    /// and decoding each commit once from `store`. Errors if a reachable
    /// commit (or parent) is missing.
    pub fn build<S: ObjectStore + ?Sized>(store: &S, tips: &[ObjectId]) -> Result<CommitGraph> {
        let mut entries = Vec::new();
        collect_entries(store, tips, &mut HashSet::new(), &mut entries)?;
        CommitGraph::from_entries(entries)
    }

    /// Rebuilds a graph covering this graph's commits **plus** everything
    /// reachable from `tips`, fetching from `store` only the commits this
    /// graph does not already describe — the incremental-extension path
    /// for a graph that is merely stale (new commits since it was
    /// written).
    pub fn extend<S: ObjectStore + ?Sized>(
        &self,
        store: &S,
        tips: &[ObjectId],
    ) -> Result<CommitGraph> {
        let mut entries: Vec<GraphEntry> = (0..self.ids.len() as u32)
            .map(|pos| GraphEntry {
                id: self.ids[pos as usize],
                tree: self.records[pos as usize].tree,
                timestamp: self.records[pos as usize].timestamp,
                parents: self
                    .parents_of(pos)
                    .into_iter()
                    .map(|p| self.ids[p as usize])
                    .collect(),
            })
            .collect();
        let mut seen: HashSet<ObjectId> = self.ids.iter().copied().collect();
        collect_entries(store, tips, &mut seen, &mut entries)?;
        let mut graph = CommitGraph::from_entries(entries)?;
        // Carry filters across the rebuild: positions shift, ids don't.
        graph.bloom_k = self.bloom_k;
        for (old_pos, filter) in self.filters.iter().enumerate() {
            if let (Some(f), Some(new_pos)) = (filter, graph.lookup(self.ids[old_pos])) {
                graph.filters[new_pos as usize] = Some(f.clone());
            }
        }
        Ok(graph)
    }

    /// Assembles a graph from explicit entries. The set must be *closed*:
    /// every parent id must itself appear as an entry (missing parents
    /// are [`GitError::ObjectNotFound`]); a parent cycle — impossible for
    /// content-addressed commits, but `entries` is caller-supplied — is
    /// reported as [`GitError::Corrupt`].
    pub fn from_entries(mut entries: Vec<GraphEntry>) -> Result<CommitGraph> {
        entries.sort_by_key(|e| e.id);
        entries.dedup_by(|a, b| a.id == b.id);
        if entries.len() > MAX_COMMITS {
            return Err(GitError::Corrupt(format!(
                "commit-graph: {} commits exceed the format's 2^31-1 limit",
                entries.len()
            )));
        }
        let pos_of: HashMap<ObjectId, u32> = entries
            .iter()
            .enumerate()
            .map(|(i, e)| (e.id, i as u32))
            .collect();

        // Parents as positions, preserving order.
        let mut parent_positions: Vec<Vec<u32>> = Vec::with_capacity(entries.len());
        for e in &entries {
            let mut ps = Vec::with_capacity(e.parents.len());
            for p in &e.parents {
                match pos_of.get(p) {
                    Some(&pos) => ps.push(pos),
                    None => return Err(GitError::ObjectNotFound(*p)),
                }
            }
            parent_positions.push(ps);
        }

        // Generation numbers: longest path to a root, iteratively (deep
        // histories must not overflow the call stack), detecting cycles.
        const UNSET: u32 = u32::MAX;
        let mut gen = vec![UNSET; entries.len()];
        let mut on_stack = vec![false; entries.len()];
        for start in 0..entries.len() {
            if gen[start] != UNSET {
                continue;
            }
            let mut stack: Vec<(usize, bool)> = vec![(start, false)];
            while let Some((pos, expanded)) = stack.pop() {
                if expanded {
                    on_stack[pos] = false;
                    gen[pos] = parent_positions[pos]
                        .iter()
                        .map(|&p| gen[p as usize] + 1)
                        .max()
                        .unwrap_or(0);
                    continue;
                }
                if gen[pos] != UNSET {
                    continue;
                }
                on_stack[pos] = true;
                stack.push((pos, true));
                for &p in &parent_positions[pos] {
                    if gen[p as usize] == UNSET {
                        if on_stack[p as usize] {
                            return Err(GitError::Corrupt(
                                "commit-graph: parent cycle in entries".into(),
                            ));
                        }
                        stack.push((p as usize, false));
                    }
                }
            }
        }

        // Records plus the octopus extra-edges table.
        let mut records = Vec::with_capacity(entries.len());
        let mut edges: Vec<u32> = Vec::new();
        for (i, e) in entries.iter().enumerate() {
            let ps = &parent_positions[i];
            let (parent1, parent2) = match ps.len() {
                0 => (NO_PARENT, NO_PARENT),
                1 => (ps[0], NO_PARENT),
                2 => (ps[0], ps[1]),
                _ => {
                    let at = edges.len() as u32;
                    for (k, &p) in ps[1..].iter().enumerate() {
                        let last = k + 2 == ps.len();
                        edges.push(if last { p | LAST_EDGE } else { p });
                    }
                    (ps[0], OCTOPUS_FLAG | at)
                }
            };
            records.push(Record {
                tree: e.tree,
                timestamp: e.timestamp,
                generation: gen[i],
                parent1,
                parent2,
            });
        }
        let ids: Vec<ObjectId> = entries.iter().map(|e| e.id).collect();
        let filters = vec![None; ids.len()];
        Ok(CommitGraph {
            fanout: fanout_of(&ids),
            ids,
            records,
            edges,
            filters,
            bloom_k: BLOOM_K,
        })
    }

    // ----- encoding -----------------------------------------------------

    /// Serializes the graph into `GLCG` bytes (see the module docs for
    /// the layout).
    pub fn encode(&self) -> Vec<u8> {
        let with_blooms = self.filters.iter().any(Option::is_some);
        let version = if with_blooms {
            GRAPH_VERSION_BLOOM
        } else {
            GRAPH_VERSION
        };
        let mut out = Vec::with_capacity(
            HEADER_LEN
                + FANOUT_LEN
                + self.ids.len() * (ID_LEN + RECORD_LEN)
                + self.edges.len() * 4
                + TRAILER_LEN,
        );
        out.extend_from_slice(GRAPH_MAGIC);
        out.extend_from_slice(&version.to_be_bytes());
        out.extend_from_slice(&(self.ids.len() as u32).to_be_bytes());
        out.extend_from_slice(&(self.edges.len() as u32).to_be_bytes());
        for f in self.fanout {
            out.extend_from_slice(&f.to_be_bytes());
        }
        for id in &self.ids {
            out.extend_from_slice(&id.0);
        }
        for r in &self.records {
            out.extend_from_slice(&r.tree.0);
            out.extend_from_slice(&r.timestamp.to_be_bytes());
            out.extend_from_slice(&r.generation.to_be_bytes());
            out.extend_from_slice(&r.parent1.to_be_bytes());
            out.extend_from_slice(&r.parent2.to_be_bytes());
        }
        for e in &self.edges {
            out.extend_from_slice(&e.to_be_bytes());
        }
        if with_blooms {
            let data_len: usize = self.filters.iter().flatten().map(|f| f.len()).sum();
            out.extend_from_slice(&self.bloom_k.to_be_bytes());
            out.extend_from_slice(&(data_len as u32).to_be_bytes());
            let mut end = 0u32;
            for f in &self.filters {
                end += f.as_ref().map_or(0, |f| f.len() as u32);
                out.extend_from_slice(&end.to_be_bytes());
            }
            for f in self.filters.iter().flatten() {
                out.extend_from_slice(f);
            }
        }
        let trailer = ObjectId::hash_bytes(&out);
        out.extend_from_slice(&trailer.0);
        out
    }

    /// Parses and validates `GLCG` bytes: magic, version, structural
    /// sizes, the SHA-1 trailer, fanout monotonicity, id ordering, parent
    /// position bounds, edge-table termination, and generation-number
    /// consistency (each commit's generation must be exactly one more
    /// than its deepest parent's — which also proves acyclicity). A graph
    /// that parses is safe to walk without further checks.
    pub fn parse(bytes: &[u8]) -> Result<CommitGraph> {
        let corrupt = |msg: &str| GitError::Corrupt(format!("commit-graph: {msg}"));
        if bytes.len() < HEADER_LEN + FANOUT_LEN + TRAILER_LEN {
            return Err(corrupt("truncated"));
        }
        if &bytes[..4] != GRAPH_MAGIC {
            return Err(corrupt("bad magic"));
        }
        let version = u32::from_be_bytes(bytes[4..8].try_into().unwrap());
        if version != GRAPH_VERSION && version != GRAPH_VERSION_BLOOM {
            return Err(corrupt(&format!("unsupported version {version}")));
        }
        let count = u32::from_be_bytes(bytes[8..12].try_into().unwrap()) as usize;
        let edge_count = u32::from_be_bytes(bytes[12..16].try_into().unwrap()) as usize;
        let base_len = HEADER_LEN + FANOUT_LEN + count * (ID_LEN + RECORD_LEN) + edge_count * 4;
        let expected = if version == GRAPH_VERSION {
            base_len + TRAILER_LEN
        } else {
            // Bloom chunk: k + data_len + count offsets + data bytes.
            let fixed = base_len + 8 + count * 4 + TRAILER_LEN;
            if bytes.len() < fixed {
                return Err(corrupt("truncated Bloom chunk"));
            }
            let data_len =
                u32::from_be_bytes(bytes[base_len + 4..base_len + 8].try_into().unwrap()) as usize;
            fixed + data_len
        };
        if bytes.len() != expected {
            return Err(corrupt(&format!(
                "size mismatch: {} bytes for {count} commits / {edge_count} edges, expected {expected}",
                bytes.len()
            )));
        }
        let body = &bytes[..bytes.len() - TRAILER_LEN];
        let trailer = &bytes[bytes.len() - TRAILER_LEN..];
        if ObjectId::hash_bytes(body).0 != trailer {
            return Err(corrupt("trailer checksum mismatch"));
        }

        let mut fanout = [0u32; 256];
        for i in 0..256 {
            let at = HEADER_LEN + i * 4;
            fanout[i] = u32::from_be_bytes(bytes[at..at + 4].try_into().unwrap());
            if i > 0 && fanout[i] < fanout[i - 1] {
                return Err(corrupt("fanout not monotone"));
            }
        }
        if fanout[255] as usize != count {
            return Err(corrupt("fanout total disagrees with count"));
        }

        let ids_at = HEADER_LEN + FANOUT_LEN;
        let mut ids = Vec::with_capacity(count);
        for i in 0..count {
            let at = ids_at + i * ID_LEN;
            let mut id = [0u8; 20];
            id.copy_from_slice(&bytes[at..at + 20]);
            let id = ObjectId(id);
            if let Some(prev) = ids.last() {
                if *prev >= id {
                    return Err(corrupt("ids not strictly ascending"));
                }
            }
            ids.push(id);
        }

        let recs_at = ids_at + count * ID_LEN;
        let mut records = Vec::with_capacity(count);
        for i in 0..count {
            let at = recs_at + i * RECORD_LEN;
            let mut tree = [0u8; 20];
            tree.copy_from_slice(&bytes[at..at + 20]);
            records.push(Record {
                tree: ObjectId(tree),
                timestamp: i64::from_be_bytes(bytes[at + 20..at + 28].try_into().unwrap()),
                generation: u32::from_be_bytes(bytes[at + 28..at + 32].try_into().unwrap()),
                parent1: u32::from_be_bytes(bytes[at + 32..at + 36].try_into().unwrap()),
                parent2: u32::from_be_bytes(bytes[at + 36..at + 40].try_into().unwrap()),
            });
        }
        let edges_at = recs_at + count * RECORD_LEN;
        let edges: Vec<u32> = (0..edge_count)
            .map(|i| {
                let at = edges_at + i * 4;
                u32::from_be_bytes(bytes[at..at + 4].try_into().unwrap())
            })
            .collect();

        let mut filters = vec![None; count];
        let mut bloom_k = BLOOM_K;
        if version == GRAPH_VERSION_BLOOM {
            let chunk_at = edges_at + edge_count * 4;
            bloom_k = u32::from_be_bytes(bytes[chunk_at..chunk_at + 4].try_into().unwrap());
            if bloom_k == 0 {
                return Err(corrupt("Bloom hash count is zero"));
            }
            let data_len =
                u32::from_be_bytes(bytes[chunk_at + 4..chunk_at + 8].try_into().unwrap()) as usize;
            let offsets_at = chunk_at + 8;
            let data_at = offsets_at + count * 4;
            let mut start = 0usize;
            for (i, filter) in filters.iter_mut().enumerate() {
                let at = offsets_at + i * 4;
                let end = u32::from_be_bytes(bytes[at..at + 4].try_into().unwrap()) as usize;
                if end < start || end > data_len {
                    return Err(corrupt("Bloom offsets not monotone"));
                }
                if end > start {
                    *filter = Some(bytes[data_at + start..data_at + end].into());
                }
                start = end;
            }
            if start != data_len {
                return Err(corrupt("Bloom data length disagrees with offsets"));
            }
        }

        let graph = CommitGraph {
            fanout,
            ids,
            records,
            edges,
            filters,
            bloom_k,
        };
        graph.validate_structure()?;
        Ok(graph)
    }

    /// Bounds-checks every parent link and re-derives each generation
    /// from the parents' stored generations (a purely local check that,
    /// when it holds everywhere, proves the stored generations are the
    /// true longest-path numbers and the graph is acyclic).
    fn validate_structure(&self) -> Result<()> {
        let corrupt = |msg: &str| GitError::Corrupt(format!("commit-graph: {msg}"));
        let count = self.ids.len() as u32;
        for pos in 0..count {
            let r = &self.records[pos as usize];
            for slot in [r.parent1, r.parent2] {
                if slot == NO_PARENT {
                    continue;
                }
                if slot & OCTOPUS_FLAG != 0 {
                    if slot == r.parent1 {
                        return Err(corrupt("parent1 carries the octopus flag"));
                    }
                    let mut at = (slot & !OCTOPUS_FLAG) as usize;
                    loop {
                        let Some(&edge) = self.edges.get(at) else {
                            return Err(corrupt("octopus edge list runs off the table"));
                        };
                        if edge & !LAST_EDGE >= count {
                            return Err(corrupt("octopus parent position out of bounds"));
                        }
                        if edge & LAST_EDGE != 0 {
                            break;
                        }
                        at += 1;
                    }
                } else if slot >= count {
                    return Err(corrupt("parent position out of bounds"));
                }
            }
            let expected = self
                .parents_of(pos)
                .into_iter()
                .map(|p| self.records[p as usize].generation.saturating_add(1))
                .max()
                .unwrap_or(0);
            if r.generation != expected {
                return Err(corrupt("generation numbers inconsistent with parents"));
            }
        }
        Ok(())
    }

    // ----- lookup -------------------------------------------------------

    /// Number of commits indexed.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when no commits are indexed.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// The indexed commit ids, ascending.
    pub fn ids(&self) -> &[ObjectId] {
        &self.ids
    }

    /// Position of `id` in the sorted table: fanout bucket, then binary
    /// search inside it.
    pub fn lookup(&self, id: ObjectId) -> Option<u32> {
        let bucket = id.0[0] as usize;
        let lo = if bucket == 0 {
            0
        } else {
            self.fanout[bucket - 1] as usize
        };
        let hi = self.fanout[bucket] as usize;
        let i = self.ids[lo..hi].binary_search(&id).ok()?;
        Some((lo + i) as u32)
    }

    /// True when the graph describes `id`.
    pub fn contains(&self, id: ObjectId) -> bool {
        self.lookup(id).is_some()
    }

    /// The commit id at `pos`.
    pub fn id_at(&self, pos: u32) -> ObjectId {
        self.ids[pos as usize]
    }

    /// The root tree of the commit at `pos`.
    pub fn tree_of(&self, pos: u32) -> ObjectId {
        self.records[pos as usize].tree
    }

    /// The author timestamp of the commit at `pos`.
    pub fn timestamp_of(&self, pos: u32) -> i64 {
        self.records[pos as usize].timestamp
    }

    /// The generation number (longest path to a root) of the commit at
    /// `pos`.
    pub fn generation_of(&self, pos: u32) -> u32 {
        self.records[pos as usize].generation
    }

    /// Parent positions of the commit at `pos`, in commit order.
    pub fn parents_of(&self, pos: u32) -> Vec<u32> {
        let mut out = Vec::new();
        self.for_each_parent(pos, |p| out.push(p));
        out
    }

    /// Visits the parents of `pos` in commit order without allocating —
    /// the walks' form of [`CommitGraph::parents_of`] (a walk touches
    /// every commit once; a fresh `Vec` per visit would be the only
    /// allocation left on the hot path).
    #[inline]
    fn for_each_parent(&self, pos: u32, mut f: impl FnMut(u32)) {
        let r = &self.records[pos as usize];
        if r.parent1 == NO_PARENT {
            return;
        }
        f(r.parent1);
        if r.parent2 == NO_PARENT {
            return;
        }
        if r.parent2 & OCTOPUS_FLAG == 0 {
            f(r.parent2);
            return;
        }
        let mut at = (r.parent2 & !OCTOPUS_FLAG) as usize;
        loop {
            let edge = self.edges[at];
            f(edge & !LAST_EDGE);
            if edge & LAST_EDGE != 0 {
                break;
            }
            at += 1;
        }
    }

    // ----- walks (positions only — the store is never touched) ----------

    /// Commits reachable from `from`, newest first (by timestamp, ties by
    /// id) — byte-identical to [`crate::Repository::log`]'s decode walk.
    /// Position order *is* id order (the table is sorted), so `(timestamp,
    /// position)` keys reproduce the reference's `(timestamp, id)` ties.
    pub fn log(&self, from: u32) -> Vec<ObjectId> {
        #[derive(PartialEq, Eq)]
        struct Entry(i64, u32);
        impl Ord for Entry {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                self.0.cmp(&other.0).then_with(|| self.1.cmp(&other.1))
            }
        }
        impl PartialOrd for Entry {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }
        let mut heap = BinaryHeap::new();
        let mut seen = HashSet::new();
        heap.push(Entry(self.timestamp_of(from), from));
        seen.insert(from);
        let mut out = Vec::new();
        while let Some(Entry(_, pos)) = heap.pop() {
            out.push(self.id_at(pos));
            self.for_each_parent(pos, |p| {
                if seen.insert(p) {
                    heap.push(Entry(self.timestamp_of(p), p));
                }
            });
        }
        out
    }

    /// All commits reachable from `from` (inclusive).
    pub fn ancestor_set(&self, from: u32) -> HashSet<ObjectId> {
        let mut seen_pos = HashSet::new();
        let mut stack = vec![from];
        while let Some(pos) = stack.pop() {
            if !seen_pos.insert(pos) {
                continue;
            }
            self.for_each_parent(pos, |p| stack.push(p));
        }
        seen_pos.into_iter().map(|p| self.id_at(p)).collect()
    }

    /// The first-parent chain from `from` back to a root, `from` first.
    pub fn first_parent_chain(&self, from: u32) -> Vec<ObjectId> {
        let mut out = Vec::new();
        let mut cursor = Some(from);
        while let Some(pos) = cursor {
            out.push(self.id_at(pos));
            let p1 = self.records[pos as usize].parent1;
            cursor = (p1 != NO_PARENT).then_some(p1);
        }
        out
    }

    /// True when `anc` is reachable from `desc` (or equal). Generation
    /// numbers prune the walk: only commits with generation strictly
    /// greater than `anc`'s can lie on a path to it.
    pub fn is_ancestor(&self, anc: u32, desc: u32) -> bool {
        if anc == desc {
            return true;
        }
        let floor = self.generation_of(anc);
        if self.generation_of(desc) <= floor {
            return false;
        }
        let mut stack = vec![desc];
        let mut seen = HashSet::new();
        seen.insert(desc);
        let mut found = false;
        while let Some(pos) = stack.pop() {
            self.for_each_parent(pos, |p| {
                if p == anc {
                    found = true;
                } else if self.generation_of(p) > floor && seen.insert(p) {
                    stack.push(p);
                }
            });
            if found {
                return true;
            }
        }
        false
    }

    /// The best common ancestor of `a` and `b`: among all common
    /// ancestors, the one with the greatest `(generation, timestamp, id)`
    /// — the same selection rule as the decode-walk
    /// [`crate::merge_base`], without materializing either ancestor set.
    ///
    /// A single max-heap keyed by `(generation, timestamp, position)`
    /// walks from both tips, tagging each discovered commit with which
    /// side(s) reached it. Generations strictly decrease along parent
    /// edges, so pops occur in strictly decreasing key order and a
    /// commit's tags are complete by the time it is popped (any child
    /// that could still tag it has a larger key and was popped earlier).
    /// The first pop tagged by both sides is therefore exactly the
    /// maximum-key common ancestor. Returns `None` for unrelated
    /// histories.
    pub fn merge_base(&self, a: u32, b: u32) -> Option<ObjectId> {
        if a == b {
            return Some(self.id_at(a));
        }
        const SIDE_A: u8 = 1;
        const SIDE_B: u8 = 2;
        #[derive(PartialEq, Eq)]
        struct Key(u32, i64, u32); // (generation, timestamp, position)
        impl Ord for Key {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                (self.0, self.1, self.2).cmp(&(other.0, other.1, other.2))
            }
        }
        impl PartialOrd for Key {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }
        let mut flags: HashMap<u32, u8> = HashMap::new();
        let mut heap = BinaryHeap::new();
        for (pos, side) in [(a, SIDE_A), (b, SIDE_B)] {
            flags.insert(pos, side);
            heap.push(Key(self.generation_of(pos), self.timestamp_of(pos), pos));
        }
        while let Some(Key(_, _, pos)) = heap.pop() {
            let side = flags[&pos];
            if side == SIDE_A | SIDE_B {
                return Some(self.id_at(pos));
            }
            self.for_each_parent(pos, |p| match flags.entry(p) {
                MapEntry::Occupied(mut e) => {
                    *e.get_mut() |= side;
                }
                MapEntry::Vacant(e) => {
                    e.insert(side);
                    heap.push(Key(self.generation_of(p), self.timestamp_of(p), p));
                }
            });
        }
        None
    }

    // ----- changed-path Bloom filters -----------------------------------

    /// Asks the commit's Bloom filter whether `path` (a file or a
    /// directory, no leading/trailing slash) changed between the commit
    /// at `pos` and its first parent. [`PathChange::No`] is definitive;
    /// [`PathChange::Maybe`] and [`PathChange::Absent`] require an exact
    /// diff.
    pub fn path_changed(&self, pos: u32, path: &str) -> PathChange {
        let Some(f) = self.filters[pos as usize].as_deref() else {
            return PathChange::Absent;
        };
        let nbits = (f.len() * 8) as u64;
        let (h1, h2) = bloom_hashes(path.as_bytes());
        for i in 0..self.bloom_k as u64 {
            let bit = (h1.wrapping_add(i.wrapping_mul(h2)) % nbits) as usize;
            if f[bit / 8] & (1 << (bit % 8)) == 0 {
                return PathChange::No;
            }
        }
        PathChange::Maybe
    }

    /// Number of commits that carry a changed-path Bloom filter.
    pub fn bloom_coverage(&self) -> usize {
        self.filters.iter().filter(|f| f.is_some()).count()
    }

    /// Drops every filter (the graph then encodes as version 1 again).
    /// Exists for benchmarks and tests that need the exact-diff path.
    pub fn strip_blooms(&mut self) {
        self.filters.iter_mut().for_each(|f| *f = None);
    }

    /// Computes changed-path Bloom filters for every commit that does
    /// not already have one, diffing each commit's root tree against its
    /// first parent's via `fetch` (id → decoded tree). Best-effort: a
    /// commit whose trees cannot be fetched, or whose diff touches more
    /// than [`MAX_BLOOM_PATHS`] paths, simply keeps no filter — queries
    /// fall back to exact diffs, so partial coverage is always safe.
    pub fn compute_blooms<F>(&mut self, mut fetch: F)
    where
        F: FnMut(ObjectId) -> Option<Tree>,
    {
        let mut memo: HashMap<ObjectId, Option<Rc<Tree>>> = HashMap::new();
        for pos in 0..self.ids.len() {
            if self.filters[pos].is_some() {
                continue;
            }
            let tree_id = self.records[pos].tree;
            let parent_tree = match self.records[pos].parent1 {
                NO_PARENT => None,
                p => Some(self.records[p as usize].tree),
            };
            if parent_tree == Some(tree_id) {
                // Identical root trees: provably empty diff, no decode.
                self.filters[pos] = Some(bloom_bytes(&HashSet::new(), self.bloom_k));
                continue;
            }
            let Some(new_tree) = memo_tree(&mut memo, &mut fetch, tree_id) else {
                continue;
            };
            let old_tree = match parent_tree {
                Some(t) => match memo_tree(&mut memo, &mut fetch, t) {
                    Some(t) => Some(t),
                    None => continue,
                },
                None => None,
            };
            let mut paths = HashSet::new();
            if diff_changed_paths(
                old_tree.as_deref(),
                Some(&new_tree),
                "",
                &mut paths,
                &mut memo,
                &mut fetch,
            ) {
                self.filters[pos] = Some(bloom_bytes(&paths, self.bloom_k));
            }
        }
    }
}

/// The double-hash pair for a Bloom path: two 64-bit FNV-1a streams
/// over the same bytes from different offset bases, the second forced
/// odd so `h1 + i·h2` cycles through all bit positions.
fn bloom_hashes(bytes: &[u8]) -> (u64, u64) {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_ALT_OFFSET: u64 = 0x6c62_272e_07bb_0142;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h1 = FNV_OFFSET;
    let mut h2 = FNV_ALT_OFFSET;
    for &b in bytes {
        h1 = (h1 ^ b as u64).wrapping_mul(FNV_PRIME);
        h2 = (h2 ^ b as u64).wrapping_mul(FNV_PRIME);
    }
    (h1, h2 | 1)
}

/// Encodes a changed-path set as filter bytes: ~10 bits per path, at
/// least one byte (so an empty set is a single zero byte that answers
/// "No" to everything, distinct from the zero-length "no filter").
fn bloom_bytes(paths: &HashSet<String>, k: u32) -> Box<[u8]> {
    let nbytes = (paths.len() * BLOOM_BITS_PER_PATH).div_ceil(8).max(1);
    let mut filter = vec![0u8; nbytes];
    let nbits = (nbytes * 8) as u64;
    for path in paths {
        let (h1, h2) = bloom_hashes(path.as_bytes());
        for i in 0..k as u64 {
            let bit = (h1.wrapping_add(i.wrapping_mul(h2)) % nbits) as usize;
            filter[bit / 8] |= 1 << (bit % 8);
        }
    }
    filter.into_boxed_slice()
}

/// Fetches and memoizes a decoded tree (`None` is memoized too, so a
/// missing tree is only chased once).
fn memo_tree<F: FnMut(ObjectId) -> Option<Tree>>(
    memo: &mut HashMap<ObjectId, Option<Rc<Tree>>>,
    fetch: &mut F,
    id: ObjectId,
) -> Option<Rc<Tree>> {
    memo.entry(id)
        .or_insert_with(|| fetch(id).map(Rc::new))
        .clone()
}

/// Recursively collects every path that differs between `old` and `new`
/// (including the changed paths' directories — each differing subtree
/// entry is itself pushed before recursing) into `paths`. Returns
/// `false` when a needed subtree cannot be fetched or the path count
/// exceeds [`MAX_BLOOM_PATHS`] — the caller then stores no filter.
fn diff_changed_paths<F: FnMut(ObjectId) -> Option<Tree>>(
    old: Option<&Tree>,
    new: Option<&Tree>,
    prefix: &str,
    paths: &mut HashSet<String>,
    memo: &mut HashMap<ObjectId, Option<Rc<Tree>>>,
    fetch: &mut F,
) -> bool {
    let mut names: Vec<&str> = old
        .into_iter()
        .chain(new)
        .flat_map(|t| t.iter().map(|(n, _)| n))
        .collect();
    names.sort_unstable();
    names.dedup();
    for name in names {
        let old_entry = old.and_then(|t| t.get(name)).copied();
        let new_entry = new.and_then(|t| t.get(name)).copied();
        if old_entry == new_entry {
            continue;
        }
        let path = if prefix.is_empty() {
            name.to_string()
        } else {
            format!("{prefix}/{name}")
        };
        paths.insert(path.clone());
        if paths.len() > MAX_BLOOM_PATHS {
            return false;
        }
        let sub = |entry: Option<TreeEntry>,
                   memo: &mut HashMap<ObjectId, Option<Rc<Tree>>>,
                   fetch: &mut F| {
            match entry {
                Some(e) if e.mode == EntryMode::Dir => match memo_tree(memo, fetch, e.id) {
                    Some(t) => Ok(Some(t)),
                    None => Err(()),
                },
                _ => Ok(None),
            }
        };
        let Ok(old_sub) = sub(old_entry, memo, fetch) else {
            return false;
        };
        let Ok(new_sub) = sub(new_entry, memo, fetch) else {
            return false;
        };
        if (old_sub.is_some() || new_sub.is_some())
            && !diff_changed_paths(
                old_sub.as_deref(),
                new_sub.as_deref(),
                &path,
                paths,
                memo,
                fetch,
            )
        {
            return false;
        }
    }
    true
}

/// Walks commits reachable from `tips` (skipping ids already in `seen`),
/// decoding each exactly once and appending a [`GraphEntry`] per commit.
fn collect_entries<S: ObjectStore + ?Sized>(
    store: &S,
    tips: &[ObjectId],
    seen: &mut HashSet<ObjectId>,
    entries: &mut Vec<GraphEntry>,
) -> Result<()> {
    let mut stack: Vec<ObjectId> = tips.to_vec();
    while let Some(id) = stack.pop() {
        if !seen.insert(id) {
            continue;
        }
        let obj = store.commit_ref(id)?;
        let c = obj.as_commit().expect("checked kind");
        entries.push(GraphEntry {
            id,
            tree: c.tree,
            timestamp: c.author.timestamp,
            parents: c.parents.clone(),
        });
        stack.extend(c.parents.iter().copied());
    }
    Ok(())
}

fn fanout_of(sorted_ids: &[ObjectId]) -> [u32; 256] {
    let mut fanout = [0u32; 256];
    for id in sorted_ids {
        fanout[id.0[0] as usize] += 1;
    }
    for i in 1..256 {
        fanout[i] += fanout[i - 1];
    }
    fanout
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::{Commit, Object, Signature, Tree};
    use crate::store::Odb;

    fn mk(odb: &mut Odb, msg: &str, ts: i64, parents: Vec<ObjectId>) -> ObjectId {
        let tree = odb.put(Object::Tree(Tree::new()));
        odb.put(Object::Commit(Commit {
            tree,
            parents,
            author: Signature::new("t", "t@t", ts),
            message: msg.into(),
        }))
    }

    /// base ── x ── left ; right = merge(x, base) — plus an octopus.
    fn sample() -> (Odb, Vec<ObjectId>) {
        let mut odb = Odb::new();
        let base = mk(&mut odb, "base", 1, vec![]);
        let x = mk(&mut odb, "x", 2, vec![base]);
        let left = mk(&mut odb, "left", 3, vec![x]);
        let right = mk(&mut odb, "right", 4, vec![x, base]);
        let octo = mk(&mut odb, "octo", 5, vec![left, right, base]);
        (odb, vec![base, x, left, right, octo])
    }

    #[test]
    fn build_records_fields_and_generations() {
        let (odb, c) = sample();
        let g = CommitGraph::build(&odb, &[c[4]]).unwrap();
        assert_eq!(g.len(), 5);
        for (i, expect_gen) in [(0usize, 0u32), (1, 1), (2, 2), (3, 2), (4, 3)] {
            let pos = g.lookup(c[i]).unwrap();
            assert_eq!(g.generation_of(pos), expect_gen, "commit {i}");
            assert_eq!(g.timestamp_of(pos), i as i64 + 1);
            assert_eq!(g.tree_of(pos), odb.commit(c[i]).unwrap().tree);
            let parent_ids: Vec<ObjectId> =
                g.parents_of(pos).into_iter().map(|p| g.id_at(p)).collect();
            assert_eq!(parent_ids, odb.commit(c[i]).unwrap().parents, "commit {i}");
        }
        assert!(!g.contains(ObjectId::hash_bytes(b"absent")));
    }

    #[test]
    fn encode_parse_round_trips() {
        let (odb, c) = sample();
        let g = CommitGraph::build(&odb, &[c[4]]).unwrap();
        let bytes = g.encode();
        let parsed = CommitGraph::parse(&bytes).unwrap();
        assert_eq!(parsed.ids, g.ids);
        assert_eq!(parsed.edges, g.edges);
        for pos in 0..g.len() as u32 {
            assert_eq!(parsed.parents_of(pos), g.parents_of(pos));
            assert_eq!(parsed.generation_of(pos), g.generation_of(pos));
            assert_eq!(parsed.timestamp_of(pos), g.timestamp_of(pos));
            assert_eq!(parsed.tree_of(pos), g.tree_of(pos));
        }
        // And the encoding is deterministic.
        assert_eq!(parsed.encode(), bytes);
    }

    #[test]
    fn corruption_is_detected() {
        let (odb, c) = sample();
        let bytes = CommitGraph::build(&odb, &[c[4]]).unwrap().encode();
        // Any flipped byte breaks the trailer.
        for at in [0, 9, HEADER_LEN + 100, bytes.len() / 2, bytes.len() - 1] {
            let mut bad = bytes.clone();
            bad[at] ^= 0xff;
            assert!(
                matches!(CommitGraph::parse(&bad), Err(GitError::Corrupt(_))),
                "flip at {at}"
            );
        }
        // Truncation too.
        assert!(matches!(
            CommitGraph::parse(&bytes[..bytes.len() - 3]),
            Err(GitError::Corrupt(_))
        ));
        assert!(matches!(CommitGraph::parse(&[]), Err(GitError::Corrupt(_))));
    }

    #[test]
    fn from_entries_rejects_missing_parents_and_cycles() {
        let missing = GraphEntry {
            id: ObjectId::hash_bytes(b"a"),
            tree: ObjectId::ZERO,
            timestamp: 1,
            parents: vec![ObjectId::hash_bytes(b"ghost")],
        };
        assert!(matches!(
            CommitGraph::from_entries(vec![missing]),
            Err(GitError::ObjectNotFound(_))
        ));
        let a = ObjectId::hash_bytes(b"a");
        let b = ObjectId::hash_bytes(b"b");
        let cycle = vec![
            GraphEntry {
                id: a,
                tree: ObjectId::ZERO,
                timestamp: 1,
                parents: vec![b],
            },
            GraphEntry {
                id: b,
                tree: ObjectId::ZERO,
                timestamp: 2,
                parents: vec![a],
            },
        ];
        assert!(matches!(
            CommitGraph::from_entries(cycle),
            Err(GitError::Corrupt(_))
        ));
    }

    #[test]
    fn log_matches_decode_walk() {
        let (odb, c) = sample();
        let g = CommitGraph::build(&odb, &[c[4]]).unwrap();
        let repo = crate::Repository::init_with("t", Box::new(odb));
        for &tip in &c {
            assert_eq!(
                g.log(g.lookup(tip).unwrap()),
                repo.log(tip).unwrap(),
                "log from {tip:?}"
            );
        }
    }

    #[test]
    fn merge_base_and_reachability_match_reference() {
        let (odb, c) = sample();
        let g = CommitGraph::build(&odb, &[c[4]]).unwrap();
        for &x in &c {
            for &y in &c {
                let px = g.lookup(x).unwrap();
                let py = g.lookup(y).unwrap();
                assert_eq!(
                    g.merge_base(px, py),
                    crate::merge_base(&odb, x, y).unwrap(),
                    "merge_base({x:?}, {y:?})"
                );
                let reference = crate::mergebase::ancestor_set(&odb, y)
                    .unwrap()
                    .contains(&x);
                assert_eq!(
                    g.is_ancestor(px, py),
                    reference,
                    "is_ancestor({x:?}, {y:?})"
                );
            }
        }
        assert_eq!(
            g.ancestor_set(g.lookup(c[3]).unwrap()),
            crate::mergebase::ancestor_set(&odb, c[3]).unwrap()
        );
    }

    #[test]
    fn first_parent_chain_follows_parent1() {
        let (odb, c) = sample();
        let g = CommitGraph::build(&odb, &[c[4]]).unwrap();
        // octo → left → x → base (first parents only).
        assert_eq!(
            g.first_parent_chain(g.lookup(c[4]).unwrap()),
            vec![c[4], c[2], c[1], c[0]]
        );
    }

    #[test]
    fn extend_reuses_old_records_and_adds_new_commits() {
        let (mut odb, c) = sample();
        let g = CommitGraph::build(&odb, &[c[4]]).unwrap();
        let newer = mk(&mut odb, "newer", 6, vec![c[4]]);
        assert!(!g.contains(newer));
        let extended = g.extend(&odb, &[newer]).unwrap();
        assert_eq!(extended.len(), 6);
        let pos = extended.lookup(newer).unwrap();
        assert_eq!(extended.generation_of(pos), 4);
        assert_eq!(
            extended
                .parents_of(pos)
                .into_iter()
                .map(|p| extended.id_at(p))
                .collect::<Vec<_>>(),
            vec![c[4]]
        );
        // Old commits kept their data.
        for &old in &c {
            let p = extended.lookup(old).unwrap();
            let q = g.lookup(old).unwrap();
            assert_eq!(extended.generation_of(p), g.generation_of(q));
            assert_eq!(extended.timestamp_of(p), g.timestamp_of(q));
        }
    }

    #[test]
    fn unrelated_histories_have_no_merge_base() {
        let mut odb = Odb::new();
        let a = mk(&mut odb, "a", 1, vec![]);
        let b = mk(&mut odb, "b", 2, vec![]);
        let g = CommitGraph::build(&odb, &[a, b]).unwrap();
        assert_eq!(
            g.merge_base(g.lookup(a).unwrap(), g.lookup(b).unwrap()),
            None
        );
        assert!(!g.is_ancestor(g.lookup(a).unwrap(), g.lookup(b).unwrap()));
    }

    #[test]
    fn deep_history_does_not_overflow_stack() {
        let mut odb = Odb::new();
        let mut tip = mk(&mut odb, "0", 0, vec![]);
        for i in 1..5000 {
            tip = mk(&mut odb, &i.to_string(), i, vec![tip]);
        }
        let g = CommitGraph::build(&odb, &[tip]).unwrap();
        let pos = g.lookup(tip).unwrap();
        assert_eq!(g.generation_of(pos), 4999);
        assert_eq!(g.log(pos).len(), 5000);
        assert_eq!(g.first_parent_chain(pos).len(), 5000);
    }

    // ----- changed-path Bloom filters -----------------------------------

    fn pathset(items: &[&str]) -> HashSet<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    /// A sample graph with a mixed filter population: a real change set,
    /// an empty change set, and uncovered commits.
    fn bloomed_sample() -> CommitGraph {
        let (odb, c) = sample();
        let mut g = CommitGraph::build(&odb, &[c[4]]).unwrap();
        g.filters[0] = Some(bloom_bytes(&pathset(&["src/a.rs", "src"]), BLOOM_K));
        g.filters[2] = Some(bloom_bytes(&pathset(&[]), BLOOM_K));
        g
    }

    #[test]
    fn bloom_chunk_round_trips_and_absence_keeps_version_1() {
        let (odb, c) = sample();
        let plain = CommitGraph::build(&odb, &[c[4]]).unwrap();
        let v1 = plain.encode();
        assert_eq!(&v1[4..8], &GRAPH_VERSION.to_be_bytes());

        let g = bloomed_sample();
        let v2 = g.encode();
        assert_eq!(&v2[4..8], &GRAPH_VERSION_BLOOM.to_be_bytes());
        let parsed = CommitGraph::parse(&v2).unwrap();
        assert_eq!(parsed.filters, g.filters);
        assert_eq!(parsed.bloom_coverage(), 2);
        assert_eq!(parsed.encode(), v2, "version 2 re-encodes identically");

        // Filter semantics survive the round trip: a covered path is
        // Maybe, an unknown one is No, an uncovered commit is Absent,
        // and the empty change set answers No for everything.
        assert_eq!(parsed.path_changed(0, "src/a.rs"), PathChange::Maybe);
        assert_eq!(
            parsed.path_changed(0, "definitely/not/here.txt"),
            PathChange::No
        );
        assert_eq!(parsed.path_changed(1, "src/a.rs"), PathChange::Absent);
        assert_eq!(parsed.path_changed(2, "src/a.rs"), PathChange::No);

        // Stripping the filters falls back to the version-1 bytes.
        let mut stripped = parsed;
        stripped.strip_blooms();
        assert_eq!(stripped.encode(), v1);
    }

    #[test]
    fn bloom_chunk_corruption_is_detected() {
        let mut g = bloomed_sample();
        // A trailing filter too, so the cumulative total can be tampered
        // below the data length without tripping the monotone check.
        g.filters[4] = Some(bloom_bytes(&pathset(&["x"]), BLOOM_K));
        let bytes = g.encode();
        let chunk_at = {
            let mut s = g.clone();
            s.strip_blooms();
            s.encode().len() - TRAILER_LEN
        };
        // Any flipped byte in the chunk breaks the trailer.
        for at in [chunk_at, chunk_at + 9, bytes.len() - TRAILER_LEN - 1] {
            let mut bad = bytes.clone();
            bad[at] ^= 0xff;
            assert!(
                matches!(CommitGraph::parse(&bad), Err(GitError::Corrupt(_))),
                "flip at {at}"
            );
        }
        // Structural tampers with a recomputed trailer are still refused.
        let refit = |mut b: Vec<u8>| {
            let n = b.len() - TRAILER_LEN;
            let t = ObjectId::hash_bytes(&b[..n]);
            b[n..].copy_from_slice(&t.0);
            b
        };
        let tamper = |at: usize, word: u32| {
            let mut b = bytes.clone();
            b[at..at + 4].copy_from_slice(&word.to_be_bytes());
            CommitGraph::parse(&refit(b)).unwrap_err().to_string()
        };
        assert!(tamper(chunk_at, 0).contains("hash count"));
        assert!(tamper(chunk_at + 8, 10_000).contains("not monotone"));
        // Shrinking the final cumulative offset leaves data unclaimed.
        let last_offset_at = chunk_at + 8 + (g.len() - 1) * 4;
        assert!(tamper(last_offset_at, 4).contains("disagrees with offsets"));
        // Growing the declared data length changes the expected size.
        assert!(tamper(chunk_at + 4, 1_000).contains("size mismatch"));
    }

    #[test]
    fn extend_carries_filters_and_compute_blooms_fills_gaps() {
        let (mut odb, c) = sample();
        let mut g = CommitGraph::build(&odb, &[c[4]]).unwrap();
        // All sample commits share the same empty tree, so every filter
        // is the empty change set; that is still coverage.
        {
            let odb = &odb;
            g.compute_blooms(|tree_id| odb.tree(tree_id).ok());
        }
        assert_eq!(g.bloom_coverage(), g.len());

        let extra = mk(&mut odb, "extra", 9, vec![c[4]]);
        let mut extended = g.extend(&odb, &[extra]).unwrap();
        assert_eq!(extended.len(), 6);
        // Old filters rode along by id; only the new commit is uncovered.
        assert_eq!(extended.bloom_coverage(), 5);
        let new_pos = extended.lookup(extra).unwrap();
        assert_eq!(extended.filters[new_pos as usize], None);
        // Backfill touches only the gap.
        {
            let odb = &odb;
            extended.compute_blooms(|tree_id| odb.tree(tree_id).ok());
        }
        assert_eq!(extended.bloom_coverage(), 6);
    }
}
